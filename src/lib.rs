//! Facade crate bundling the `ninec` test-data-compression suite.
pub use ninec;
pub use ninec_atpg as atpg;
pub use ninec_baselines as baselines;
pub use ninec_circuit as circuit;
pub use ninec_decompressor as decompressor;
pub use ninec_fsim as fsim;
pub use ninec_synth as synth;
pub use ninec_testdata as testdata;

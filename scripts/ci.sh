#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
#
#   ./scripts/ci.sh
#
# Mirrors what reviewers run before merging; keep it green. The vendored
# API-subset crates under vendor/ are workspace-excluded, so fmt/clippy
# sweeps only touch first-party code.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"

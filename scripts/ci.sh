#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
#
#   ./scripts/ci.sh
#
# Mirrors what reviewers run before merging; keep it green. The vendored
# API-subset crates under vendor/ are workspace-excluded, so fmt/clippy
# sweeps only touch first-party code.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The sharded engine forbids unwrap() outright (deny(clippy::unwrap_used)
# at the engine module root, which covers the frame and pool submodules);
# guard the attribute so a refactor can't silently drop it.
echo "==> engine unwrap_used deny guard"
grep -q '^#!\[deny(clippy::unwrap_used)\]' crates/core/src/engine/mod.rs || {
    echo "crates/core/src/engine/mod.rs must keep #![deny(clippy::unwrap_used)]" >&2
    exit 1
}

# The untrusted-input parsers go further: no unwrap() *or* expect() at all
# outside #[cfg(test)] in frame.rs (hostile bytes), pool.rs (panic
# isolation), ecc.rs (GF(256) reconstruction feeds on damaged frames),
# reader.rs (streaming bytes straight off a pipe), plan.rs (the one-pass
# scan classifying hostile slots), exec.rs (the priority executor under
# every decode) and cancel.rs (the cancellation token checked on every
# worker's hot path) — every failure there must be a typed error or a
# poisoned result slot, never an abort. The whole serve crate is held to
# the same bar: every byte it parses arrived over a socket from an
# untrusted peer (including the chaos proxy, which feeds itself torn
# writes on purpose), and a panic in a handler thread is a denial of
# service for every tenant. archive.rs and scrub.rs join the list: they
# parse epoch indexes and stored blobs that may have rotted on disk for
# months, and a panic there takes the whole archive tier down instead of
# surfacing a typed Degraded/Lost verdict.
echo "==> frame/pool/ecc/reader/plan/exec/cancel/archive/scrub/serve no-unwrap/expect guard"
for f in crates/core/src/engine/frame.rs crates/core/src/engine/pool.rs \
         crates/core/src/engine/ecc.rs crates/core/src/engine/reader.rs \
         crates/core/src/engine/plan.rs crates/core/src/engine/exec.rs \
         crates/core/src/engine/cancel.rs \
         crates/core/src/engine/archive.rs crates/core/src/engine/scrub.rs \
         crates/serve/src/*.rs; do
    head=$(sed '/#\[cfg(test)\]/q' "$f")
    if echo "$head" | grep -nE '\.(unwrap|expect)\(' >&2; then
        echo "$f: unwrap()/expect() outside #[cfg(test)] is forbidden" >&2
        exit 1
    fi
done

echo "==> cargo build --release"
cargo build --release

# Run the suite at both ends of the engine's thread spectrum: the serial
# in-caller fallback and an oversubscribed pool. Output must be identical
# (the differential suite asserts byte-identity; this catches anything
# thread-count-sensitive that only manifests at runtime).
echo "==> cargo test -q (NINEC_THREADS=1)"
NINEC_THREADS=1 cargo test -q

echo "==> cargo test -q (NINEC_THREADS=8)"
NINEC_THREADS=8 cargo test -q

# The priority executor's starvation/ordering stress tests, explicitly at
# an oversubscribed pool: a Low-priority job popping before every High
# job has started is a CI failure, not a flake.
echo "==> executor priority stress (NINEC_THREADS=8)"
NINEC_THREADS=8 cargo test -q -p ninec --lib engine::exec::

# The telemetry layer must be provably optional: the whole suite also
# passes with the obs feature (and every probe it gates) compiled out.
echo "==> cargo test -q --workspace --no-default-features"
cargo test -q --workspace --no-default-features

# Fault-injection suite with the deterministic fail points armed: forced
# worker panics, delays and torn writes inside the pool, at 1 and 8
# threads (the feature only exists in test builds; see crates/core).
echo "==> cargo test -q --test fault_injection --features failpoints"
cargo test -q --test fault_injection --features failpoints

# Archive crash-safety at every byte boundary: the failpoints build arms
# the `arc` kill site so the torn-append sweep can abort a child append
# at each write offset and prove the prior epoch still reads (the
# default-feature mutation/truncation sweeps already ran under the
# workspace suites above).
echo "==> cargo test -q --test archive_fault_injection --features failpoints"
cargo test -q --test archive_fault_injection --features failpoints

# Tenant isolation under load: a hostile tenant hammering the service
# from several connections must not disturb a clean tenant, with the
# engine's worker pool explicitly oversubscribed under the wire path.
# The failpoints variant additionally injects a worker panic inside the
# decode pool and asserts it stays a per-request typed failure.
echo "==> tenant isolation (NINEC_THREADS=8)"
NINEC_THREADS=8 cargo test -q -p ninec-serve --test tenant_isolation
NINEC_THREADS=8 cargo test -q -p ninec-serve --test tenant_isolation \
    --features failpoints

# Release-binary smoke test of the stats plumbing on a tiny CKT profile:
# generate -> compress --stats json must emit a JSON document with the
# encode counters in it.
echo "==> ninec --stats smoke test"
cargo build -q --release -p ninec-cli
smokedir="$(mktemp -d)"
trap 'kill "${serve_pid:-}" "${proxy_pid:-}" 2>/dev/null || true; rm -rf "$smokedir"' EXIT
./target/release/ninec generate custom:8,64,75 -o "$smokedir/t.cubes" >/dev/null
# Capture to a file first: `| grep -q` would close the pipe at the first
# match and race ninec's remaining writes into a broken-pipe i/o error.
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t.te" \
    --stats json > "$smokedir/stats.json"
grep -q '"ninec.encode.blocks"' "$smokedir/stats.json"
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t.te" \
    --stats text > "$smokedir/stats.txt"
grep -q '^# TYPE ninec_encode_blocks counter' "$smokedir/stats.txt"

# Parallel-engine smoke test: a 9CSF frame written with --threads 4 must
# be byte-identical to the serial one and decompress back losslessly.
echo "==> ninec --threads smoke test"
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t4.9cf" \
    --threads 4 --segment-bits 128 >/dev/null
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t1.9cf" \
    --threads 1 --segment-bits 128 >/dev/null
cmp "$smokedir/t4.9cf" "$smokedir/t1.9cf"
./target/release/ninec decompress "$smokedir/t4.9cf" -o "$smokedir/back.cubes" \
    --threads 4 --fill keep >/dev/null
# info now prints the multi-line per-segment plan, so capture to a file
# before grepping (a `| grep -q` quits at the first match and races the
# remaining plan lines into a broken-pipe i/o error).
./target/release/ninec info "$smokedir/t4.9cf" > "$smokedir/info.txt"
grep -q '9CSF frame' "$smokedir/info.txt"

# Salvage smoke test: corrupt the first payload byte (offset 47 =
# 31-byte file header + 16-byte segment header; 0xFF is never a valid
# packed-trit byte, so the write is guaranteed to be a real change).
# Strict decompress must fail (exit 3); --salvage must write output and
# exit 5 (partial recovery); info must print the damage map.
echo "==> ninec --salvage smoke test"
cp "$smokedir/t4.9cf" "$smokedir/corrupt.9cf"
printf '\xff' | dd of="$smokedir/corrupt.9cf" bs=1 seek=47 conv=notrunc status=none
if ./target/release/ninec decompress "$smokedir/corrupt.9cf" \
    -o "$smokedir/strict.cubes" --fill keep >/dev/null 2>&1; then
    echo "strict decompress of a corrupt frame must fail" >&2
    exit 1
fi
rc=0
./target/release/ninec decompress "$smokedir/corrupt.9cf" \
    -o "$smokedir/salvaged.cubes" --salvage --fill keep >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 5 ]; then
    echo "decompress --salvage on a damaged frame must exit 5, got $rc" >&2
    exit 1
fi
test -s "$smokedir/salvaged.cubes"
./target/release/ninec info "$smokedir/corrupt.9cf" > "$smokedir/cinfo.txt"
grep -q 'damaged segment' "$smokedir/cinfo.txt"

# Streaming-decode smoke test: `decompress -` reads the frame from stdin
# through the bounded-memory streaming reader and must produce output
# identical to the in-memory file path.
echo "==> ninec pipe-decode smoke test"
cat "$smokedir/t4.9cf" | ./target/release/ninec decompress - \
    -o "$smokedir/piped.cubes" --fill keep >/dev/null
cmp "$smokedir/back.cubes" "$smokedir/piped.cubes"

# Repair smoke test: an erasure-coded v3 frame (--parity 2:1) with one
# corrupted data segment must decode bit-exact through the automatic
# repair ladder (exit 0); --no-repair must fail strict+salvage-less
# (exit 3); --no-repair --salvage must degrade to X-erase (exit 5).
# Offset 49 = 33-byte v3 file header + 16-byte segment header = the
# first data segment's first payload byte (0xFF is never a valid
# packed-trit byte, so the write is guaranteed to be a real change).
echo "==> ninec --parity repair smoke test"
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/p.9cf" \
    --parity 2:1 --segment-bits 128 >/dev/null
./target/release/ninec info "$smokedir/p.9cf" > "$smokedir/pinfo.txt"
grep -q 'parity 2:1' "$smokedir/pinfo.txt"
./target/release/ninec decompress "$smokedir/p.9cf" \
    -o "$smokedir/pclean.cubes" --fill keep >/dev/null
cp "$smokedir/p.9cf" "$smokedir/pcorrupt.9cf"
printf '\xff' | dd of="$smokedir/pcorrupt.9cf" bs=1 seek=49 conv=notrunc status=none
cmp -s "$smokedir/p.9cf" "$smokedir/pcorrupt.9cf" && {
    echo "corruption write did not change the frame" >&2
    exit 1
}
# Capture to a file first (same rationale as the --stats smoke): a
# `| grep -q` would close the pipe at the first match and race ninec's
# remaining writes into a broken-pipe i/o error.
./target/release/ninec decompress "$smokedir/pcorrupt.9cf" \
    -o "$smokedir/prepaired.cubes" --fill keep > "$smokedir/repair.txt"
grep -q 'rebuilt from parity' "$smokedir/repair.txt"
cmp "$smokedir/pclean.cubes" "$smokedir/prepaired.cubes"
if ./target/release/ninec decompress "$smokedir/pcorrupt.9cf" \
    -o "$smokedir/pstrict.cubes" --no-repair --fill keep >/dev/null 2>&1; then
    echo "--no-repair on a damaged frame without --salvage must fail" >&2
    exit 1
fi
rc=0
./target/release/ninec decompress "$smokedir/pcorrupt.9cf" \
    -o "$smokedir/psalvaged.cubes" --no-repair --salvage --fill keep \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 5 ]; then
    echo "--no-repair --salvage on a damaged v3 frame must exit 5, got $rc" >&2
    exit 1
fi
test -s "$smokedir/psalvaged.cubes"

# Plan-print smoke test: `info` on the committed repairable v3 corpus
# frame must print the per-segment decode plan — data slots, parity
# shards feeding the repair rung, and the damage map, one line each.
echo "==> ninec info plan-print smoke test"
./target/release/ninec info tests/corpus/v3_repairable.9cf > "$smokedir/plan.txt"
grep -q 'damaged segment' "$smokedir/plan.txt"
grep -q ': data k=' "$smokedir/plan.txt"
grep -q 'parity group .* — repair input' "$smokedir/plan.txt"

# --stats prom smoke: the Prometheus alias of --stats text (same
# capture-to-file-first rationale as the other stats smokes).
echo "==> ninec --stats prom smoke test"
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t.te" \
    --stats prom > "$smokedir/stats.prom"
grep -q '^# TYPE ninec_encode_blocks counter' "$smokedir/stats.prom"

# Flight-recorder smoke: `trace` on the committed repairable corpus frame
# must replay the audited ladder and name the repaired rung per segment
# (exit 0 — the damage is within the parity budget); --json must carry
# the same audit machine-readably; --trace must dump a Chrome trace-event
# document any chrome://tracing/Perfetto build can load.
echo "==> ninec trace smoke test"
./target/release/ninec trace tests/corpus/v3_repairable.9cf > "$smokedir/audit.txt"
grep -q 'segments recovered' "$smokedir/audit.txt"
grep -q 'repaired' "$smokedir/audit.txt"
./target/release/ninec trace tests/corpus/v3_repairable.9cf --json \
    > "$smokedir/audit.json"
grep -q '"rung":"repaired"' "$smokedir/audit.json"
./target/release/ninec trace tests/corpus/v3_repairable.9cf \
    --trace "$smokedir/decode.trace.json" > /dev/null
grep -q '"traceEvents"' "$smokedir/decode.trace.json"

# Archive + scrub smoke test: append the parity-protected frame twice
# (full dedup, --verify re-decodes each frame), rot one stored byte, and
# walk the scrub contract end to end: --check reports without healing
# (exit 5), repair mode heals from parity and exits 0 with a report, and
# extraction is byte-exact again afterwards.
echo "==> ninec archive + scrub smoke test"
./target/release/ninec archive "$smokedir/p.9cf" "$smokedir/p.9cf" \
    -o "$smokedir/a.9ca" --verify > "$smokedir/arc.txt"
grep -q 'verified' "$smokedir/arc.txt"
grep -q '2 frames' "$smokedir/arc.txt"
./target/release/ninec extract "$smokedir/a.9ca" --frame 1 \
    -o "$smokedir/x.9cf" --verify >/dev/null
cmp "$smokedir/x.9cf" "$smokedir/p.9cf"
# Offset 16 = 12-byte store header + 4 bytes into the first blob's
# CRC-covered segment header (xor keeps the write a guaranteed change).
orig_byte=$(od -An -tu1 -j16 -N1 "$smokedir/a.9ca" | tr -d ' ')
printf "$(printf '\\%03o' $((orig_byte ^ 0xFF)))" \
    | dd of="$smokedir/a.9ca" bs=1 seek=16 conv=notrunc status=none
rc=0
./target/release/ninec scrub "$smokedir/a.9ca" --check >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 5 ]; then
    echo "scrub --check on a rotted archive must exit 5, got $rc" >&2
    exit 1
fi
./target/release/ninec scrub "$smokedir/a.9ca" > "$smokedir/scrub.txt"
grep -q 'repaired' "$smokedir/scrub.txt"
./target/release/ninec extract "$smokedir/a.9ca" -o "$smokedir/healed.9cf" >/dev/null
cmp "$smokedir/healed.9cf" "$smokedir/p.9cf"

# Torn-append smoke test: write epoch 1, append a second frame, then
# roll the index file back to epoch 1 — byte-for-byte the on-disk state
# a crash leaves after the new blobs hit the store but before the index
# rename commits. The archive must still open, see exactly one frame,
# extract it byte-exact, and a fresh append must reclaim the torn tail.
echo "==> ninec torn-append smoke test"
./target/release/ninec archive "$smokedir/p.9cf" -o "$smokedir/torn.9ca" >/dev/null
cp "$smokedir/torn.9ca.idx" "$smokedir/epoch1.idx"
./target/release/ninec archive "$smokedir/t4.9cf" -o "$smokedir/torn.9ca" >/dev/null
cp "$smokedir/epoch1.idx" "$smokedir/torn.9ca.idx"
./target/release/ninec info "$smokedir/torn.9ca" > "$smokedir/torninfo.txt"
grep -q '1 frames' "$smokedir/torninfo.txt"
./target/release/ninec extract "$smokedir/torn.9ca" -o "$smokedir/torn0.9cf" >/dev/null
cmp "$smokedir/torn0.9cf" "$smokedir/p.9cf"
./target/release/ninec archive "$smokedir/t4.9cf" -o "$smokedir/torn.9ca" >/dev/null
./target/release/ninec extract "$smokedir/torn.9ca" --frame 1 \
    -o "$smokedir/torn1.9cf" >/dev/null
cmp "$smokedir/torn1.9cf" "$smokedir/t4.9cf"

# Serve smoke test: bring the codec service up on ephemeral ports, read
# the bound addresses it prints, round-trip a cube file over the wire
# with `ninec client`, check the Prometheus exporter answers, and kill
# the server cleanly. The EXIT trap also kills it if any step fails.
echo "==> ninec serve smoke test"
./target/release/ninec serve --addr 127.0.0.1:0 --http-addr 127.0.0.1:0 \
    --archive "$smokedir/a.9ca" \
    > "$smokedir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q '^metrics ' "$smokedir/serve.log" 2>/dev/null && break
    kill -0 "$serve_pid" 2>/dev/null || {
        echo "ninec serve died on startup:" >&2
        cat "$smokedir/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
wire_addr=$(awk '/^listening /{print $2; exit}' "$smokedir/serve.log")
http_url=$(awk '/^metrics /{print $2; exit}' "$smokedir/serve.log")
http_addr=${http_url#http://}
http_addr=${http_addr%/metrics}
./target/release/ninec client "$wire_addr" ping > "$smokedir/ping.txt"
grep -q 'tenant default' "$smokedir/ping.txt"
# Random access into the hosted archive over the wire must agree with
# the local seek-index decode of the same window.
./target/release/ninec client "$wire_addr" range --frame 1 --range 5:20 \
    -o "$smokedir/range.wire.txt" >/dev/null
./target/release/ninec extract "$smokedir/a.9ca" --frame 1 --range 5:20 \
    -o "$smokedir/range.local.txt" >/dev/null
cmp "$smokedir/range.wire.txt" "$smokedir/range.local.txt"
./target/release/ninec client "$wire_addr" compress "$smokedir/t.cubes" \
    -o "$smokedir/wire.9cf" >/dev/null
./target/release/ninec client "$wire_addr" decompress "$smokedir/wire.9cf" \
    -o "$smokedir/wire.trits" >/dev/null
test -s "$smokedir/wire.trits"
# Repair over the wire: the server writes parity-protected v3 frames
# (default 4:1), so xor-flipping a payload byte (offset 49 = 33-byte v3
# header + 16-byte segment header) fails that segment's CRC and must
# decode bit-identical through the client's default repair policy.
cp "$smokedir/wire.9cf" "$smokedir/wirecorrupt.9cf"
orig_byte=$(od -An -tu1 -j49 -N1 "$smokedir/wirecorrupt.9cf" | tr -d ' ')
printf "$(printf '\\%03o' $((orig_byte ^ 0x55)))" \
    | dd of="$smokedir/wirecorrupt.9cf" bs=1 seek=49 conv=notrunc status=none
./target/release/ninec client "$wire_addr" decompress "$smokedir/wirecorrupt.9cf" \
    -o "$smokedir/wirerepaired.trits" > "$smokedir/wirerepair.txt"
grep -q 'repaired rung' "$smokedir/wirerepair.txt"
cmp "$smokedir/wire.trits" "$smokedir/wirerepaired.trits"
./target/release/ninec client "$http_addr" metrics > "$smokedir/serve.prom"
grep -q '^# TYPE ninec_serve_requests counter' "$smokedir/serve.prom"

# Chaos smoke: put the in-repo fault-injection proxy between the client
# and the still-running server at a 10% torn-write rate (seed 3 is
# deterministic: among the first connections, ordinal 2 tears the
# server->client stream after a few bytes). A retrying client must still
# complete the compress/decompress roundtrip bit-exact — the torn attempt
# surfaces as a transport error, the retry reconnects onto a clean path.
echo "==> ninec chaos-proxy smoke test"
./target/release/ninec chaos-proxy "$wire_addr" --torn-permille 100 --seed 3 \
    > "$smokedir/proxy.log" 2>&1 &
proxy_pid=$!
for _ in $(seq 1 100); do
    grep -q '^listening ' "$smokedir/proxy.log" 2>/dev/null && break
    kill -0 "$proxy_pid" 2>/dev/null || {
        echo "ninec chaos-proxy died on startup:" >&2
        cat "$smokedir/proxy.log" >&2
        exit 1
    }
    sleep 0.1
done
proxy_addr=$(awk '/^listening /{print $2; exit}' "$smokedir/proxy.log")
# Connection ordinals through the proxy: 0 = compress (clean), 1 = first
# decompress (clean), 2 = second decompress (torn -> retried onto 3).
./target/release/ninec client "$proxy_addr" compress "$smokedir/t.cubes" \
    -o "$smokedir/chaos.9cf" --retries 6 >/dev/null
./target/release/ninec client "$proxy_addr" decompress "$smokedir/chaos.9cf" \
    -o "$smokedir/chaos1.trits" --retries 6 >/dev/null
./target/release/ninec client "$proxy_addr" decompress "$smokedir/chaos.9cf" \
    -o "$smokedir/chaos2.trits" --retries 6 >/dev/null
# Bit-exact under faults: both proxied decodes agree with the fault-free
# decode of the same payload over the direct wire path.
cmp "$smokedir/chaos.9cf" "$smokedir/wire.9cf"
cmp "$smokedir/chaos1.trits" "$smokedir/wire.trits"
cmp "$smokedir/chaos2.trits" "$smokedir/wire.trits"
kill "$proxy_pid"
wait "$proxy_pid" 2>/dev/null || true
proxy_pid=""
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo "CI OK"

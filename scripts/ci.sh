#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
#
#   ./scripts/ci.sh
#
# Mirrors what reviewers run before merging; keep it green. The vendored
# API-subset crates under vendor/ are workspace-excluded, so fmt/clippy
# sweeps only touch first-party code.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The telemetry layer must be provably optional: the whole suite also
# passes with the obs feature (and every probe it gates) compiled out.
echo "==> cargo test -q --workspace --no-default-features"
cargo test -q --workspace --no-default-features

# Release-binary smoke test of the stats plumbing on a tiny CKT profile:
# generate -> compress --stats json must emit a JSON document with the
# encode counters in it.
echo "==> ninec --stats smoke test"
cargo build -q --release -p ninec-cli
smokedir="$(mktemp -d)"
trap 'rm -rf "$smokedir"' EXIT
./target/release/ninec generate custom:8,64,75 -o "$smokedir/t.cubes" >/dev/null
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t.te" \
    --stats json | grep -q '"ninec.encode.blocks"'
./target/release/ninec compress "$smokedir/t.cubes" -o "$smokedir/t.te" \
    --stats text | grep -q '^# TYPE ninec_encode_blocks counter'

echo "CI OK"

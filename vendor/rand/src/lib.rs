//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in a sandbox with no crates.io access, so the small
//! slice of `rand` it actually uses is vendored here: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and [`Rng::gen_range`]
//! over integer and `f64` ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but with equivalent statistical
//! quality for the simulation workloads in this repo. Everything in the
//! workspace that consumes randomness is seeded explicitly, so determinism
//! holds per-binary, exactly as with upstream `rand`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 random mantissa bits -> uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Range types that can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`]; this vendored build has a single generator.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8)
                .map(|_| a.gen_range(0u64..u64::MAX))
                .collect::<Vec<_>>(),
            (0..8)
                .map(|_| c.gen_range(0u64..u64::MAX))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        for &p in &[0.1, 0.5, 0.9] {
            let hits = (0..n).filter(|_| rng.gen_bool(p)).count();
            let got = hits as f64 / n as f64;
            assert!((got - p).abs() < 0.01, "p={p}, got {got}");
        }
    }

    #[test]
    fn gen_range_uniform_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "bucket count {c}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(3i32..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}

//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The workspace builds in a sandbox without crates.io access, so the slice
//! of `criterion` its benches use is vendored here: [`Criterion`],
//! benchmark groups with [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a real (if simple) timing harness, not a no-op: each benchmark runs
//! a warm-up iteration followed by `sample_size` timed samples and reports
//! min/mean/max wall-clock time per iteration on stdout. There is no
//! statistical analysis, HTML report or history; use it to compare orders of
//! magnitude and relative speed, which is all the workspace's benches need.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; holds the (optional) substring filter from the command
/// line.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--` to the
        // bench binary. Ignore flags, treat the first free argument as a
        // substring filter, matching criterion's CLI closely enough.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Self {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            filter: self.filter.clone(),
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Runs one parameterized benchmark; the parameter is passed through to
    /// the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

/// Times closures for a single benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name}: time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Identifier of a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench binary with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benches_run_and_respect_sample_size() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 10,
        };
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                });
            });
            group.finish();
        }
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".to_owned()),
            default_sample_size: 10,
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function("skipped", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        assert_eq!(calls, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("encode", 8).to_string(), "encode/8");
    }
}

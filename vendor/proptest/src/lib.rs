//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds in a sandbox without crates.io access, so the slice
//! of `proptest` its test suites rely on is vendored here:
//!
//! - [`Strategy`] with `prop_map`, [`Just`], numeric range strategies,
//!   [`collection::vec`], [`prelude::any`] and a small `[class]{lo,hi}`
//!   string-pattern strategy;
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros.
//!
//! Differences from upstream: no shrinking (failures report the raw inputs),
//! no persisted regression files, and a fixed deterministic RNG per test
//! (derived from the test name). Case count defaults to 64 and honours the
//! `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: a count or a range of counts.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        /// Inclusive upper bound.
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements are drawn from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// The glob-import surface mirrored from upstream `proptest`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Types with a canonical strategy generating arbitrary values.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `A` (e.g. `any::<bool>()`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = crate::strategy::BoolAny;
        fn arbitrary() -> Self::Strategy {
            crate::strategy::BoolAny
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5i32..=7).generate(&mut rng);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let strat = crate::collection::vec(0u8..4, 2..6).prop_map(|v| v.len());
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let n = strat.generate(&mut rng);
            assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn oneof_weights_respected() {
        let strat = prop_oneof![3 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::from_name("oneof");
        let hits = (0..10_000).filter(|_| strat.generate(&mut rng)).count();
        assert!((6500..8500).contains(&hits), "got {hits}");
    }

    #[test]
    fn string_pattern_strategy() {
        let strat = "[ -~\n]{0,40}";
        let mut rng = TestRng::from_name("strings");
        for _ in 0..300 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        /// The macro pipeline itself: args, assume, assert.
        #[test]
        #[allow(clippy::overly_complex_bool_expr)] // the tautology is the point
        fn macro_smoke(a in 0usize..50, b in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(b || !b, true, "tautology with a = {}", a);
            prop_assert_ne!(a, 13usize);
        }
    }
}

//! Value-generation strategies and the macros that consume them.

use crate::test_runner::TestRng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream `proptest` there is no shrinking: `generate` draws a
/// single value and failures report the raw inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe subset of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between type-erased strategies ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Self { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Output of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: crate::collection::SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: crate::collection::SizeRange) -> Self {
        Self { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.below_inclusive(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String patterns of the restricted form `[class]{lo,hi}`.
///
/// The character class supports literal characters, `a-b` ranges and the
/// escapes `\n`, `\t`, `\r`, `\\`, `\-`, `\]`. This covers the patterns used
/// by the workspace's fuzz-style tests (e.g. `"[ -~\n]{0,400}"`); anything
/// else panics with a clear message rather than silently generating wrong
/// data.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (vendored proptest supports only `[class]{{lo,hi}}`)"));
        let len = rng.below_inclusive(lo, hi);
        (0..len)
            .map(|_| chars[rng.below_inclusive(0, chars.len() - 1)])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi). Returns `None` on any
/// deviation from that shape.
fn parse_simple_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = find_class_end(rest)?;
    let (class, rest) = rest.split_at(close);
    let rest = rest.strip_prefix(']')?;
    let rest = rest.strip_prefix('{')?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    if lo > hi {
        return None;
    }
    let chars = expand_class(class)?;
    if chars.is_empty() && hi > 0 {
        return None;
    }
    Some((chars, lo, hi))
}

/// Index of the unescaped `]` closing the class.
fn find_class_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Expands a character class body into its alphabet.
fn expand_class(class: &str) -> Option<Vec<char>> {
    let mut out = Vec::new();
    let mut chars = class.chars().peekable();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        let literal = if c == '\\' {
            match chars.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else if c == '-' {
            // Range if we have both endpoints; literal '-' otherwise.
            if let (Some(lo), Some(&next)) = (prev, chars.peek()) {
                if next != '\\' {
                    chars.next();
                    if lo > next {
                        return None;
                    }
                    // `lo` is already in `out`; append the rest of the range.
                    let mut cp = lo as u32 + 1;
                    while cp <= next as u32 {
                        out.push(char::from_u32(cp)?);
                        cp += 1;
                    }
                    prev = None;
                    continue;
                }
            }
            '-'
        } else {
            c
        };
        out.push(literal);
        prev = Some(literal);
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs [`case_count`] cases with a deterministic RNG derived from
/// the test name; there is no shrinking.
///
/// [`case_count`]: crate::test_runner::case_count
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $(let $arg = $strat;)+
            let __cases = $crate::test_runner::case_count();
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __rejected: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                match __outcome {
                    Ok(()) => { __case += 1; }
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 64 * __cases,
                            "proptest {}: too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}\n    inputs: {}",
                            stringify!($name), __case, msg, __inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// [`proptest!`]: crate::proptest
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
///
/// [`proptest!`]: crate::proptest
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r,
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
///
/// [`proptest!`]: crate::proptest
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), __l,
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

//! Deterministic RNG and error plumbing behind the [`proptest!`] macro.
//!
//! [`proptest!`]: crate::proptest

use std::fmt;

/// Why a single generated test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is skipped, not failed.
    Reject(String),
    /// `prop_assert*!` failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure (used by the `prop_assert*` macros).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (used by `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The deterministic generator strategies draw from.
///
/// xoshiro256** seeded from a SplitMix64 expansion of the test name, so every
/// `proptest!` test replays the same input sequence on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (typically the test
    /// function name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seeds the generator from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn below_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each `proptest!` test runs (env `PROPTEST_CASES`,
/// default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

//! Offline drop-in subset of the `serde_json` API.
//!
//! The workspace builds in a sandbox without crates.io access, so the slice
//! of `serde_json` it uses is vendored here: the [`Value`] tree, a [`json!`]
//! macro for object/array literals with expression values, `&str`/`usize`
//! indexing, the `as_*`/`is_*` accessors the benches assert on, and
//! [`to_string`] / [`to_string_pretty`] serialization.
//!
//! There is no serde integration. A minimal recursive-descent [`from_str`]
//! parser is provided so tests can round-trip the machine-readable output
//! this workspace produces (e.g. CLI `--stats json` snapshots); it accepts
//! strict JSON with the standard escapes and rejects trailing input.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object. Insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number (integer or float).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite floating-point number.
    Float(f64),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// `true` if this is any number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object (`None` if absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into a [`Value`], used by the [`json!`] macro.
///
/// Implemented for the primitive types, strings, `Value` itself and
/// slices/arrays/`Vec`s of convertible elements. Takes `&self` so the macro
/// never moves out of borrowed struct fields.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_tojson_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from an object/array literal whose values are
/// arbitrary expressions implementing [`ToJson`].
///
/// Supports the flat forms this workspace uses:
/// `json!({ "k": expr, ... })`, `json!([expr, ...])`, `json!(expr)` and
/// `json!(null)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$value) ),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Error type of the serialization functions.
///
/// Serializing a [`Value`] cannot fail in this vendored build; the `Result`
/// return mirrors upstream so call sites stay source-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                // serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
    }
}

/// Parses a strict-JSON document into a [`Value`].
///
/// Accepts the full value grammar (objects, arrays, strings with the
/// standard `\uXXXX` escapes incl. surrogate pairs, numbers, booleans,
/// `null`) and errors on garbage, truncation, or trailing non-whitespace.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_owned())),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_owned())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00).ok_or_else(|| {
                                            Error("invalid low surrogate".to_owned())
                                        })?;
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("invalid surrogate pair".to_owned()))?
                                } else {
                                    return Err(Error("lone high surrogate".to_owned()));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error("invalid \\u escape".to_owned()))?
                            };
                            out.push(c);
                            // parse_hex4 left pos just past the digits.
                            continue;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".to_owned()))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error("raw control character in string".to_owned()));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_owned()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".to_owned()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".to_owned()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(-v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_indexing_and_accessors() {
        let items = vec![1usize, 2, 3];
        let name = String::from("s5378");
        let v = json!({
            "circuit": name,
            "k_values": items,
            "cr": 45.5,
            "count": 7usize,
        });
        // `name` must still be usable: the macro borrows.
        assert_eq!(name, "s5378");
        assert_eq!(v["circuit"].as_str(), Some("s5378"));
        assert_eq!(v["k_values"].as_array().unwrap().len(), 3);
        assert!(v["k_values"][1].is_number());
        assert_eq!(v["k_values"][1].as_u64(), Some(2));
        assert!(v["cr"].is_number());
        assert!(v["missing"].is_null());
        assert!(v[99].is_null());
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({ "a": 1usize, "b": [true, false], "c": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n  \"a\": 1,"));
        assert!(s.contains("\"b\": [\n    true,\n    false\n  ]"));
        assert!(s.contains("\\\"y\""));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn float_formatting_matches_serde_json() {
        assert_eq!(to_string(&json!(97.0f64)).unwrap(), "97.0");
        assert_eq!(to_string(&json!(0.5f64)).unwrap(), "0.5");
        assert_eq!(to_string(&json!(12usize)).unwrap(), "12");
        assert_eq!(to_string(&json!(-3i32)).unwrap(), "-3");
    }

    #[test]
    fn compact_vs_pretty() {
        let v = Value::Array(vec![json!(1usize), json!(null)]);
        assert_eq!(to_string(&v).unwrap(), "[1,null]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  null\n]");
    }

    #[test]
    fn parser_round_trips_own_output() {
        let v = json!({
            "name": "CKT1 \"quoted\"\n",
            "counts": [0usize, 17, 4096],
            "cr": 61.25,
            "neg": -3i32,
            "flag": true,
            "none": Value::Null,
            "nested": Value::Object(vec![("k".to_owned(), json!(2usize))]),
        });
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&rendered).unwrap();
            assert_eq!(back, v, "round trip through {rendered:?}");
        }
    }

    #[test]
    fn parser_accepts_standard_json() {
        assert_eq!(from_str(" null ").unwrap(), Value::Null);
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(from_str("\"a\\u0041\"").unwrap().as_str(), Some("aA"));
        // Surrogate pair for U+1D11E (musical G clef).
        assert_eq!(
            from_str("\"\\uD834\\uDD1E\"").unwrap().as_str(),
            Some("\u{1D11E}")
        );
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str("-12").unwrap().as_f64(), Some(-12.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\\q\"",
            "1 2",
            "{\"a\" 1}",
            "\"\\uD834\"",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }
}

//! Offline drop-in subset of the `serde_json` API.
//!
//! The workspace builds in a sandbox without crates.io access, so the slice
//! of `serde_json` it uses is vendored here: the [`Value`] tree, a [`json!`]
//! macro for object/array literals with expression values, `&str`/`usize`
//! indexing, the `as_*`/`is_*` accessors the benches assert on, and
//! [`to_string`] / [`to_string_pretty`] serialization.
//!
//! There is no serde integration and no parser — this crate *produces*
//! machine-readable experiment output; nothing in the workspace parses JSON
//! back in.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object. Insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number (integer or float).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite floating-point number.
    Float(f64),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// `true` if this is any number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in an object (`None` if absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Conversion into a [`Value`], used by the [`json!`] macro.
///
/// Implemented for the primitive types, strings, `Value` itself and
/// slices/arrays/`Vec`s of convertible elements. Takes `&self` so the macro
/// never moves out of borrowed struct fields.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

macro_rules! impl_tojson_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_tojson_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from an object/array literal whose values are
/// arbitrary expressions implementing [`ToJson`].
///
/// Supports the flat forms this workspace uses:
/// `json!({ "k": expr, ... })`, `json!([expr, ...])`, `json!(expr)` and
/// `json!(null)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$value) ),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Error type of the serialization functions.
///
/// Serializing a [`Value`] cannot fail in this vendored build; the `Result`
/// return mirrors upstream so call sites stay source-compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                // serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_indexing_and_accessors() {
        let items = vec![1usize, 2, 3];
        let name = String::from("s5378");
        let v = json!({
            "circuit": name,
            "k_values": items,
            "cr": 45.5,
            "count": 7usize,
        });
        // `name` must still be usable: the macro borrows.
        assert_eq!(name, "s5378");
        assert_eq!(v["circuit"].as_str(), Some("s5378"));
        assert_eq!(v["k_values"].as_array().unwrap().len(), 3);
        assert!(v["k_values"][1].is_number());
        assert_eq!(v["k_values"][1].as_u64(), Some(2));
        assert!(v["cr"].is_number());
        assert!(v["missing"].is_null());
        assert!(v[99].is_null());
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({ "a": 1usize, "b": [true, false], "c": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n  \"a\": 1,"));
        assert!(s.contains("\"b\": [\n    true,\n    false\n  ]"));
        assert!(s.contains("\\\"y\""));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn float_formatting_matches_serde_json() {
        assert_eq!(to_string(&json!(97.0f64)).unwrap(), "97.0");
        assert_eq!(to_string(&json!(0.5f64)).unwrap(), "0.5");
        assert_eq!(to_string(&json!(12usize)).unwrap(), "12");
        assert_eq!(to_string(&json!(-3i32)).unwrap(), "-3");
    }

    #[test]
    fn compact_vs_pretty() {
        let v = Value::Array(vec![json!(1usize), json!(null)]);
        assert_eq!(to_string(&v).unwrap(), "[1,null]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  null\n]");
    }
}

//! Offline placeholder for `serde`.
//!
//! The workspace builds in a sandbox without crates.io access. `serde` is
//! only referenced as an *optional* dependency behind the (never enabled)
//! `serde` cargo feature of `ninec-testdata`, so this placeholder exists
//! purely to keep manifest resolution working. It defines skeletal
//! `Serialize`/`Deserialize` traits but no derive macros or data formats;
//! enabling the `ninec-testdata/serde` feature against this placeholder will
//! not compile `serde_impls.rs` (it relies on upstream derive) — vendor the
//! real `serde` before turning that feature on.

#![warn(missing_docs)]

/// A data structure that can be serialized (skeletal; see crate docs).
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization format (skeletal; see crate docs).
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Serialization error type.
    type Error;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// Deserialization traits (skeletal; see crate docs).
pub mod de {
    use std::fmt;

    /// A data structure that can be deserialized (skeletal).
    pub trait Deserialize<'de>: Sized {
        /// Deserializes from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A deserialization format (skeletal).
    pub trait Deserializer<'de>: Sized {
        /// Deserialization error type.
        type Error: Error;

        /// Deserializes a string.
        fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    }

    /// Drives deserialization of one value (skeletal).
    pub trait Visitor<'de>: Sized {
        /// The type this visitor produces.
        type Value;

        /// Visits a borrowed string.
        fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E>;
    }

    /// Errors produced during deserialization.
    pub trait Error: Sized + fmt::Display {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

pub use de::{Deserialize, Deserializer};

//! Deterministic fault-injection harness for the `9CSF` decode subsystem.
//!
//! Three layers of attack, all asserting the same *trichotomy*: for any
//! mutated frame, decoding must either (a) reproduce the original stream,
//! (b) return a typed error, or (c) — in salvage mode — return a
//! [`SalvageReport`] whose damage map accurately covers the mutation.
//! Never a panic, never a hang, never an allocation past [`DecodeLimits`].
//!
//! 1. an **exhaustive single-fault sweep**: every byte of a golden frame
//!    × {each of the 8 bit flips, zero, 0xFF} plus truncation at every
//!    length;
//! 2. **proptest multi-fault campaigns**: random byte salads, multi-site
//!    corruption, and segment-level splicing (drop / duplicate / swap);
//! 3. a committed **corpus of nasty frames** (`tests/corpus/*.9cf`) —
//!    allocation bombs, forged expansion headers, bad CRCs — replayed on
//!    every run (regenerate with `CORPUS_BLESS=1`).
//!
//! With the `failpoints` feature the suite also forces worker panics,
//! delays and torn writes *inside* the pool via
//! [`ninec::engine::faultpoint`] and checks panic isolation at 1 and 8
//! threads.

use ninec::engine::frame::{self, DecodeLimits, ScanEntry, HEADER_BYTES, SEGMENT_HEADER_BYTES};
use ninec::engine::Engine;
use ninec::{DecodeError, FrameError};
use ninec_testdata::gen::SyntheticProfile;
use ninec_testdata::trit::{Trit, TritVec};
use proptest::prelude::*;

/// A small multi-segment golden frame plus its source stream.
fn golden(seed: u64) -> (TritVec, Vec<u8>) {
    let set = SyntheticProfile::new("fault", 24, 64, 0.72).generate(seed);
    let stream = set.as_stream().clone();
    let frame = engine(1)
        .encode_frame(8, &stream)
        .expect("golden frame encodes");
    (stream, frame)
}

fn engine(threads: usize) -> Engine {
    Engine::builder().threads(threads).segment_bits(256).build()
}

/// Care-bit-compatible equality: every care bit of `a` survives in `b`.
fn covers(a: &TritVec, b: &TritVec) -> bool {
    a.len() == b.len()
        && (0..a.len()).all(|i| match a.get(i) {
            Some(t) if t.is_care() => b.get(i) == Some(t),
            _ => true,
        })
}

/// The single-mutant trichotomy check, strict and salvage mode.
///
/// `mutated_at` is the byte offset the mutation touched (`None` for
/// truncations, which have no single offset).
fn check_mutant(original: &TritVec, clean: &[u8], mutant: &[u8], mutated_at: Option<usize>) {
    // Strict mode: all 31 header bytes and every segment byte are CRC
    // covered, so any real change is a typed error; a no-op "mutation"
    // must still decode to the source.
    match engine(2).decode_frame(mutant) {
        Ok(out) => {
            assert!(
                covers(original, &out),
                "strict decode silently accepted a corrupt frame (mutation at {mutated_at:?})"
            );
        }
        Err(e) => {
            // Typed error: rendering it must not panic either.
            let _ = e.to_string();
        }
    }

    // Salvage mode: file-level damage is fatal; anything at or past the
    // first segment must yield a report with an accurate damage map.
    match engine(2).decode_frame_salvage(mutant) {
        Err(e) => {
            let _ = e.to_string();
            if let Some(at) = mutated_at {
                assert!(
                    at < HEADER_BYTES || mutant == clean,
                    "salvage refused a frame whose file header is intact (mutation at {at})"
                );
            }
        }
        Ok(report) => {
            assert_eq!(
                report.trits.len(),
                original.len(),
                "salvage output length must match the header's source length"
            );
            if report.is_full_recovery() {
                assert!(
                    covers(original, &report.trits),
                    "full recovery must reproduce the source (mutation at {mutated_at:?})"
                );
            } else {
                // Damage map accuracy: the mutated byte lies inside some
                // damaged byte range, and everything *outside* the damaged
                // trit ranges matches the original stream.
                if let Some(at) = mutated_at {
                    assert!(
                        report
                            .damaged
                            .iter()
                            .any(|d| d.byte_range.contains(&at)
                                || d.byte_range.start >= mutant.len()),
                        "mutated byte {at} not covered by damage map {:?}",
                        report
                            .damaged
                            .iter()
                            .map(|d| d.byte_range.clone())
                            .collect::<Vec<_>>()
                    );
                }
                let mut damaged_trits = vec![false; original.len()];
                for d in &report.damaged {
                    for i in d.trit_range.clone() {
                        if i < original.len() {
                            damaged_trits[i] = true;
                        }
                    }
                    // Erased spans come back as X.
                    for i in d.trit_range.clone() {
                        if let Some(t) = report.trits.get(i) {
                            assert_eq!(
                                t,
                                Trit::X,
                                "damaged trit {i} must be erased to X (mutation at {mutated_at:?})"
                            );
                        }
                    }
                }
                for (i, damaged) in damaged_trits.iter().enumerate().take(original.len()) {
                    if *damaged {
                        continue;
                    }
                    if let Some(t) = original.get(i) {
                        if t.is_care() {
                            assert_eq!(
                                report.trits.get(i),
                                Some(t),
                                "intact trit {i} changed (mutation at {mutated_at:?})"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// A v3 golden frame (interleaved GF(256) parity groups) plus its source.
fn golden_v3(seed: u64, g: u8, r: u8) -> (TritVec, Vec<u8>) {
    let set = SyntheticProfile::new("fault-v3", 24, 64, 0.72).generate(seed);
    let stream = set.as_stream().clone();
    let frame = engine_v3(1, g, r)
        .encode_frame(8, &stream)
        .expect("golden v3 frame encodes");
    (stream, frame)
}

fn engine_v3(threads: usize, g: u8, r: u8) -> Engine {
    Engine::builder()
        .threads(threads)
        .segment_bits(256)
        .parity(g, r)
        .build()
}

/// The **four-way invariant** on erasure-coded (v3) frames: for any
/// mutant, decoding yields a correct roundtrip ∨ a bit-exact repair ∨ a
/// typed error ∨ a salvage whose damage map accurately bounds the loss.
/// Never a panic, never silent corruption.
fn check_mutant_v3(original: &TritVec, mutant: &[u8], mutated_at: Option<usize>) {
    // Arm 1/3: strict decode — correct output or a typed error.
    match engine_v3(2, 2, 1).decode_frame(mutant) {
        Ok(out) => assert!(
            covers(original, &out),
            "strict decode silently accepted a corrupt v3 frame (mutation at {mutated_at:?})"
        ),
        Err(e) => {
            let _ = e.to_string();
        }
    }
    // Arms 2/3/4: the repair ladder.
    match engine_v3(2, 2, 1).decode_frame_repair(mutant) {
        Err(e) => {
            let _ = e.to_string();
        }
        Ok(report) => {
            assert_eq!(
                report.trits.len(),
                original.len(),
                "repair output length must match the header's source length"
            );
            if report.is_full_recovery() {
                // Bit-exact repair (or parity-only damage): the output is
                // indistinguishable from the clean decode.
                assert!(
                    covers(original, &report.trits),
                    "full recovery must reproduce the source (mutation at {mutated_at:?})"
                );
            } else {
                // Accurate damage map: non-repaired damage is erased to
                // X, everything outside it matches the original.
                let mut damaged_trits = vec![false; original.len()];
                for d in &report.damaged {
                    if d.reason.is_repaired() {
                        continue;
                    }
                    for i in d.trit_range.clone() {
                        if let Some(t) = report.trits.get(i) {
                            assert_eq!(
                                t,
                                Trit::X,
                                "unrepaired trit {i} must be erased (mutation at {mutated_at:?})"
                            );
                        }
                        if i < original.len() {
                            damaged_trits[i] = true;
                        }
                    }
                }
                for (i, damaged) in damaged_trits.iter().enumerate() {
                    if *damaged {
                        continue;
                    }
                    if let Some(t) = original.get(i) {
                        if t.is_care() {
                            assert_eq!(
                                report.trits.get(i),
                                Some(t),
                                "intact trit {i} changed (mutation at {mutated_at:?})"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Every byte × {flip each of 8 bits, zero, 0xFF}: zero panics, zero
/// hangs, salvage damage maps always cover the mutation.
#[test]
fn exhaustive_single_byte_mutation_sweep() {
    let (original, clean) = golden(11);
    assert!(engine(1).decode_frame(&clean).is_ok(), "golden frame sane");
    for at in 0..clean.len() {
        let mut patterns: Vec<u8> = (0..8).map(|b| clean[at] ^ (1 << b)).collect();
        patterns.push(0x00);
        patterns.push(0xFF);
        for value in patterns {
            if value == clean[at] {
                continue; // identity "mutation"
            }
            let mut mutant = clean.clone();
            mutant[at] = value;
            check_mutant(&original, &clean, &mutant, Some(at));
        }
    }
}

/// Truncation at every possible length: typed error in strict mode,
/// best-effort prefix recovery in salvage mode.
#[test]
fn exhaustive_truncation_sweep() {
    let (original, clean) = golden(12);
    for cut in 0..clean.len() {
        let mutant = &clean[..cut];
        check_mutant(&original, &clean, mutant, None);
        if cut >= HEADER_BYTES + SEGMENT_HEADER_BYTES {
            // Once the file header and at least one segment header fit,
            // salvage must produce a full-length report.
            let report = engine(1)
                .decode_frame_salvage(mutant)
                .expect("salvage survives truncation past the file header");
            assert_eq!(report.trits.len(), original.len());
        }
    }
}

/// The single-byte sweep wired over a **v3 golden**: every byte of the
/// erasure-coded frame × {8 bit flips, zero, 0xFF} upholds the four-way
/// invariant — and single-byte damage to a data segment must in fact be
/// *repaired* (full recovery), since `r = 1` covers one loss per group.
#[test]
fn exhaustive_single_byte_mutation_sweep_v3() {
    let (original, clean) = golden_v3(31, 2, 1);
    let clean_out = engine_v3(1, 2, 1).decode_frame(&clean).expect("golden v3");
    assert_eq!(clean_out.len(), original.len());
    let data = data_segment_ranges(&clean);
    for at in 0..clean.len() {
        let mut patterns: Vec<u8> = (0..8).map(|b| clean[at] ^ (1 << b)).collect();
        patterns.push(0x00);
        patterns.push(0xFF);
        for value in patterns {
            if value == clean[at] {
                continue;
            }
            let mut mutant = clean.clone();
            mutant[at] = value;
            check_mutant_v3(&original, &mutant, Some(at));
        }
    }
    // Acceptance pin: any single corrupted *data payload* byte decodes
    // bit-exact through the ladder (one probe per segment).
    for r in &data {
        let mut mutant = clean.clone();
        mutant[r.start + SEGMENT_HEADER_BYTES] ^= 0x55;
        let report = engine_v3(2, 2, 1)
            .decode_frame_repair(&mutant)
            .expect("repair runs");
        assert!(report.is_full_recovery(), "segment at {r:?} not repaired");
        assert_eq!(report.trits, clean_out, "repair must be bit-exact");
    }
}

/// Truncation at every length of a v3 golden: the four-way invariant
/// holds, and cuts that only amputate *parity* still repair to a full
/// recovery (the data segments are all intact).
#[test]
fn exhaustive_truncation_sweep_v3() {
    let (original, clean) = golden_v3(32, 2, 1);
    let data = data_segment_ranges(&clean);
    let data_end = data.last().expect("segments").end;
    for cut in 0..clean.len() {
        let mutant = &clean[..cut];
        check_mutant_v3(&original, mutant, None);
        if cut >= data_end {
            // All data present, parity torn: strict decode rejects the
            // malformed tail, but the ladder recovers everything.
            let report = engine_v3(1, 2, 1)
                .decode_frame_repair(mutant)
                .expect("ladder survives parity truncation");
            assert!(
                report.is_full_recovery(),
                "cut at {cut} lost data despite all segments being present"
            );
            assert!(covers(&original, &report.trits));
        }
    }
}

/// Appending garbage is detected in strict mode and mapped in salvage.
#[test]
fn trailing_garbage_is_detected() {
    let (original, clean) = golden(13);
    for extra in [1usize, 3, 16, 64] {
        let mut mutant = clean.clone();
        mutant.extend(std::iter::repeat_n(0xA5, extra));
        assert!(
            engine(1).decode_frame(&mutant).is_err(),
            "{extra} garbage bytes accepted"
        );
        let report = engine(1).decode_frame_salvage(&mutant).unwrap();
        assert_eq!(report.trits.len(), original.len());
        assert!(covers(&original, &report.trits));
    }
}

/// The limit guards hold under the sweep too: a tiny allocation budget
/// turns every decode into a typed `LimitExceeded`, never an OOM.
#[test]
fn limits_bound_the_sweep() {
    let (_, clean) = golden(14);
    let starved = Engine::builder()
        .limits(DecodeLimits {
            max_segments: 2,
            ..DecodeLimits::default()
        })
        .build();
    assert!(matches!(
        starved.decode_frame(&clean),
        Err(DecodeError::LimitExceeded { .. }) | Err(DecodeError::Frame(_))
    ));
}

/// Byte ranges of the clean frame's segments, via the salvage scanner.
fn segment_ranges(clean: &[u8]) -> Vec<std::ops::Range<usize>> {
    let scan = frame::scan_salvage(clean, &DecodeLimits::default()).unwrap();
    scan.entries
        .iter()
        .map(|e| match e {
            ScanEntry::Intact { byte_range, .. } | ScanEntry::Parity { byte_range, .. } => {
                byte_range.clone()
            }
            ScanEntry::Damaged { .. } => panic!("golden frame must scan clean"),
        })
        .collect()
}

/// Byte ranges of the clean frame's *data* segments only (v3 frames put
/// parity shards after the data, so the repair campaigns corrupt data by
/// index).
fn data_segment_ranges(clean: &[u8]) -> Vec<std::ops::Range<usize>> {
    let scan = frame::scan_salvage(clean, &DecodeLimits::default()).unwrap();
    scan.entries
        .iter()
        .filter_map(|e| match e {
            ScanEntry::Intact { byte_range, .. } => Some(byte_range.clone()),
            ScanEntry::Parity { .. } => None,
            ScanEntry::Damaged { .. } => panic!("golden frame must scan clean"),
        })
        .collect()
}

proptest! {
    /// Random multi-site corruption (1–4 bytes): the trichotomy holds.
    #[test]
    fn multi_fault_campaign(
        seed in 0u64..8,
        offsets in proptest::collection::vec(0usize..4096, 1..4),
        xors in proptest::collection::vec(1u8..255, 1..4)
    ) {
        let (original, clean) = golden(seed);
        let mut mutant = clean.clone();
        for (&at, &xor) in offsets.iter().zip(xors.iter()) {
            let at = at % mutant.len();
            mutant[at] ^= xor; // xor >= 1: never the identity
        }
        // Multi-fault damage maps may merge adjacent ranges, so only the
        // trichotomy (not per-byte coverage) is asserted.
        match engine(2).decode_frame(&mutant) {
            Ok(out) => prop_assert_eq!(out.len(), original.len()),
            Err(e) => { let _ = e.to_string(); }
        }
        if let Ok(report) = engine(2).decode_frame_salvage(&mutant) {
            prop_assert_eq!(report.trits.len(), original.len());
            prop_assert!(report.recovered_segments <= report.total_segments);
        }
    }

    /// Segment splicing: drop, duplicate or swap whole segments. The
    /// container carries no per-segment index, so a swap of equal-shape
    /// segments may legally decode — but it must never panic, and any
    /// success must honour the header's source length.
    #[test]
    fn splicing_campaign(seed in 0u64..4, op in 0usize..3, pick in 0usize..16) {
        let (original, clean) = golden(seed);
        let ranges = segment_ranges(&clean);
        prop_assume!(ranges.len() >= 2);
        let i = pick % ranges.len();
        let j = (pick / ranges.len()) % ranges.len();
        let mut mutant = Vec::with_capacity(clean.len() * 2);
        mutant.extend_from_slice(&clean[..HEADER_BYTES]);
        match op {
            // Drop segment i.
            0 => {
                for (s, r) in ranges.iter().enumerate() {
                    if s != i {
                        mutant.extend_from_slice(&clean[r.clone()]);
                    }
                }
            }
            // Duplicate segment i in place.
            1 => {
                for (s, r) in ranges.iter().enumerate() {
                    mutant.extend_from_slice(&clean[r.clone()]);
                    if s == i {
                        mutant.extend_from_slice(&clean[r.clone()]);
                    }
                }
            }
            // Swap segments i and j.
            _ => {
                for (s, r) in ranges.iter().enumerate() {
                    let src = if s == i { &ranges[j] } else if s == j { &ranges[i] } else { r };
                    mutant.extend_from_slice(&clean[src.clone()]);
                }
            }
        }
        match engine(2).decode_frame(&mutant) {
            Ok(out) => prop_assert_eq!(out.len(), original.len()),
            Err(e) => { let _ = e.to_string(); }
        }
        if let Ok(report) = engine(2).decode_frame_salvage(&mutant) {
            // Salvage always honours the (CRC-valid) header's source length.
            prop_assert_eq!(report.trits.len(), original.len());
        }
    }

    /// **Repair exactness**: for any damage within the parity budget
    /// (≤ `r` corrupted segments per interleaved group), the repair
    /// ladder's output is **byte-identical** to the uncorrupted decode —
    /// across K ∈ {4, 8, 16, 32} and thread counts {1, 8}.
    #[test]
    fn within_budget_repair_is_byte_identical(
        k_idx in 0usize..4,
        threads_idx in 0usize..2,
        seed in 0u64..3,
        picks in proptest::collection::vec(any::<u16>(), 1..4),
    ) {
        let k = [4usize, 8, 16, 32][k_idx];
        let threads = [1usize, 8][threads_idx];
        let set = SyntheticProfile::new("repair-pt", 24, 64, 0.72).generate(seed);
        let stream = set.as_stream().clone();
        let eng = engine_v3(threads, 4, 1);
        let clean = eng.encode_frame(k, &stream).expect("encodes");
        let clean_out = eng.decode_frame(&clean).expect("clean v3 decodes");
        let data = data_segment_ranges(&clean);
        let groups = data.len().div_ceil(4);
        // Budget: at most r = 1 corrupted segment per group (interleaved:
        // segment i belongs to group i mod G). Damaged neighbours merge
        // into one scan range, which repair correctly refuses to guess
        // about, so keep the corrupted segments pairwise non-adjacent.
        let mut chosen: Vec<usize> = Vec::new();
        for p in picks {
            let i = (p as usize) % data.len();
            if chosen
                .iter()
                .all(|&j| j.abs_diff(i) >= 2 && j % groups != i % groups)
            {
                chosen.push(i);
            }
        }
        prop_assume!(!chosen.is_empty());
        let mut mutant = clean.clone();
        for &i in &chosen {
            mutant[data[i].start + SEGMENT_HEADER_BYTES] ^= 0x5A;
        }
        // Strict decode rejects the damage...
        prop_assert!(eng.decode_frame(&mutant).is_err());
        // ...and the ladder rebuilds it bit-exact.
        let report = eng.decode_frame_repair(&mutant).expect("repair runs");
        prop_assert!(
            report.is_full_recovery(),
            "k={} threads={} damaged={:?}: {:?}",
            k, threads, chosen, report.damaged
        );
        prop_assert_eq!(&report.trits, &clean_out, "repair must be byte-identical");
        let rebuilt = report
            .damaged
            .iter()
            .filter(|d| d.reason.is_repaired())
            .count();
        prop_assert_eq!(rebuilt, chosen.len());
    }

    /// Header transplants: graft the file header of one frame onto the
    /// segments of another (different seed ⇒ different lengths).
    #[test]
    fn header_transplant_campaign(a in 0u64..4, b in 4u64..8) {
        let (_, frame_a) = golden(a);
        let (_, frame_b) = golden(b);
        let mut mutant = frame_a[..HEADER_BYTES].to_vec();
        mutant.extend_from_slice(&frame_b[HEADER_BYTES..]);
        match engine(1).decode_frame(&mutant) {
            Ok(out) => prop_assert_eq!(out.len(), engine_claimed_len(&mutant)),
            Err(e) => { let _ = e.to_string(); }
        }
        if let Ok(report) = engine(1).decode_frame_salvage(&mutant) {
            prop_assert_eq!(report.trits.len(), engine_claimed_len(&mutant));
            // The transplanted segments still decode somewhere.
            prop_assert!(report.total_segments >= report.recovered_segments);
        }
    }
}

/// The source length the (CRC-valid) file header claims.
fn engine_claimed_len(bytes: &[u8]) -> usize {
    let scan = frame::scan_salvage(bytes, &DecodeLimits::unlimited()).unwrap();
    scan.source_len
}

// ---------------------------------------------------------------------------
// Corpus replay: committed nasty frames under tests/corpus/.
// ---------------------------------------------------------------------------

/// Deterministically regenerates every corpus file. Run with
/// `CORPUS_BLESS=1 cargo test -q corpus` after changing the frame format.
fn corpus_files() -> Vec<(&'static str, Vec<u8>)> {
    let (_, clean) = golden(99);
    let lengths = ninec::code::CodeTable::paper().lengths();

    // 1. Allocation bomb: header claims u32::MAX segments of a 2^40-trit
    //    stream, but carries zero segment bytes.
    let mut bomb = Vec::new();
    frame::write_header(&mut bomb, lengths, u32::MAX, 1 << 40);

    // 2. Bad CRC: one corrupted payload byte in segment 1.
    let ranges = segment_ranges(&clean);
    let mut bad_crc = clean.clone();
    bad_crc[ranges[1].start + SEGMENT_HEADER_BYTES] ^= 0x0F;

    // 3. Truncated tail: the last segment cut in half.
    let last = ranges.last().unwrap();
    let truncated = clean[..last.start + (last.end - last.start) / 2].to_vec();

    // 4. Spliced: segment 0 duplicated, count header untouched.
    let mut spliced = clean[..HEADER_BYTES].to_vec();
    spliced.extend_from_slice(&clean[ranges[0].clone()]);
    for r in &ranges {
        spliced.extend_from_slice(&clean[r.clone()]);
    }

    // 5. Forged expansion: a CRC-valid segment whose header claims 2^20
    //    source trits decoded from a 2-trit payload.
    let mut forged = Vec::new();
    frame::write_header(&mut forged, lengths, 1, 1 << 20);
    let tiny: TritVec = "01".parse().unwrap();
    frame::write_segment(&mut forged, 8, 1 << 20, &tiny).unwrap();

    // --- v3 (erasure-coded) corpus ---------------------------------
    let (_, clean_v3) = golden_v3(99, 2, 1);
    let v3_data = data_segment_ranges(&clean_v3);
    let v3_all = segment_ranges(&clean_v3);
    let groups = v3_data.len().div_ceil(2);

    // 6. Repairable: one corrupted data payload byte — within the r = 1
    //    budget, so the ladder must rebuild it bit-exact.
    let mut v3_repairable = clean_v3.clone();
    v3_repairable[v3_data[0].start + SEGMENT_HEADER_BYTES] ^= 0x0F;

    // 7. Over budget: two corrupted segments in the *same* interleaved
    //    group (indices 0 and G share group 0) — repair must refuse that
    //    group and fall back to accurate erasure.
    let mut v3_over_budget = clean_v3.clone();
    v3_over_budget[v3_data[0].start + SEGMENT_HEADER_BYTES] ^= 0x0F;
    v3_over_budget[v3_data[groups].start + SEGMENT_HEADER_BYTES] ^= 0x0F;

    // 8. Corrupted parity segment: the data is all intact, so this is
    //    still a full recovery — the damage costs zero output trits.
    let mut v3_bad_parity = clean_v3.clone();
    let parity_start = v3_all[v3_data.len()].start;
    v3_bad_parity[parity_start + SEGMENT_HEADER_BYTES] ^= 0x0F;

    // 9. v2 in v3 clothing: a version-3 file header with `parity 0:0`
    //    wrapped around plain v2 segments — wire-compatible apart from
    //    the two geometry bytes.
    let mut v2_in_v3 = Vec::new();
    let n = segment_ranges(&clean).len();
    frame::write_header_v3(
        &mut v2_in_v3,
        lengths,
        n as u32,
        engine_claimed_len(&clean) as u64,
        0,
        0,
    );
    v2_in_v3.extend_from_slice(&clean[HEADER_BYTES..]);

    vec![
        ("bomb_header.9cf", bomb),
        ("bad_crc.9cf", bad_crc),
        ("truncated_tail.9cf", truncated),
        ("spliced.9cf", spliced),
        ("forged_expansion.9cf", forged),
        ("v3_repairable.9cf", v3_repairable),
        ("v3_over_budget.9cf", v3_over_budget),
        ("v3_bad_parity.9cf", v3_bad_parity),
        ("v3_v2_in_v3_clothing.9cf", v2_in_v3),
    ]
}

#[test]
fn corpus_replay() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let bless = std::env::var_os("CORPUS_BLESS").is_some();
    let (original, clean) = golden(99);
    let (original_v3, clean_v3) = golden_v3(99, 2, 1);
    for (name, bytes) in corpus_files() {
        let path = dir.join(name);
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &bytes).unwrap();
            continue;
        }
        let on_disk = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (regenerate with CORPUS_BLESS=1)", path.display()));
        assert_eq!(
            on_disk, bytes,
            "{name} drifted from its generator; regenerate with CORPUS_BLESS=1"
        );

        // Replay through both modes. The in-place mutants of the golden
        // frame get the full damage-map accuracy check; the structural
        // ones (bomb, splice, forged header) get the trichotomy only —
        // their segments are *valid*, just not where the header says.
        match name {
            "bad_crc.9cf" | "truncated_tail.9cf" => {
                check_mutant(&original, &clean, &bytes, None);
            }
            "v3_repairable.9cf" | "v3_over_budget.9cf" | "v3_bad_parity.9cf" => {
                check_mutant_v3(&original_v3, &bytes, None);
            }
            _ => {
                if let Ok(out) = engine(2).decode_frame(&bytes) {
                    assert_eq!(out.len(), engine_claimed_len(&bytes), "{name}");
                }
                if let Ok(report) = engine(2).decode_frame_salvage(&bytes) {
                    assert_eq!(report.trits.len(), engine_claimed_len(&bytes), "{name}");
                }
            }
        }
    }
    if bless {
        return;
    }

    // Pinned per-file expectations.
    let read = |name: &str| std::fs::read(dir.join(name)).unwrap();

    // The bomb is rejected before any allocation, in both modes.
    let bomb = read("bomb_header.9cf");
    assert!(matches!(
        engine(1).decode_frame(&bomb),
        Err(DecodeError::LimitExceeded { .. }) | Err(DecodeError::TruncatedStream { .. })
    ));
    assert!(engine(1).decode_frame_salvage(&bomb).is_err());

    let bad = read("bad_crc.9cf");
    assert!(matches!(
        engine(1).decode_frame(&bad),
        Err(DecodeError::Frame(FrameError::BadCrc { segment: 1 }))
    ));
    let report = engine(1).decode_frame_salvage(&bad).unwrap();
    assert_eq!(report.damaged.len(), 1);
    assert_eq!(report.damaged[0].index, 1);
    assert_eq!(report.recovered_segments, report.total_segments - 1);

    let trunc = read("truncated_tail.9cf");
    assert!(matches!(
        engine(1).decode_frame(&trunc),
        Err(DecodeError::TruncatedStream { .. }) | Err(DecodeError::Frame(_))
    ));
    let report = engine(1).decode_frame_salvage(&trunc).unwrap();
    assert_eq!(report.trits.len(), original.len());
    assert!(!report.is_full_recovery());

    let spliced = read("spliced.9cf");
    assert!(engine(1).decode_frame(&spliced).is_err());
    let report = engine(1).decode_frame_salvage(&spliced).unwrap();
    assert_eq!(report.trits.len(), original.len());

    let forged = read("forged_expansion.9cf");
    assert!(engine(1).decode_frame(&forged).is_err());
    assert!(
        engine(1)
            .decode_frame_salvage(&forged)
            .map(|r| r.trits.len())
            .unwrap_or(1 << 20)
            == 1 << 20,
        "forged expansion must not shrink the claimed output silently"
    );

    // --- v3 pins ---------------------------------------------------
    let clean_v3_out = engine_v3(1, 2, 1)
        .decode_frame(&clean_v3)
        .expect("v3 golden decodes strict");

    // Within the r = 1 budget: strict rejects, the ladder rebuilds the
    // lost segment bit-exact, and the damage map says which parity did it.
    let repairable = read("v3_repairable.9cf");
    assert!(engine_v3(1, 2, 1).decode_frame(&repairable).is_err());
    let report = engine_v3(2, 2, 1).decode_frame_repair(&repairable).unwrap();
    assert!(report.is_full_recovery(), "{:?}", report.damaged);
    assert_eq!(report.trits, clean_v3_out, "repair must be bit-exact");
    assert_eq!(
        report
            .damaged
            .iter()
            .filter(|d| d.reason.is_repaired())
            .count(),
        1
    );

    // Two losses in one group beat r = 1: repair refuses to guess and the
    // ladder degrades to accurate erasure (both segments X-ed out).
    let over = read("v3_over_budget.9cf");
    let report = engine_v3(2, 2, 1).decode_frame_repair(&over).unwrap();
    assert!(!report.is_full_recovery());
    assert_eq!(
        report
            .damaged
            .iter()
            .filter(|d| !d.reason.is_repaired() && !d.trit_range.is_empty())
            .count(),
        2,
        "{:?}",
        report.damaged
    );

    // A corrupted parity shard costs zero output trits: full recovery.
    let bad_parity = read("v3_bad_parity.9cf");
    let report = engine_v3(2, 2, 1).decode_frame_repair(&bad_parity).unwrap();
    assert!(report.is_full_recovery(), "{:?}", report.damaged);
    assert!(covers(&original_v3, &report.trits));

    // A v3 header with parity 0:0 over v2 segments decodes identically
    // to the v2 frame, strict and ladder alike.
    let clothed = read("v3_v2_in_v3_clothing.9cf");
    let strict = engine(1).decode_frame(&clothed).expect("decodes strict");
    assert!(covers(&original, &strict));
    let report = engine(1).decode_frame_repair(&clothed).unwrap();
    assert!(report.is_full_recovery());
    assert_eq!(report.trits, strict);
}

// ---------------------------------------------------------------------------
// Failpoint-armed tests: forced worker panics, delays and torn writes.
// ---------------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use ninec::engine::faultpoint::{Action, FailPoint, SITE_SEG};

    fn seg_point(index: Option<usize>, action: Action) -> FailPoint {
        FailPoint {
            site: SITE_SEG.to_string(),
            index,
            action,
        }
    }

    fn armed(threads: usize, point: FailPoint) -> Engine {
        Engine::builder()
            .threads(threads)
            .segment_bits(256)
            .failpoint(point)
            .build()
    }

    /// A forced panic in segment 5's worker: strict mode reports
    /// `WorkerPanicked { segment: 5 }`, salvage maps exactly that segment
    /// as damaged — and every other segment is recovered unchanged — at
    /// both 1 and 8 threads.
    #[test]
    fn forced_worker_panic_is_isolated() {
        let (original, clean) = golden(21);
        let total = segment_ranges(&clean).len();
        assert!(total > 5, "need at least 6 segments");
        for threads in [1usize, 8] {
            let eng = armed(threads, seg_point(Some(5), Action::Panic));
            match eng.decode_frame(&clean) {
                Err(DecodeError::WorkerPanicked { segment: 5 }) => {}
                other => panic!("threads={threads}: expected WorkerPanicked, got {other:?}"),
            }

            let report = eng.decode_frame_salvage(&clean).unwrap();
            assert_eq!(report.trits.len(), original.len(), "threads={threads}");
            assert_eq!(report.damaged.len(), 1, "threads={threads}");
            assert_eq!(report.damaged[0].index, 5);
            assert!(matches!(
                report.damaged[0].reason,
                ninec::DamageReason::WorkerPanicked
            ));
            assert_eq!(report.recovered_segments, total - 1);
            // Everything outside the panicked segment is byte-identical.
            for i in 0..original.len() {
                if report.damaged[0].trit_range.contains(&i) {
                    assert_eq!(report.trits.get(i), Some(Trit::X));
                } else if let Some(t) = original.get(i) {
                    if t.is_care() {
                        assert_eq!(report.trits.get(i), Some(t), "trit {i}");
                    }
                }
            }
        }
    }

    /// Wildcard panic (`seg:*:panic`): every slot poisons independently,
    /// the pool still terminates, and salvage erases everything.
    #[test]
    fn all_workers_panicking_still_terminates() {
        let (original, clean) = golden(22);
        for threads in [1usize, 8] {
            let eng = armed(threads, seg_point(None, Action::Panic));
            assert!(matches!(
                eng.decode_frame(&clean),
                Err(DecodeError::WorkerPanicked { segment: 0 })
            ));
            let report = eng.decode_frame_salvage(&clean).unwrap();
            assert_eq!(report.recovered_segments, 0);
            assert_eq!(report.trits.len(), original.len());
            assert!(report.trits.iter().all(|t| t == Trit::X));
        }
    }

    /// A delayed segment changes timing, never results: output equals
    /// the undelayed decode at every thread count.
    #[test]
    fn delay_changes_timing_not_results() {
        let (original, clean) = golden(23);
        for threads in [1usize, 8] {
            let eng = armed(threads, seg_point(Some(2), Action::Delay { millis: 5 }));
            let out = eng.decode_frame(&clean).unwrap();
            assert!(covers(&original, &out));
        }
    }

    /// A torn write past the CRC (Corrupt) yields *wrong data with no
    /// error* — exactly the failure class CRCs cannot catch — and the
    /// differential against the clean decode pins it to one trit.
    #[test]
    fn torn_write_corrupts_exactly_one_trit() {
        let (_, clean) = golden(24);
        let clean_out = engine(1).decode_frame(&clean).unwrap();
        let eng = armed(1, seg_point(Some(0), Action::Corrupt));
        let torn = eng.decode_frame(&clean).unwrap();
        assert_eq!(torn.len(), clean_out.len());
        let diffs: Vec<usize> = (0..torn.len())
            .filter(|&i| torn.get(i) != clean_out.get(i))
            .collect();
        assert_eq!(diffs, vec![0], "torn write must flip exactly trit 0");
    }
}

//! Structural properties of the flight recorder: for any bounded
//! sequence of span-open / span-close / instant operations,
//!
//! 1. every recorded `SpanStart` has exactly one matching `SpanEnd`
//!    (same span id), and
//! 2. a parent span's `[start, end]` sequence interval strictly
//!    contains every child span (and instant) recorded under it.
//!
//! The ops run on one thread, so the recorder's per-thread stack
//! discipline is exactly what's under test.

use ninec_obs::{EventKind, RungKind, TracePayload, NO_SEGMENT};
use proptest::prelude::*;
use std::collections::HashMap;

/// Interprets one op byte against a stack of live scopes: `0`/`1`
/// opens a nested span (depth-capped), `2` closes the innermost one,
/// `3`/`4` records an instant, anything else is a no-op.
fn run_ops(ops: &[u8]) {
    let mut stack: Vec<ninec_obs::TraceScope> = Vec::new();
    for &op in ops {
        match op {
            0 | 1 if stack.len() < 6 => {
                stack.push(ninec_obs::trace_span_scope(
                    "span",
                    NO_SEGMENT,
                    TracePayload::None,
                ));
            }
            2 => {
                stack.pop();
            }
            3 | 4 => ninec_obs::trace_instant("tick", 0, RungKind::None, TracePayload::None),
            _ => {}
        }
    }
    // Remaining scopes drop innermost-first here.
    while stack.pop().is_some() {}
}

proptest! {
    #[test]
    fn spans_pair_up_and_parents_strictly_contain_children(
        ops in proptest::collection::vec(0u8..6, 0..200),
    ) {
        if !ninec_obs::is_compiled() {
            prop_assert!(ninec_obs::take_trace().is_empty());
            return Ok(());
        }
        let _ = ninec_obs::take_trace();
        let trace = ninec_obs::begin_trace();
        run_ops(&ops);
        let events: Vec<_> = ninec_obs::take_trace()
            .into_iter()
            .filter(|e| e.trace == trace)
            .collect();

        // Pair spans: id -> (start seq, end seq, parent id).
        let mut spans: HashMap<u64, (Option<u64>, Option<u64>, u64)> = HashMap::new();
        for ev in &events {
            match ev.kind {
                EventKind::SpanStart => {
                    let slot = spans.entry(ev.span).or_insert((None, None, ev.parent));
                    prop_assert!(slot.0.is_none(), "span {} started twice", ev.span);
                    slot.0 = Some(ev.seq);
                }
                EventKind::SpanEnd => {
                    let slot = spans.entry(ev.span).or_insert((None, None, ev.parent));
                    prop_assert!(slot.1.is_none(), "span {} ended twice", ev.span);
                    slot.1 = Some(ev.seq);
                }
                EventKind::Instant => {}
            }
        }

        for (&span, &(start, end, parent)) in &spans {
            // 1. Exactly one start and one end per span.
            prop_assert!(start.is_some(), "span {} has no SpanStart", span);
            prop_assert!(end.is_some(), "span {} has no SpanEnd", span);
            let (start, end) = (start.unwrap(), end.unwrap());
            prop_assert!(start < end, "span {} ends before it starts", span);
            // 2. Strict containment in the parent's interval.
            if parent != 0 {
                let slot = spans.get(&parent);
                prop_assert!(slot.is_some(), "span {} parents unknown span {}", span, parent);
                let &(p_start, p_end, _) = slot.unwrap();
                let (p_start, p_end) = (p_start.unwrap(), p_end.unwrap());
                prop_assert!(
                    p_start < start && end < p_end,
                    "child {} [{}, {}] escapes parent {} [{}, {}]",
                    span, start, end, parent, p_start, p_end
                );
            }
        }

        // Instants parent under the innermost open span, whose interval
        // must contain them.
        for ev in &events {
            if ev.kind == EventKind::Instant && ev.parent != 0 {
                let &(p_start, p_end, _) = spans.get(&ev.parent).unwrap();
                let (p_start, p_end) = (p_start.unwrap(), p_end.unwrap());
                prop_assert!(p_start < ev.seq && ev.seq < p_end);
            }
        }
        ninec_obs::set_trace_context(0, 0);
    }
}

//! Ladder-equivalence suite: the plan-then-execute pipeline
//! ([`Engine::build_plan`] + [`Engine::execute_plan`]) must be
//! indistinguishable from the classic ladder entry points
//! ([`Engine::decode_frame`] / [`Engine::decode_frame_repair`] /
//! [`Engine::decode_frame_salvage`]) on *every* input — same decoded
//! trits, same typed errors (hence the same CLI exit codes), same
//! damage maps.
//!
//! Three layers:
//!
//! 1. replay of every committed corpus frame (`tests/corpus/*.9cf`);
//! 2. an exhaustive single-byte mutation sweep over a golden v2 and a
//!    golden v3 frame (every offset × two mutation values, plus every
//!    truncation length on the corpus frames' generator seed);
//! 3. proptest campaigns across `K ∈ {4, 8, 16, 32}` × threads
//!    `{1, 8}` with random multi-site corruption.
//!
//! [`Engine::build_plan`]: ninec::Engine::build_plan
//! [`Engine::execute_plan`]: ninec::Engine::execute_plan
//! [`Engine::decode_frame`]: ninec::Engine::decode_frame
//! [`Engine::decode_frame_repair`]: ninec::Engine::decode_frame_repair
//! [`Engine::decode_frame_salvage`]: ninec::Engine::decode_frame_salvage

use ninec::{Engine, Policy};
use ninec_testdata::gen::SyntheticProfile;
use ninec_testdata::trit::TritVec;
use proptest::prelude::*;

fn engine(threads: usize) -> Engine {
    Engine::builder().threads(threads).segment_bits(256).build()
}

fn engine_v3(threads: usize, g: u8, r: u8) -> Engine {
    Engine::builder()
        .threads(threads)
        .segment_bits(256)
        .parity(g, r)
        .build()
}

fn golden(seed: u64) -> Vec<u8> {
    let set = SyntheticProfile::new("ladder", 24, 64, 0.72).generate(seed);
    engine(1)
        .encode_frame(8, set.as_stream())
        .expect("golden frame encodes")
}

fn golden_v3(seed: u64, g: u8, r: u8) -> Vec<u8> {
    let set = SyntheticProfile::new("ladder", 24, 64, 0.72).generate(seed);
    engine_v3(1, g, r)
        .encode_frame(8, set.as_stream())
        .expect("golden v3 frame encodes")
}

/// Asserts that every rung of the plan-driven ladder matches its classic
/// entry point on `bytes`, byte for byte and error for error.
fn assert_ladder_equivalent(engine: &Engine, bytes: &[u8]) {
    let strict_direct = engine.decode_frame(bytes);
    let repair_direct = engine.decode_frame_repair(bytes);
    let salvage_direct = engine.decode_frame_salvage(bytes);

    match engine.build_plan(bytes) {
        Err(plan_err) => {
            // File-level damage: every rung fails with the same error
            // the plan build reports.
            assert_eq!(strict_direct, Err(plan_err.clone()), "strict vs plan build");
            assert_eq!(repair_direct, Err(plan_err.clone()), "repair vs plan build");
            assert_eq!(salvage_direct, Err(plan_err), "salvage vs plan build");
        }
        Ok(plan) => {
            let strict_plan = engine.execute_plan(&plan, Policy::Strict).map(|r| r.trits);
            assert_eq!(strict_plan, strict_direct, "strict rung diverged");
            let repair_plan = engine.execute_plan(&plan, Policy::Repair);
            assert_eq!(repair_plan, repair_direct, "repair rung diverged");
            let salvage_plan = engine.execute_plan(&plan, Policy::Salvage);
            assert_eq!(salvage_plan, salvage_direct, "salvage rung diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// 1. Corpus replay.
// ---------------------------------------------------------------------------

#[test]
fn corpus_frames_ladder_identically_through_the_plan() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("corpus dir exists") {
        let path = entry.expect("corpus entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("9cf") {
            continue;
        }
        let bytes = std::fs::read(&path).expect("corpus frame reads");
        for threads in [1, 8] {
            assert_ladder_equivalent(&engine(threads), &bytes);
        }
        seen += 1;
    }
    assert!(
        seen >= 9,
        "corpus shrank to {seen} frames — wrong directory?"
    );
}

// ---------------------------------------------------------------------------
// 2. Exhaustive single-byte mutation sweep + truncations.
// ---------------------------------------------------------------------------

#[test]
fn every_single_byte_mutation_ladders_identically_v2() {
    let clean = golden(7);
    let eng = engine(2);
    for at in 0..clean.len() {
        for val in [0x01u8, 0xFF] {
            let mut mutant = clean.clone();
            mutant[at] ^= val;
            assert_ladder_equivalent(&eng, &mutant);
        }
    }
}

#[test]
fn every_single_byte_mutation_ladders_identically_v3() {
    let clean = golden_v3(7, 2, 1);
    let eng = engine_v3(2, 2, 1);
    for at in 0..clean.len() {
        for val in [0x01u8, 0xFF] {
            let mut mutant = clean.clone();
            mutant[at] ^= val;
            assert_ladder_equivalent(&eng, &mutant);
        }
    }
}

#[test]
fn every_truncation_ladders_identically() {
    let clean = golden_v3(11, 2, 1);
    let eng = engine_v3(2, 2, 1);
    for len in 0..clean.len() {
        assert_ladder_equivalent(&eng, &clean[..len]);
    }
}

// ---------------------------------------------------------------------------
// 3. Proptest campaigns: K × threads × random corruption.
// ---------------------------------------------------------------------------

fn to_stream(raw: &[u8]) -> TritVec {
    raw.iter()
        .map(|b| match b % 3 {
            0 => ninec_testdata::trit::Trit::Zero,
            1 => ninec_testdata::trit::Trit::One,
            _ => ninec_testdata::trit::Trit::X,
        })
        .collect()
}

proptest! {
    #[test]
    fn random_corruption_ladders_identically(
        raw in proptest::collection::vec(0u8..3, 64..1024),
        k_idx in 0usize..4,
        threads_idx in 0usize..2,
        parity_idx in 0usize..3,
        offsets in proptest::collection::vec(0usize..4096, 1..5),
        xors in proptest::collection::vec(1u8..255, 1..5),
    ) {
        let k = [4usize, 8, 16, 32][k_idx];
        let threads = [1usize, 8][threads_idx];
        let (g, r) = [(0u8, 0u8), (2, 1), (4, 1)][parity_idx];
        let eng = engine_v3(threads, g, r);
        let clean = eng.encode_frame(k, &to_stream(&raw)).expect("frame encodes");
        let mut mutant = clean.clone();
        for (at, val) in offsets.iter().zip(xors.iter()) {
            let at = at % mutant.len();
            mutant[at] ^= val;
        }
        assert_ladder_equivalent(&eng, &mutant);
        // The clean frame must also agree (and decode at all).
        assert_ladder_equivalent(&eng, &clean);
    }
}

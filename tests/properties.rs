//! Property-based tests over the core invariants of the suite.

use ninec::analysis::TatModel;
use ninec::code::{CodeTable, PAPER_LENGTHS};
use ninec::encode::Encoder;
use ninec::freqdir::encode_frequency_directed;
use ninec::multiscan::ScanChains;
use ninec::session::DecodeSession;
use ninec_baselines::arl::AlternatingRunLength;
use ninec_baselines::efdr::Efdr;
use ninec_baselines::fdr::Fdr;
use ninec_baselines::golomb::Golomb;
use ninec_baselines::huffman::HuffmanCode;
use ninec_baselines::selhuff::SelectiveHuffman;
use ninec_baselines::vihc::Vihc;
use ninec_testdata::bits::BitVec;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::{Trit, TritVec};
use proptest::prelude::*;

fn arb_trit() -> impl Strategy<Value = Trit> {
    prop_oneof![
        3 => Just(Trit::X),
        1 => Just(Trit::Zero),
        1 => Just(Trit::One),
    ]
}

fn arb_stream(max_len: usize) -> impl Strategy<Value = TritVec> {
    proptest::collection::vec(arb_trit(), 0..max_len).prop_map(TritVec::from_iter)
}

fn arb_k() -> impl Strategy<Value = usize> {
    (2usize..=16).prop_map(|h| h * 2)
}

proptest! {
    /// decode(encode(x)) preserves every care bit and binds or preserves
    /// every X; the emitted length matches the analytic formula; TAT is
    /// bounded by CR for any p >= 1.
    #[test]
    fn ninec_roundtrip_invariants(stream in arb_stream(600), k in arb_k(), p in 1u32..32) {
        let encoder = Encoder::new(k).unwrap();
        let encoded = encoder.encode_stream(&stream);
        // Formula vs emitted bits.
        prop_assert_eq!(
            encoded.stats().size_by_formula(encoded.table(), k),
            encoded.compressed_len() as u64
        );
        // Roundtrip compatibility.
        let decoded = DecodeSession::new().decode(&encoded).unwrap();
        prop_assert_eq!(decoded.len(), stream.len());
        for i in 0..stream.len() {
            let s = stream.get(i).unwrap();
            let d = decoded.get(i).unwrap();
            if s.is_care() {
                prop_assert_eq!(s, d, "care bit {} changed", i);
            }
        }
        // Leftover X appears only in the payload and never exceeds the
        // source's X count plus the end-of-stream padding.
        let pad = (k - stream.len() % k) % k;
        prop_assert!(encoded.stats().leftover_x <= (stream.count_x() + pad) as u64);
        // TAT bounded by CR.
        let tat = TatModel::new(p as f64).tat_percent(&encoded);
        prop_assert!(tat <= encoded.compression_ratio() + 1e-9);
    }

    /// At K = 4 no don't-care can survive (a 2-bit half with an X is never
    /// a mismatch) — the paper's Table III boundary column.
    #[test]
    fn no_leftover_x_at_k4(stream in arb_stream(400)) {
        let encoded = Encoder::new(4).unwrap().encode_stream(&stream);
        prop_assert_eq!(encoded.stats().leftover_x, 0);
    }

    /// A fully specified ATE stream decodes identically through any
    /// fill: binding the leftover X before or after decoding commutes.
    #[test]
    fn fill_commutes_with_decode(stream in arb_stream(400), k in arb_k()) {
        let encoded = Encoder::new(k).unwrap().encode_stream(&stream);
        // Path A: fill T_E, then decode bits.
        let ate = encoded.to_bitvec(FillStrategy::Zero);
        let a = DecodeSession::new()
            .k(k)
            .table(encoded.table().clone())
            .source_len(stream.len())
            .decode_bits(&ate)
            .unwrap();
        // Path B: decode trits, then zero-fill.
        let b = fill_trits(&DecodeSession::new().decode(&encoded).unwrap(), FillStrategy::Zero)
            .to_bitvec()
            .unwrap();
        prop_assert_eq!(a, b);
    }

    /// Frequency-directed reassignment never enlarges the stream it was
    /// tuned on, and its table stays prefix-free/Kraft-tight.
    #[test]
    fn freqdir_never_hurts(stream in arb_stream(500), k in arb_k()) {
        let out = encode_frequency_directed(k, &stream).unwrap();
        prop_assert!(out.reassigned.compressed_len() <= out.baseline.compressed_len());
        prop_assert!(out.reassigned.table().is_prefix_free());
        prop_assert!((out.reassigned.table().kraft_sum() - 1.0).abs() < 1e-9);
    }

    /// Any permutation of the paper's codeword lengths yields a decodable
    /// prefix code.
    #[test]
    fn permuted_tables_roundtrip(stream in arb_stream(300), rot in 0usize..9) {
        let mut lengths = PAPER_LENGTHS;
        lengths.rotate_left(rot);
        let table = CodeTable::from_lengths(&lengths).unwrap();
        let encoder = Encoder::with_table(8, table).unwrap();
        let encoded = encoder.encode_stream(&stream);
        let decoded = DecodeSession::new().decode(&encoded).unwrap();
        for i in 0..stream.len() {
            let s = stream.get(i).unwrap();
            if s.is_care() {
                prop_assert_eq!(Some(s), decoded.get(i));
            }
        }
    }

    /// The run-length baselines reproduce the filled source exactly.
    #[test]
    fn baseline_roundtrips(stream in arb_stream(400)) {
        let zero_filled = fill_trits(&stream, FillStrategy::Zero).to_bitvec().unwrap();
        let mt_filled = fill_trits(&stream, FillStrategy::MinTransition).to_bitvec().unwrap();

        let fdr = Fdr::new();
        prop_assert_eq!(
            fdr.decompress(&fdr.compress(&stream), stream.len()).unwrap(),
            zero_filled.clone()
        );
        let golomb = Golomb::new(4).unwrap();
        prop_assert_eq!(
            golomb.decompress(&golomb.compress(&stream), stream.len()).unwrap(),
            zero_filled.clone()
        );
        let efdr = Efdr::new();
        prop_assert_eq!(
            efdr.decompress(&efdr.compress(&stream), stream.len()).unwrap(),
            mt_filled.clone()
        );
        let arl = AlternatingRunLength::new();
        prop_assert_eq!(
            arl.decompress(&arl.compress(&stream), stream.len()).unwrap(),
            mt_filled
        );
        let vihc = Vihc::new(8).unwrap().encode(&stream);
        prop_assert_eq!(vihc.decode().unwrap(), zero_filled);
    }

    /// Selective Huffman decodes to something covering the source cubes.
    #[test]
    fn selhuff_covers_source(stream in arb_stream(300)) {
        prop_assume!(!stream.is_empty());
        let enc = SelectiveHuffman::new(4, 3).unwrap().encode(&stream);
        let dec = TritVec::from(&enc.decode().unwrap());
        prop_assert_eq!(dec.len(), stream.len());
        prop_assert!(dec.covers(&stream));
    }

    /// Huffman codes over random frequencies are prefix-free and decode
    /// what they encode.
    #[test]
    fn huffman_roundtrip(freqs in proptest::collection::vec(0u64..200, 1..12),
                         picks in proptest::collection::vec(0usize..12, 0..40)) {
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        prop_assert!(code.is_prefix_free());
        let symbols: Vec<usize> = picks.into_iter().map(|p| p % freqs.len()).collect();
        let mut bits = BitVec::new();
        for &s in &symbols {
            code.encode_symbol(s, &mut bits);
        }
        let mut reader = ninec_testdata::bits::BitReader::new(&bits);
        for &s in &symbols {
            prop_assert_eq!(code.decode_symbol(&mut reader), Some(s));
        }
        prop_assert!(reader.is_at_end());
    }

    /// Vertical/horizontal multi-scan rearrangement is a bijection.
    #[test]
    fn multiscan_bijection(patterns in 1usize..6, len in 4usize..40, m in 1usize..8,
                           seed in 0u64..50) {
        prop_assume!(m <= len);
        let profile = ninec_testdata::gen::SyntheticProfile::new("prop", patterns, len, 0.5);
        let ts = profile.generate(seed);
        let chains = ScanChains::new(len, m).unwrap();
        let vertical = chains.vertical_stream(&ts);
        let back = chains.horizontal_set(&vertical);
        prop_assert_eq!(back, ts);
    }

    /// Fill strategies always produce covering, fully specified sets.
    #[test]
    fn fills_cover(stream in arb_stream(300), seed in 0u64..100) {
        for strategy in [
            FillStrategy::Zero,
            FillStrategy::One,
            FillStrategy::Random { seed },
            FillStrategy::MinTransition,
        ] {
            let filled = fill_trits(&stream, strategy);
            prop_assert_eq!(filled.count_x(), 0);
            prop_assert!(filled.covers(&stream));
        }
    }

    /// TestSet text serialization roundtrips.
    #[test]
    fn cube_file_roundtrip(patterns in 1usize..8, len in 1usize..30, seed in 0u64..50) {
        let ts = ninec_testdata::gen::SyntheticProfile::new("io", patterns, len.max(2), 0.6)
            .generate(seed);
        let text = ninec_testdata::io::format_test_set(&ts);
        let back = ninec_testdata::io::parse_test_set(&text).unwrap();
        prop_assert_eq!(back, ts);
    }
}

#[test]
fn empty_stream_edge_cases() {
    let empty = TritVec::new();
    let encoded = Encoder::new(8).unwrap().encode_stream(&empty);
    assert_eq!(encoded.compressed_len(), 0);
    assert_eq!(DecodeSession::new().decode(&encoded).unwrap(), empty);
    assert_eq!(Fdr::new().compress(&empty), BitVec::new());
    let ts = TestSet::new(4);
    assert_eq!(ts.num_patterns(), 0);
}

proptest! {
    /// Power-aware encoding stays decodable and within its size budget for
    /// any stream, table and budget.
    #[test]
    fn power_aware_roundtrip_and_budget(stream in arb_stream(400), k in arb_k(),
                                        budget in 0usize..6) {
        use ninec::encode::CaseSelect;
        let base = Encoder::new(k).unwrap().encode_stream(&stream);
        let quiet = Encoder::new(k)
            .unwrap()
            .with_case_select(CaseSelect::PowerAware { max_extra_bits: budget })
            .encode_stream(&stream);
        let extra = quiet.compressed_len() as i64 - base.compressed_len() as i64;
        prop_assert!(extra >= 0);
        prop_assert!(extra as u64 <= budget as u64 * base.stats().blocks);
        let decoded = DecodeSession::new().decode(&quiet).unwrap();
        for i in 0..stream.len() {
            let s = stream.get(i).unwrap();
            if s.is_care() {
                prop_assert_eq!(Some(s), decoded.get(i));
            }
        }
    }

    /// LFSR-reseeding (whole-pattern and windowed) always expands to a
    /// covering set, whatever mix of seeds and raw fallbacks it chose.
    #[test]
    fn reseeding_expansion_covers(patterns in 1usize..8, len in 8usize..60,
                                  x in 2u32..9, seed in 0u64..40) {
        use ninec_bist::reseed::ReseedEncoder;
        let profile = ninec_testdata::gen::SyntheticProfile::new(
            "prop-rs", patterns, len, f64::from(x) / 10.0,
        );
        let cubes = profile.generate(seed);
        let encoder = ReseedEncoder::new(24).unwrap();
        let whole = encoder.encode_set(&cubes);
        prop_assert!(encoder.expand(&whole).covers(&cubes));
        let window = (len / 2).max(1);
        let windowed = encoder.encode_set_windowed(&cubes, window);
        prop_assert!(encoder.expand_windowed(&windowed, len, window).covers(&cubes));
    }

    /// The dictionary baseline decodes to a covering stream for any cube
    /// input and geometry.
    #[test]
    fn dictionary_covers(stream in arb_stream(300), b in 2usize..10, d in 1usize..20) {
        use ninec_baselines::dict::FixedIndexDictionary;
        prop_assume!(!stream.is_empty());
        let codec = FixedIndexDictionary::new(b, d).unwrap();
        let enc = codec.encode(&stream);
        let dec = TritVec::from(&enc.decode().unwrap());
        prop_assert_eq!(dec.len(), stream.len());
        prop_assert!(dec.covers(&stream));
    }

    /// Merge compaction never violates compatibility and never grows the
    /// set.
    #[test]
    fn merge_compaction_sound(patterns in 1usize..10, len in 2usize..24, seed in 0u64..40) {
        use ninec_atpg::generate::compact_merge;
        let cubes = ninec_testdata::gen::SyntheticProfile::new("prop-mc", patterns, len, 0.7)
            .generate(seed);
        let merged = compact_merge(&cubes);
        prop_assert!(merged.num_patterns() <= cubes.num_patterns());
        // Every original cube is covered by some merged cube.
        for orig in cubes.patterns() {
            prop_assert!(
                merged.patterns().any(|m| {
                    (0..orig.len()).all(|i| {
                        let o = orig.get(i).unwrap();
                        !o.is_care() || m.get(i) == Some(o)
                    })
                }),
                "cube {} lost", orig
            );
        }
    }
}

//! Cross-crate architecture integration: the cycle-accurate decompressor
//! models must agree with the paper's analytic timing model and with each
//! other.

use ninec::analysis::TatModel;
use ninec::encode::Encoder;
use ninec::multiscan::{encode_multiscan, ScanChains};
use ninec_decompressor::area::decoder_area;
use ninec_decompressor::multi::MultiScanDecoder;
use ninec_decompressor::parallel::ParallelDecoders;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::gen::{mintest_profile, SyntheticProfile};

#[test]
fn hardware_cycles_equal_analytic_model_across_k_and_p() {
    let ts = SyntheticProfile::new("arch", 30, 150, 0.78).generate(21);
    for k in [4usize, 8, 12, 16, 32] {
        for p in [1u32, 4, 8, 16, 24] {
            let encoded = Encoder::new(k).unwrap().encode_set(&ts);
            let bits = encoded.to_bitvec(FillStrategy::Zero);
            let decoder = SingleScanDecoder::new(k, encoded.table().clone(), ClockRatio::new(p));
            let trace = decoder.run(&bits, ts.total_bits()).unwrap();
            let analytic =
                TatModel::new(p as f64).compressed_cycles(encoded.stats(), encoded.table(), k);
            let expected = analytic * p as f64;
            assert!(
                (trace.soc_ticks as f64 - expected).abs() < 1e-6,
                "k={k} p={p}: hardware {} disagrees with the paper's formula {expected}",
                trace.soc_ticks
            );
        }
    }
}

#[test]
fn single_pin_multiscan_keeps_single_scan_test_time() {
    // Paper claim (Fig 3): same compressed stream, m chains, 1 pin, no
    // test-time increase vs pushing that stream through one chain.
    let profile = mintest_profile("s5378").unwrap().scaled_down(2);
    let ts = profile.generate(3);
    for m in [8usize, 16, 32] {
        let k = 8;
        let encoded = encode_multiscan(&ts, m, k).unwrap();
        let bits = encoded.to_bitvec(FillStrategy::Zero);
        let chains = ScanChains::new(ts.pattern_len(), m).unwrap();
        let vertical_len = ts.num_patterns() * chains.padded_len();

        let multi = MultiScanDecoder::new(k, m, encoded.table().clone(), ClockRatio::new(8));
        let mtrace = multi.run(&bits, &ts).unwrap();
        let single = SingleScanDecoder::new(k, encoded.table().clone(), ClockRatio::new(8));
        let strace = single.run(&bits, vertical_len).unwrap();

        assert_eq!(mtrace.decoder.soc_ticks, strace.soc_ticks, "m={m}");
        assert_eq!(mtrace.pins, 1);
        assert!(mtrace.loaded.covers(&ts), "m={m}");
    }
}

#[test]
fn parallel_decoders_speedup_scales_with_pin_count() {
    let ts = SyntheticProfile::new("pscale", 16, 256, 0.8).generate(9);
    let k = 8;
    let p = 8;
    let mut last_ticks = u64::MAX;
    for m in [16usize, 32, 64] {
        let arch = ParallelDecoders::new(k, m, ClockRatio::new(p)).unwrap();
        let trace = arch.compress_and_run(&ts, FillStrategy::Zero).unwrap();
        assert_eq!(trace.pins, m / k);
        assert!(trace.loaded.covers(&ts), "m={m}");
        assert!(
            trace.soc_ticks < last_ticks,
            "m={m}: more pins must not slow the test down"
        );
        last_ticks = trace.soc_ticks;
    }
}

#[test]
fn parallel_total_data_equals_sum_of_slices() {
    let ts = SyntheticProfile::new("psum", 10, 128, 0.75).generate(4);
    let arch = ParallelDecoders::new(8, 32, ClockRatio::new(8)).unwrap();
    let (_, slices) = arch.slice_streams(&ts);
    let encoder = Encoder::new(8).unwrap();
    let expected: u64 = slices
        .iter()
        .map(|s| encoder.encode_stream(s).compressed_len() as u64)
        .sum();
    let trace = arch.compress_and_run(&ts, FillStrategy::Zero).unwrap();
    assert_eq!(trace.total_ate_bits, expected);
}

#[test]
fn decoder_fsm_identical_for_every_k() {
    let reference = decoder_area(8).fsm;
    for k in [4usize, 12, 16, 20, 24, 28, 32, 64, 128, 256] {
        let area = decoder_area(k);
        assert_eq!(area.fsm, reference, "K={k}: FSM must be K-independent");
    }
}

#[test]
fn decoder_area_grows_sublinearly_in_k() {
    // Counter is logarithmic, shifter linear in K/2; the FSM dominates at
    // small K. Doubling K from 8 to 16 must grow total area by well under
    // 2x (the paper's "small, flexible decoder" claim).
    let a8 = decoder_area(8).total_ge();
    let a16 = decoder_area(16).total_ge();
    assert!(a16 < a8 * 1.3, "a8={a8}, a16={a16}");
}

#[test]
fn custom_table_flows_through_hardware() {
    use ninec::freqdir::encode_frequency_directed;
    let ts = SyntheticProfile::new("fdhw", 12, 96, 0.7).generate(6);
    let out = encode_frequency_directed(8, ts.as_stream()).unwrap();
    let enc = &out.reassigned;
    let bits = enc.to_bitvec(FillStrategy::Random { seed: 3 });
    let decoder = SingleScanDecoder::new(8, enc.table().clone(), ClockRatio::new(8));
    let trace = decoder.run(&bits, ts.total_bits()).unwrap();
    let src = ts.as_stream();
    for i in 0..src.len() {
        if let Some(v) = src.get(i).unwrap().value() {
            assert_eq!(trace.scan_out.get(i), Some(v), "care bit {i}");
        }
    }
    assert_eq!(trace.case_counts, enc.stats().case_counts);
}

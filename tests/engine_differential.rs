//! Differential suite for the sharded multi-core engine.
//!
//! The engine must be an *invisible* parallelization: for every block
//! size, segment geometry and thread count, `Engine::encode` is
//! bit-identical to the serial `Encoder::encode_stream`, and `9CSF` frame
//! bytes are independent of the thread count. Corrupt frames — bad magic,
//! flipped CRC bytes, truncation, arbitrary byte salad — must come back as
//! typed [`DecodeError`]s, never panics.

use ninec::encode::Encoder;
use ninec::engine::{frame, Engine, FrameError};
use ninec::session::DecodeSession;
use ninec::DecodeError;
use ninec_testdata::trit::{Trit, TritVec};
use proptest::prelude::*;

/// Block sizes the differential sweep covers (issue spec).
const K_DIFF: [usize; 4] = [4, 8, 16, 32];

/// Thread counts the sweep covers (1 = the serial in-caller fallback).
const THREADS: [usize; 3] = [1, 2, 8];

fn arb_trit() -> impl Strategy<Value = Trit> {
    prop_oneof![
        3 => Just(Trit::X),
        1 => Just(Trit::Zero),
        1 => Just(Trit::One),
    ]
}

fn arb_stream(max_len: usize) -> impl Strategy<Value = TritVec> {
    proptest::collection::vec(arb_trit(), 0..max_len).prop_map(TritVec::from_iter)
}

/// Segment geometries for block size `k`: a single block per segment, a
/// deliberately ragged size (not a multiple of `k`, so the builder's
/// block-alignment and the tail segment both get exercised), and a size
/// so large the whole stream is one segment (4096 blocks).
fn segment_sweeps(k: usize) -> [usize; 3] {
    [k, 3 * k + 1, 4096 * k]
}

fn engine(threads: usize, segment_bits: usize) -> Engine {
    Engine::builder()
        .threads(threads)
        .segment_bits(segment_bits)
        .build()
}

proptest! {
    /// `Engine::encode` is bit-identical to the serial encoder — stream,
    /// stats, everything — for every (K, segment, threads) combination.
    #[test]
    fn parallel_encode_equals_serial(stream in arb_stream(700)) {
        for k in K_DIFF {
            let serial = Encoder::new(k).unwrap().encode_stream(&stream);
            for seg in segment_sweeps(k) {
                for threads in THREADS {
                    prop_assert_eq!(
                        &engine(threads, seg).encode(k, &stream).unwrap(),
                        &serial,
                        "K={} seg={} threads={}", k, seg, threads
                    );
                }
            }
        }
    }

    /// `9CSF` frame bytes are a pure function of (stream, K, segmenting):
    /// the thread count never shows through, and frames roundtrip through
    /// the session decoder preserving every care bit.
    #[test]
    fn frame_bytes_independent_of_threads(stream in arb_stream(500)) {
        for k in K_DIFF {
            for seg in segment_sweeps(k) {
                let reference = engine(1, seg).encode_frame(k, &stream).unwrap();
                for threads in THREADS {
                    prop_assert_eq!(
                        &engine(threads, seg).encode_frame(k, &stream).unwrap(),
                        &reference,
                        "K={} seg={} threads={}", k, seg, threads
                    );
                }
                for threads in THREADS {
                    let back = DecodeSession::new()
                        .threads(threads)
                        .decode_frame(&reference, ninec::Policy::Strict)
                        .unwrap()
                        .trits;
                    prop_assert_eq!(back.len(), stream.len());
                    for i in 0..stream.len() {
                        let s = stream.get(i).unwrap();
                        if s.is_care() {
                            prop_assert_eq!(Some(s), back.get(i), "care bit {}", i);
                        }
                    }
                }
            }
        }
    }

    /// Arbitrary byte salad fed to the frame decoder is a typed error (or,
    /// vanishingly rarely, a valid frame) — never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        for threads in [1usize, 4] {
            let _ = engine(threads, 4096).decode_frame(&bytes);
        }
    }

    /// Single byte corruption of a valid frame: either caught as a typed
    /// error or still decodes to the promised length (flips confined to
    /// payload bits that survive the CRC are impossible — the CRC covers
    /// the payload — so any accepted decode is the untouched frame).
    #[test]
    fn corrupting_one_byte_never_panics(stream in arb_stream(300), pos in 0usize..1024, xor in 1u8..=255) {
        let bytes = engine(2, 64).encode_frame(8, &stream).unwrap();
        prop_assume!(!bytes.is_empty());
        let mut corrupt = bytes.clone();
        let i = pos % corrupt.len();
        corrupt[i] ^= xor;
        match engine(4, 64).decode_frame(&corrupt) {
            Ok(out) => prop_assert_eq!(out.len(), stream.len()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Every strict prefix of a valid frame is rejected with a typed
    /// error — truncation can never fabricate output.
    #[test]
    fn truncated_frames_are_typed_errors(stream in arb_stream(200)) {
        prop_assume!(!stream.is_empty());
        let bytes = engine(1, 48).encode_frame(8, &stream).unwrap();
        for cut in 0..bytes.len() {
            let err = engine(2, 48).decode_frame(&bytes[..cut]).unwrap_err();
            prop_assert!(
                matches!(
                    err,
                    DecodeError::TruncatedStream { .. } | DecodeError::Frame(_)
                ),
                "cut at {}: unexpected error {:?}", cut, err
            );
        }
    }
}

#[test]
fn bad_magic_bad_crc_and_truncation_are_distinct_typed_errors() {
    let stream: TritVec = "0X0X01X001X0101X111111110000X1111X0110XX"
        .repeat(12)
        .parse()
        .unwrap();
    let eng = engine(4, 160);
    let bytes = eng.encode_frame(8, &stream).unwrap();
    assert!(frame::is_frame(&bytes));

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'?';
    assert!(matches!(
        eng.decode_frame(&bad_magic),
        Err(DecodeError::Frame(FrameError::BadMagic))
    ));

    let mut bad_version = bytes.clone();
    bad_version[4] = 0x7f;
    assert!(matches!(
        eng.decode_frame(&bad_version),
        Err(DecodeError::Frame(FrameError::UnsupportedVersion {
            found: 0x7f
        }))
    ));

    let mut bad_crc = bytes.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0x80;
    assert!(matches!(
        eng.decode_frame(&bad_crc),
        Err(DecodeError::Frame(FrameError::BadCrc { .. }))
    ));

    assert!(matches!(
        eng.decode_frame(&bytes[..bytes.len() - 1]),
        Err(DecodeError::TruncatedStream { .. })
    ));
}

/// The geometry floor of the issue spec: exactly one block per segment at
/// every K still agrees with the serial encoder, on a stream whose tail is
/// ragged (length not a multiple of any K in the sweep).
#[test]
fn one_block_segments_with_ragged_tail() {
    let stream: TritVec = "01X".repeat(211).parse().unwrap(); // 633 trits
    for k in K_DIFF {
        assert!(
            !stream.len().is_multiple_of(k),
            "tail must be ragged at K={k}"
        );
        let serial = Encoder::new(k).unwrap().encode_stream(&stream);
        for threads in THREADS {
            assert_eq!(
                engine(threads, k).encode(k, &stream).unwrap(),
                serial,
                "K={k} threads={threads}"
            );
        }
    }
}

//! Differential and streaming-pipeline properties.
//!
//! The word-parallel kernels and the chunked streaming codec must be
//! *invisible* refactors: every path here is checked bit-for-bit against
//! the scalar per-symbol reference (`Encoder::encode_stream_scalar`,
//! `HalfClass::classify_scalar`) and against the one-shot API.

use ninec::block::HalfClass;
use ninec::decode::StreamDecoder;
use ninec::encode::Encoder;
use ninec::session::DecodeSession;
use ninec::stream::BitCounter;
use ninec_testdata::trit::{Trit, TritVec};
use proptest::prelude::*;

/// The K values the differential suite sweeps (issue spec).
const K_DIFF: [usize; 4] = [4, 8, 16, 32];

/// The chunk sizes the streaming suite sweeps (issue spec).
const CHUNKS: [usize; 4] = [1, 7, 64, 4096];

fn arb_trit() -> impl Strategy<Value = Trit> {
    prop_oneof![
        3 => Just(Trit::X),
        1 => Just(Trit::Zero),
        1 => Just(Trit::One),
    ]
}

fn arb_stream(max_len: usize) -> impl Strategy<Value = TritVec> {
    proptest::collection::vec(arb_trit(), 0..max_len).prop_map(TritVec::from_iter)
}

/// Care-bit-preserving equivalence: every specified symbol of `src`
/// survives into `back` unchanged (X may bind either way).
fn assert_covers(src: &TritVec, back: &TritVec) {
    assert_eq!(src.len(), back.len());
    for i in 0..src.len() {
        let s = src.get(i).unwrap();
        if s.is_care() {
            assert_eq!(Some(s), back.get(i), "care bit {i} changed");
        }
    }
}

proptest! {
    /// Word-parallel `classify_range` agrees with the scalar reference on
    /// every subrange of arbitrary streams.
    #[test]
    fn classify_range_matches_scalar(stream in arb_stream(300),
                                     a in 0usize..300, b in 0usize..300) {
        let (from, to) = (a.min(b).min(stream.len()), a.max(b).min(stream.len()));
        let word = HalfClass::classify_slice(stream.as_slice(), from, to);
        let scalar =
            HalfClass::classify_scalar((from..to).map(|i| stream.get(i).unwrap()));
        prop_assert_eq!(word, scalar, "range {}..{} of {}", from, to, stream);
    }

    /// The word-parallel encoder is bit-identical to the scalar reference
    /// for every K in the differential sweep.
    #[test]
    fn word_encoder_matches_scalar_reference(stream in arb_stream(600)) {
        for k in K_DIFF {
            let encoder = Encoder::new(k).unwrap();
            prop_assert_eq!(
                encoder.encode_stream(&stream),
                encoder.encode_stream_scalar(&stream),
                "word and scalar encoders diverged at K={}", k
            );
        }
    }

    /// Chunk boundaries are invisible: feeding the stream through the
    /// streaming encoder in chunks of any size yields output bit-identical
    /// to the one-shot encoder.
    #[test]
    fn streaming_encoder_matches_oneshot(stream in arb_stream(600), k in 0usize..4) {
        let encoder = Encoder::new(K_DIFF[k]).unwrap();
        let oneshot = encoder.encode_stream(&stream);
        for chunk in CHUNKS {
            prop_assert_eq!(
                &encoder.encode_chunked(stream.chunks(chunk)),
                &oneshot,
                "chunk size {} changed the output", chunk
            );
        }
    }

    /// The streaming decoder reproduces the one-shot decode blockwise, for
    /// streams produced at every chunk size.
    #[test]
    fn streaming_decoder_roundtrips(stream in arb_stream(600), k in 0usize..4) {
        let encoder = Encoder::new(K_DIFF[k]).unwrap();
        for chunk in CHUNKS {
            let encoded = encoder.encode_chunked(stream.chunks(chunk));
            let mut out = TritVec::with_capacity(stream.len());
            let mut dec = StreamDecoder::new(
                encoded.stream().as_slice().iter(),
                encoded.k(),
                encoded.table().clone(),
                encoded.source_len(),
            )
            .unwrap();
            while dec.decode_block_into(&mut out).unwrap() > 0 {}
            prop_assert!(dec.is_done());
            prop_assert_eq!(&out, &DecodeSession::new().decode(&encoded).unwrap());
            assert_covers(&stream, &out);
        }
    }
}

/// A stream much larger than the chunk size roundtrips through the
/// streaming endpoints with codec state bounded by O(chunk + K): the
/// encoder buffers < K symbols between feeds (asserted in the core test
/// suite), the decoder holds one block, and here both endpoints run
/// against O(1) measurement sinks so nothing else accumulates.
#[test]
fn large_stream_roundtrips_through_small_chunks() {
    const CHUNK: usize = 64;
    let profile = ninec_testdata::gen::SyntheticProfile::new("large", 64, 1024, 0.6);
    let stream = profile.generate(0x9c).as_stream().clone(); // 65536 symbols
    assert!(
        stream.len() > 100 * CHUNK,
        "stream must dwarf the chunk size"
    );

    let encoder = Encoder::new(16).unwrap();

    // Size pass: a counting sink proves the encode side needs no output
    // buffer at all.
    let mut counter = BitCounter::default();
    let mut enc = encoder.stream_encoder(&mut counter);
    for chunk in stream.chunks(CHUNK) {
        enc.feed(chunk);
    }
    let totals = enc.finish();
    assert_eq!(totals.source_len, stream.len());

    // Materialized pass must agree with the one-shot encoder and the size
    // pass, then stream-decode back block by block.
    let encoded = encoder.encode_chunked(stream.chunks(CHUNK));
    assert_eq!(encoded.compressed_len() as u64, counter.bits());
    assert_eq!(encoded, encoder.encode_stream(&stream));

    let mut out = TritVec::with_capacity(stream.len());
    let mut dec = StreamDecoder::new(
        encoded.stream().as_slice().iter(),
        encoded.k(),
        encoded.table().clone(),
        encoded.source_len(),
    )
    .unwrap();
    let mut largest_block = 0usize;
    loop {
        let n = dec.decode_block_into(&mut out).unwrap();
        if n == 0 {
            break;
        }
        largest_block = largest_block.max(n);
    }
    assert!(
        largest_block <= 16,
        "decoder must emit at most one block per step"
    );
    assert_eq!(out.len(), stream.len());
    assert_covers(&stream, &out);
}

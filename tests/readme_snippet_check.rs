//! Compile-and-run guard for the README "streaming usage" example.
//!
//! README code blocks are not doctested, so this file mirrors the
//! snippet verbatim — keep the two in sync when the API changes.
fn main_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::decode::StreamDecoder;
    use ninec::encode::Encoder;
    use ninec_testdata::trit::TritVec;

    let stream: TritVec = "0X0X00XX1111X11101X0".parse()?;
    let encoder = Encoder::new(8)?;

    let mut compressed = TritVec::new();
    let mut enc = encoder.stream_encoder(&mut compressed);
    for chunk in stream.chunks(7) {
        enc.feed(chunk);
    }
    let totals = enc.finish();

    let mut back = TritVec::new();
    let mut dec = StreamDecoder::new(
        compressed.as_slice().iter(),
        8,
        encoder.table().clone(),
        totals.source_len,
    )?;
    while dec.decode_block_into(&mut back)? > 0 {}
    assert!(back.covers(&stream));
    Ok(())
}

#[test]
fn readme_streaming_example_runs() {
    main_snippet().unwrap();
}

/// Mirrors the README "Parallel engine" snippet verbatim.
fn parallel_engine_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::engine::Engine;
    use ninec::session::DecodeSession;
    use ninec_testdata::trit::TritVec;

    let stream: TritVec = "0X0X00XX1111X11101X0".repeat(100).parse()?;
    let engine = Engine::builder().threads(8).segment_bits(256).build();

    // Bit-identical to the serial `Encoder::encode_stream`:
    let encoded = engine.encode(8, &stream)?;

    // Self-describing 9CSF frame: parallel decode, typed errors on corruption.
    let frame = engine.encode_frame(8, &stream)?;
    assert_eq!(
        frame,
        Engine::builder()
            .threads(1)
            .segment_bits(256)
            .build()
            .encode_frame(8, &stream)?
    ); // byte-identical at any thread count
    let back = DecodeSession::new()
        .threads(4)
        .decode_frame(&frame, ninec::Policy::Strict)?;
    assert!(back.trits.covers(&stream));
    let _ = encoded;
    Ok(())
}

#[test]
fn readme_parallel_engine_example_runs() {
    parallel_engine_snippet().unwrap();
}

/// Mirrors the README "Repair, salvage, and streaming decode" snippet
/// verbatim (modulo the `println!`, elided to keep test output quiet).
fn repair_salvage_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::engine::{DecodeLimits, Engine};
    use ninec::session::DecodeSession;
    use ninec::Policy;
    use ninec_testdata::trit::TritVec;

    let stream: TritVec = "0X0X00XX1111X11101X0".repeat(100).parse()?;
    let engine = Engine::builder().segment_bits(256).parity(4, 1).build();
    let clean = engine.encode_frame(8, &stream)?;
    let mut frame = clean.clone();
    frame[47] ^= 0x55; // corrupt one byte -> that segment's CRC fails

    // ONE scan pass builds the decode plan; every ladder rung reuses it.
    let session = DecodeSession::new();
    let plan = session.plan(&frame)?;

    // Strict mode stays fail-closed: corruption is a typed error.
    assert!(session.execute_plan(&plan, Policy::Strict).is_err());

    // Repair rebuilds the damaged segment from GF(256) parity, bit-exact.
    let report = session.execute_plan(&plan, Policy::Repair)?;
    assert!(report.is_full_recovery());
    assert!(report.damaged.iter().all(|d| d.reason.is_repaired()));
    assert_eq!(
        report.trits,
        session.decode_frame(&clean, Policy::Strict)?.trits
    );

    // Salvage alone recovers every intact segment; damage becomes X runs.
    let report = session.execute_plan(&plan, Policy::Salvage)?;
    assert!(!report.is_full_recovery());
    assert_eq!(report.trits.len(), stream.len()); // full length, holes are X
    for d in &report.damaged {
        let _ = (d.index, &d.byte_range, &d.reason);
    }

    // The one-shot decode_frame(bytes, policy) builds a fresh plan per
    // call — same results, and the outcome names the rung that answered.
    assert!(session.decode_frame(&frame, Policy::Strict).is_err());
    let outcome = session.decode_frame(&frame, Policy::Repair)?;
    assert_eq!(outcome.rung, ninec::RungKind::Repaired);
    assert!(outcome.is_lossless());

    // Streaming decode: bounded memory, straight off any `io::Read` (pipes).
    let back = engine.decode_stream(std::io::Cursor::new(clean.clone()))?;
    assert!(back.covers(&stream));

    // Resource-limit guards reject hostile headers *before* allocating.
    let limits = DecodeLimits {
        max_segment_trits: 1 << 16,
        ..DecodeLimits::default()
    };
    let _ = DecodeSession::new()
        .limits(limits)
        .decode_frame(&frame, Policy::Strict);
    Ok(())
}

#[test]
fn readme_repair_salvage_example_runs() {
    repair_salvage_snippet().unwrap();
}

/// Mirrors the README "Quick start" compress-in-code snippet (modulo the
/// `println!`).
fn quick_start_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::encode::Encoder;
    use ninec::session::DecodeSession;
    use ninec_testdata::gen::SyntheticProfile;

    let cubes = SyntheticProfile::new("demo", 111, 214, 0.726).generate(1);
    let encoded = Encoder::new(8)?.encode_set(&cubes);
    let decoded = DecodeSession::new().decode(&encoded)?; // every care bit preserved
    assert_eq!(decoded.len(), cubes.total_bits());
    Ok(())
}

#[test]
fn readme_quick_start_example_runs() {
    quick_start_snippet().unwrap();
}

/// Mirrors the README "Observability" snippet verbatim (modulo the
/// `println!`, elided to keep test output quiet).
fn observability_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::encode::Encoder;
    use ninec_testdata::trit::TritVec;

    let stream: TritVec = "0X0X00XX1111X11101X0".parse()?;
    Encoder::new(4)?.encode_stream(&stream); // 5 blocks of K=4

    let snap = ninec_obs::snapshot();
    if ninec_obs::is_compiled() {
        // false under --no-default-features
        assert!(snap.counter("ninec.encode.blocks").unwrap_or(0) >= 5);
    }
    let _ = snap.render_prometheus(); // or snap.render_json()
    Ok(())
}

#[test]
fn readme_observability_example_runs() {
    observability_snippet().unwrap();
}

/// Mirrors the README "Tracing & flight recorder" snippet verbatim.
fn tracing_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::engine::Engine;
    use ninec::session::DecodeSession;
    use ninec_testdata::trit::TritVec;

    let stream: TritVec = "0X0X00XX1111X11101X0".repeat(100).parse()?;
    let engine = Engine::builder().segment_bits(256).parity(4, 1).build();
    let mut frame = engine.encode_frame(8, &stream)?;
    frame[47] ^= 0x55; // corrupt one byte

    // Audited decode: one call returns the trits, the ladder rung that
    // produced them, and a per-segment audit trail.
    let outcome = DecodeSession::new()
        .audit(true)
        .decode_frame(&frame, ninec::Policy::Repair)?;
    assert_eq!(outcome.rung, ninec::RungKind::Repaired); // lossless
    let audit = outcome.audit.expect("audit(true) always attaches one");
    assert_eq!(audit.repaired_segments(), 1); // rungs are exact in every build
    for seg in &audit.segments {
        // worker/nanos are None when tracing is compiled out or disabled
        let _ = (seg.index, seg.rung.label(), seg.worker, seg.nanos);
    }

    // Drain the flight recorder into a chrome://tracing / Perfetto document.
    let events = ninec_obs::take_trace();
    let _ = ninec_obs::render_chrome_trace(&events); // or render_jsonl(&events)
    Ok(())
}

#[test]
fn readme_tracing_example_runs() {
    tracing_snippet().unwrap();
}

/// Mirrors the README "Archive & scrubbing" snippet verbatim.
fn archive_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec::engine::{Archive, Engine, ScrubMode};
    use ninec_testdata::trit::TritVec;

    let stream: TritVec = "0X0X00XX1111X11101X0".repeat(100).parse()?;
    let engine = Engine::builder().segment_bits(256).parity(4, 1).build();
    let frame = engine.encode_frame(8, &stream)?;

    // Crash-safe appends: blobs are fsynced, then the epoch index commits
    // by atomic rename — kill the process anywhere and the prior epoch reads.
    let dir = std::env::temp_dir().join("ninec-readme-archive");
    std::fs::create_dir_all(&dir)?;
    let mut archive = Archive::create(dir.join("tests.9ca"), &engine)?;
    archive.append_frame(&frame)?;
    archive.append_frame(&frame)?; // identical segments dedup onto the same blobs
    let stats = archive.stats();
    assert_eq!(stats.frames, 2);
    assert!(stats.dedup_ratio() > 1.9); // the second frame stored nothing new

    // Seekable random access: decode 40 trits without touching the rest.
    let window = archive.decode_range(1, 500, 40)?;
    assert_eq!(window.len(), 40);

    // The scrubber CRC-checks every stored blob; ScrubMode::Repair heals
    // repairable rot in place and bumps the epoch.
    let report = archive.scrub(ScrubMode::Check)?;
    assert!(report.is_clean());
    Ok(())
}

#[test]
fn readme_archive_example_runs() {
    archive_snippet().unwrap();
}

/// Mirrors the README "Serving" snippet verbatim.
fn serving_snippet() -> Result<(), Box<dyn std::error::Error>> {
    use ninec_serve::{Client, ServeConfig, Server};

    let mut server = Server::start(ServeConfig::default())?; // ephemeral loopback port
    let mut client = Client::connect(server.addr())?;

    let frame = client.compress(8, &"0X0X00XX1111X11101X0".repeat(100))?;
    let reply = client.decode(&frame, ninec::Policy::Strict)?;
    assert_eq!(reply.rung, ninec::RungKind::Strict);
    assert!(!reply.degraded); // would be set if the server shed the ladder
    server.shutdown();
    Ok(())
}

#[test]
fn readme_serving_example_runs() {
    serving_snippet().unwrap();
}

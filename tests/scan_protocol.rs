//! Validates the full-scan abstraction end to end: the combinational
//! "scan view" every tool in this workspace uses (ATPG, fault simulation,
//! the 9C experiments) must agree with an *actual* shift–capture protocol
//! driven cycle-by-cycle through a scan-stitched netlist.

use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_circuit::bench::{parse_bench, S27};
use ninec_circuit::random::RandomCircuitSpec;
use ninec_circuit::scan::insert_scan;
use ninec_circuit::Circuit;
use ninec_fsim::seq::SequentialSimulator;
use ninec_fsim::sim::simulate_cubes;
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::{Trit, TritVec};

/// Runs the classic protocol for one cube on the stitched circuit:
/// shift in (scan_en=1), one capture cycle (scan_en=0, PIs applied),
/// then reads the flop state; returns (observed POs, captured PPOs).
fn shift_capture(
    scanned: &ninec_circuit::scan::ScannedCircuit,
    sim: &mut SequentialSimulator<'_>,
    num_func_pis: usize,
    cube: &TritVec,
) -> (TritVec, Vec<Trit>) {
    let c = &scanned.circuit;
    // Cube layout (original circuit's scan view): PIs then PPIs.
    let pi_part: TritVec = (0..num_func_pis).map(|i| cube.get(i).unwrap()).collect();
    let ppi_part: TritVec = (num_func_pis..cube.len())
        .map(|i| cube.get(i).unwrap())
        .collect();

    // Shift in reversed so chain cell i ends up holding ppi_part[i].
    let reversed: TritVec = ppi_part.iter().rev().collect();
    sim.scan_shift(scanned, &reversed);
    assert_eq!(sim.state().len(), ppi_part.len());
    for (i, expect) in ppi_part.iter().enumerate() {
        assert_eq!(sim.state()[i], expect, "chain load mismatch at cell {i}");
    }

    // Capture cycle: functional PIs, scan_en = 0, scan_in = X.
    let mut pis = TritVec::repeat(Trit::X, c.primary_inputs().len());
    for (i, v) in pi_part.iter().enumerate() {
        pis.set(i, v); // functional PIs precede scan_in/scan_en (appended last)
    }
    let se_pos = c
        .primary_inputs()
        .iter()
        .position(|&n| n == scanned.scan_en)
        .unwrap();
    pis.set(se_pos, Trit::Zero);
    let pos = sim.step(&pis);
    let captured = sim.state().to_vec();
    (pos, captured)
}

fn assert_protocol_matches_scan_view(circuit: &Circuit, cubes: &TestSet) {
    let scanned = insert_scan(circuit).expect("sequential circuit");
    let num_pis = circuit.primary_inputs().len();
    let num_pos = circuit.primary_outputs().len();
    let expected = simulate_cubes(circuit, cubes);
    let mut sim = SequentialSimulator::new(&scanned.circuit);

    for (idx, cube) in cubes.patterns().enumerate() {
        let (pos, captured) = shift_capture(&scanned, &mut sim, num_pis, &cube);
        // The stitched circuit's POs are the original POs plus scan_out.
        let view = &expected[idx];
        for o in 0..num_pos {
            assert_eq!(
                pos.get(o),
                view.get(o),
                "pattern {idx}: PO {o} disagrees with the scan view"
            );
        }
        // Captured flop state must equal the scan view's PPO slice.
        for (f, &got) in captured.iter().enumerate() {
            assert_eq!(
                Some(got),
                view.get(num_pos + f),
                "pattern {idx}: PPO {f} disagrees with the scan view"
            );
        }
    }
}

#[test]
fn s27_protocol_equals_scan_view_on_atpg_cubes() {
    let s27 = parse_bench(S27).unwrap();
    let atpg = generate_tests(&s27, AtpgConfig::default());
    assert_protocol_matches_scan_view(&s27, &atpg.tests);
}

#[test]
fn s27_protocol_equals_scan_view_on_random_patterns() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let s27 = parse_bench(S27).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let mut ts = TestSet::new(7);
    for _ in 0..40 {
        let cube: TritVec = (0..7)
            .map(|_| match rng.gen_range(0..3) {
                0 => Trit::Zero,
                1 => Trit::One,
                _ => Trit::X,
            })
            .collect();
        ts.push_pattern(&cube).unwrap();
    }
    assert_protocol_matches_scan_view(&s27, &ts);
}

#[test]
fn random_circuit_protocol_equals_scan_view() {
    let circuit = RandomCircuitSpec::new("proto", 6, 12, 120).generate(13);
    let atpg = generate_tests(&circuit, AtpgConfig::default());
    assert_protocol_matches_scan_view(&circuit, &atpg.tests);
}

#[test]
fn decompressor_feeds_the_real_chain() {
    // The grand tour: ATPG cubes -> 9C -> cycle-accurate decompressor ->
    // serial shift into the *stitched* chain -> capture -> responses match
    // the scan view for the decompressed (covering) patterns.
    use ninec::encode::Encoder;
    use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
    use ninec_testdata::fill::FillStrategy;

    let s27 = parse_bench(S27).unwrap();
    let cubes = generate_tests(&s27, AtpgConfig::default()).tests;
    let encoded = Encoder::new(8).unwrap().encode_set(&cubes);
    let bits = encoded.to_bitvec(FillStrategy::Random { seed: 41 });
    let decoder = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(8));
    let trace = decoder.run(&bits, cubes.total_bits()).unwrap();
    let applied = TestSet::from_stream(cubes.pattern_len(), TritVec::from(&trace.scan_out));
    assert!(applied.covers(&cubes));
    assert_protocol_matches_scan_view(&s27, &applied);
}

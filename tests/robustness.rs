//! Failure-injection and fuzz-style robustness: decoders and parsers must
//! reject malformed input with typed errors, never panic, and corruption
//! must not silently fabricate plausible output lengths.

use ninec::code::CodeTable;
use ninec::encode::Encoder;
use ninec::session::DecodeSession;
use ninec_baselines::arl::AlternatingRunLength;
use ninec_baselines::efdr::Efdr;
use ninec_baselines::fdr::Fdr;
use ninec_baselines::golomb::Golomb;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_testdata::bits::BitVec;
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::trit::TritVec;
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), 0..max_len).prop_map(BitVec::from_iter)
}

proptest! {
    /// The software decoder accepts or rejects arbitrary bit salad — it
    /// never panics, and success always yields exactly the promised
    /// length.
    #[test]
    fn ninec_decode_arbitrary_bits(bits in arb_bits(512), out_len in 0usize..256) {
        let table = CodeTable::paper();
        let session = DecodeSession::new().k(8).table(table).source_len(out_len);
        if let Ok(out) = session.decode_bits(&bits) {
            prop_assert_eq!(out.len(), out_len);
        }
    }

    /// Same for the cycle-accurate hardware model.
    #[test]
    fn hardware_decoder_arbitrary_bits(bits in arb_bits(512), out_len in 0usize..256) {
        let decoder = SingleScanDecoder::new(8, CodeTable::paper(), ClockRatio::new(4));
        if let Ok(trace) = decoder.run(&bits, out_len) {
            prop_assert_eq!(trace.scan_out.len(), out_len);
        }
    }

    /// A single bit flip in a valid stream is either caught or decodes to
    /// the right length — and a flip in a *codeword* region changes the
    /// output (no silent absorption into padding).
    #[test]
    fn single_bit_flip_never_panics(seed in 0u64..64, flip in 0usize..64) {
        let ts = ninec_testdata::gen::SyntheticProfile::new("flip", 6, 48, 0.7).generate(seed);
        let encoded = Encoder::new(8).unwrap().encode_set(&ts);
        let mut bits = encoded.to_bitvec(FillStrategy::Zero);
        prop_assume!(flip < bits.len());
        let original = bits.get(flip).unwrap();
        bits.set(flip, !original);
        let session = DecodeSession::new()
            .k(8)
            .table(encoded.table().clone())
            .source_len(encoded.source_len());
        if let Ok(out) = session.decode_bits(&bits) {
            prop_assert_eq!(out.len(), encoded.source_len());
        }
    }

    /// Run-length baseline decoders survive arbitrary input.
    #[test]
    fn baseline_decoders_arbitrary_bits(bits in arb_bits(400), out_len in 0usize..200) {
        let _ = Fdr::new().decompress(&bits, out_len);
        let _ = Golomb::new(4).unwrap().decompress(&bits, out_len);
        let _ = Efdr::new().decompress(&bits, out_len);
        let _ = AlternatingRunLength::new().decompress(&bits, out_len);
    }

    /// The `.bench` netlist parser survives arbitrary text.
    #[test]
    fn bench_parser_arbitrary_text(text in "[ -~\n]{0,400}") {
        let _ = ninec_circuit::bench::parse_bench(&text);
    }

    /// Cube-file and `.te` parsers survive arbitrary text.
    #[test]
    fn file_parsers_arbitrary_text(text in "[ -~\n]{0,400}") {
        let _ = ninec_testdata::io::parse_test_set(&text);
    }
}

#[test]
fn truncating_a_valid_stream_reports_underrun_not_garbage() {
    let ts = ninec_testdata::gen::SyntheticProfile::new("trunc", 8, 64, 0.7).generate(3);
    let encoded = Encoder::new(8).unwrap().encode_set(&ts);
    let bits = encoded.to_bitvec(FillStrategy::Zero);
    let decoder = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(4));
    // Every strict prefix must either error or (for prefixes that end on a
    // block boundary, if the remaining source happens to be reachable)
    // produce exactly source_len bits — it must never produce a wrong
    // count or panic.
    for cut in 0..bits.len() {
        let prefix: BitVec = bits.iter().take(cut).collect();
        match decoder.run(&prefix, encoded.source_len()) {
            Ok(trace) => assert_eq!(trace.scan_out.len(), encoded.source_len()),
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
        }
    }
}

#[test]
fn decode_with_wrong_k_fails_or_mismatches_but_never_panics() {
    let ts = ninec_testdata::gen::SyntheticProfile::new("wrongk", 8, 64, 0.7).generate(4);
    let encoded = Encoder::new(8).unwrap().encode_set(&ts);
    let bits = encoded.to_bitvec(FillStrategy::Zero);
    for wrong_k in [4usize, 12, 16, 32] {
        let _ = DecodeSession::new()
            .k(wrong_k)
            .table(encoded.table().clone())
            .source_len(encoded.source_len())
            .decode_bits(&bits);
    }
}

// ---------------------------------------------------------------------------
// Segmented-stream corruption: every codec in the Table IV registry.
// ---------------------------------------------------------------------------

/// A shared test stream with enough structure for every codec.
fn registry_stream(seed: u64) -> TritVec {
    ninec_testdata::gen::SyntheticProfile::new("seg-fuzz", 12, 64, 0.75)
        .generate(seed)
        .as_stream()
        .clone()
}

/// `decode_segmented` on a mutated stream must return a typed error or a
/// stream of the claimed length — never panic. Success with unchanged
/// claimed lengths must still cover the original source's care bits only
/// when nothing was actually mutated; a corrupt payload may legally
/// decode to *different* data of the right length (fill-based codes have
/// no integrity check), which is exactly what this pins down.
fn assert_error_or_claimed_length(
    codec: &dyn ninec_baselines::codec::TestDataCodec,
    mutated: &ninec_baselines::codec::SegmentedStream,
) {
    match codec.decode_segmented(mutated, 2) {
        Ok(out) => assert_eq!(
            out.len(),
            mutated.source_len(),
            "{}: wrong decoded length",
            codec.name()
        ),
        Err(e) => assert!(!e.to_string().is_empty(), "{}", codec.name()),
    }
}

#[test]
fn every_registry_codec_survives_segment_mutations() {
    use ninec_baselines::codec::SegmentedStream;
    use ninec_baselines::registry::table4_registry;

    let stream = registry_stream(5);
    for codec in table4_registry(8).unwrap() {
        let encoded = codec.encode_segmented(&stream, 2, 128);
        let segs = encoded.segments().to_vec();
        assert!(segs.len() >= 2, "{}: want multiple segments", codec.name());

        // Clean reassembly sanity: mutation-free from_segments roundtrips.
        let rebuilt = SegmentedStream::from_segments(segs.clone());
        let back = codec.decode_segmented(&rebuilt, 2).unwrap();
        assert_eq!(back.len(), stream.len(), "{}", codec.name());

        // Truncate each segment's payload at several depths.
        for (i, seg) in segs.iter().enumerate() {
            for keep in [0usize, 1, 7] {
                let mut mutated = segs.clone();
                mutated[i] = seg.truncated(keep);
                assert_error_or_claimed_length(
                    codec.as_ref(),
                    &SegmentedStream::from_segments(mutated),
                );
            }
        }

        // Flip symbols across every segment.
        for (i, seg) in segs.iter().enumerate() {
            for flip in [0usize, 3, 17, 63] {
                let mut mutated = segs.clone();
                mutated[i] = seg.with_flipped_symbol(flip);
                assert_error_or_claimed_length(
                    codec.as_ref(),
                    &SegmentedStream::from_segments(mutated),
                );
            }
        }

        // Header/payload mismatch: lie about each segment's source length.
        for (i, seg) in segs.iter().enumerate() {
            for lie in [0usize, 1, 1000] {
                let mut mutated = segs.clone();
                mutated[i] = seg.with_source_len(lie);
                assert_error_or_claimed_length(
                    codec.as_ref(),
                    &SegmentedStream::from_segments(mutated),
                );
            }
        }

        // Structural splices: drop, duplicate, reverse.
        let dropped: Vec<_> = segs[1..].to_vec();
        assert_error_or_claimed_length(codec.as_ref(), &SegmentedStream::from_segments(dropped));
        let mut duplicated = segs.clone();
        duplicated.push(segs[0].clone());
        assert_error_or_claimed_length(codec.as_ref(), &SegmentedStream::from_segments(duplicated));
        let mut reversed = segs.clone();
        reversed.reverse();
        assert_error_or_claimed_length(codec.as_ref(), &SegmentedStream::from_segments(reversed));
    }
}

#[test]
fn cross_codec_splicing_never_panics() {
    use ninec_baselines::codec::SegmentedStream;
    use ninec_baselines::registry::table4_registry;

    let stream = registry_stream(6);
    let registry = table4_registry(8).unwrap();
    let encoded: Vec<_> = registry
        .iter()
        .map(|c| c.encode_segmented(&stream, 1, 128))
        .collect();
    // Graft segment 0 of every codec into every *other* codec's stream —
    // a dictionary payload fed to FDR, 9C trits fed to Golomb, etc.
    for (donor_i, donor) in encoded.iter().enumerate() {
        for (host_i, host) in encoded.iter().enumerate() {
            if donor_i == host_i {
                continue;
            }
            let mut segs = host.segments().to_vec();
            segs[0] = donor.segments()[0].clone();
            assert_error_or_claimed_length(
                registry[host_i].as_ref(),
                &SegmentedStream::from_segments(segs),
            );
        }
    }
}

#[test]
fn corrupt_trit_stream_decode_reports_x_in_codeword() {
    use ninec::decode::DecodeError;
    // An X where a codeword must start.
    let te: TritVec = "X0110".parse().unwrap();
    let err = DecodeSession::new()
        .k(8)
        .table(CodeTable::paper())
        .source_len(16)
        .decode_trits(&te)
        .unwrap_err();
    assert!(matches!(err, DecodeError::XInCodeword { offset: 0 }));
}

//! Failure-injection and fuzz-style robustness: decoders and parsers must
//! reject malformed input with typed errors, never panic, and corruption
//! must not silently fabricate plausible output lengths.

use ninec::code::CodeTable;
use ninec::encode::Encoder;
use ninec::session::DecodeSession;
use ninec_baselines::arl::AlternatingRunLength;
use ninec_baselines::efdr::Efdr;
use ninec_baselines::fdr::Fdr;
use ninec_baselines::golomb::Golomb;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_testdata::bits::BitVec;
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::trit::TritVec;
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), 0..max_len).prop_map(BitVec::from_iter)
}

proptest! {
    /// The software decoder accepts or rejects arbitrary bit salad — it
    /// never panics, and success always yields exactly the promised
    /// length.
    #[test]
    fn ninec_decode_arbitrary_bits(bits in arb_bits(512), out_len in 0usize..256) {
        let table = CodeTable::paper();
        let session = DecodeSession::new().k(8).table(table).source_len(out_len);
        if let Ok(out) = session.decode_bits(&bits) {
            prop_assert_eq!(out.len(), out_len);
        }
    }

    /// Same for the cycle-accurate hardware model.
    #[test]
    fn hardware_decoder_arbitrary_bits(bits in arb_bits(512), out_len in 0usize..256) {
        let decoder = SingleScanDecoder::new(8, CodeTable::paper(), ClockRatio::new(4));
        if let Ok(trace) = decoder.run(&bits, out_len) {
            prop_assert_eq!(trace.scan_out.len(), out_len);
        }
    }

    /// A single bit flip in a valid stream is either caught or decodes to
    /// the right length — and a flip in a *codeword* region changes the
    /// output (no silent absorption into padding).
    #[test]
    fn single_bit_flip_never_panics(seed in 0u64..64, flip in 0usize..64) {
        let ts = ninec_testdata::gen::SyntheticProfile::new("flip", 6, 48, 0.7).generate(seed);
        let encoded = Encoder::new(8).unwrap().encode_set(&ts);
        let mut bits = encoded.to_bitvec(FillStrategy::Zero);
        prop_assume!(flip < bits.len());
        let original = bits.get(flip).unwrap();
        bits.set(flip, !original);
        let session = DecodeSession::new()
            .k(8)
            .table(encoded.table().clone())
            .source_len(encoded.source_len());
        if let Ok(out) = session.decode_bits(&bits) {
            prop_assert_eq!(out.len(), encoded.source_len());
        }
    }

    /// Run-length baseline decoders survive arbitrary input.
    #[test]
    fn baseline_decoders_arbitrary_bits(bits in arb_bits(400), out_len in 0usize..200) {
        let _ = Fdr::new().decompress(&bits, out_len);
        let _ = Golomb::new(4).unwrap().decompress(&bits, out_len);
        let _ = Efdr::new().decompress(&bits, out_len);
        let _ = AlternatingRunLength::new().decompress(&bits, out_len);
    }

    /// The `.bench` netlist parser survives arbitrary text.
    #[test]
    fn bench_parser_arbitrary_text(text in "[ -~\n]{0,400}") {
        let _ = ninec_circuit::bench::parse_bench(&text);
    }

    /// Cube-file and `.te` parsers survive arbitrary text.
    #[test]
    fn file_parsers_arbitrary_text(text in "[ -~\n]{0,400}") {
        let _ = ninec_testdata::io::parse_test_set(&text);
    }
}

#[test]
fn truncating_a_valid_stream_reports_underrun_not_garbage() {
    let ts = ninec_testdata::gen::SyntheticProfile::new("trunc", 8, 64, 0.7).generate(3);
    let encoded = Encoder::new(8).unwrap().encode_set(&ts);
    let bits = encoded.to_bitvec(FillStrategy::Zero);
    let decoder = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(4));
    // Every strict prefix must either error or (for prefixes that end on a
    // block boundary, if the remaining source happens to be reachable)
    // produce exactly source_len bits — it must never produce a wrong
    // count or panic.
    for cut in 0..bits.len() {
        let prefix: BitVec = bits.iter().take(cut).collect();
        match decoder.run(&prefix, encoded.source_len()) {
            Ok(trace) => assert_eq!(trace.scan_out.len(), encoded.source_len()),
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
        }
    }
}

#[test]
fn decode_with_wrong_k_fails_or_mismatches_but_never_panics() {
    let ts = ninec_testdata::gen::SyntheticProfile::new("wrongk", 8, 64, 0.7).generate(4);
    let encoded = Encoder::new(8).unwrap().encode_set(&ts);
    let bits = encoded.to_bitvec(FillStrategy::Zero);
    for wrong_k in [4usize, 12, 16, 32] {
        let _ = DecodeSession::new()
            .k(wrong_k)
            .table(encoded.table().clone())
            .source_len(encoded.source_len())
            .decode_bits(&bits);
    }
}

#[test]
fn corrupt_trit_stream_decode_reports_x_in_codeword() {
    use ninec::decode::DecodeError;
    // An X where a codeword must start.
    let te: TritVec = "X0110".parse().unwrap();
    let err = DecodeSession::new()
        .k(8)
        .table(CodeTable::paper())
        .source_len(16)
        .decode_trits(&te)
        .unwrap_err();
    assert!(matches!(err, DecodeError::XInCodeword { offset: 0 }));
}

//! Differential test between the two stats pipelines: the local
//! [`EncodeStats`] tally returned with every [`Encoded`] and the global
//! `ninec.encode.case.C*` counters that [`StreamEncoder::finish`] flushes
//! into the [`ninec_obs`] registry.
//!
//! Both are fed by the same classification loop, but through different
//! plumbing (struct fields vs batched atomic adds), so this is the place
//! a divergence would show up. The test measures registry *deltas* around
//! each encode, which makes it independent of whatever other activity
//! already populated the process-global registry.
//!
//! Everything lives in one `#[test]` because the registry is process
//! global: a second concurrently-running encode in this binary would
//! perturb the deltas.
//!
//! [`EncodeStats`]: ninec::encode::EncodeStats
//! [`Encoded`]: ninec::encode::Encoded
//! [`StreamEncoder::finish`]: ninec::encode::StreamEncoder::finish

use ninec::encode::Encoder;
use ninec::metrics;
use ninec_testdata::trit::{Trit, TritVec};
use proptest::prelude::*;

/// Reads the nine case counters plus the block counter from the global
/// registry.
fn registry_counts() -> ([u64; 9], u64) {
    let mut cases = [0u64; 9];
    for (i, slot) in cases.iter_mut().enumerate() {
        *slot = ninec_obs::counter(&metrics::case_counter_name(i)).get();
    }
    (cases, ninec_obs::counter(metrics::ENCODE_BLOCKS).get())
}

fn to_stream(raw: &[u8]) -> TritVec {
    raw.iter()
        .map(|b| match b % 3 {
            0 => Trit::Zero,
            1 => Trit::One,
            _ => Trit::X,
        })
        .collect()
}

proptest! {
    #[test]
    fn registry_case_counters_match_encode_stats(
        raw in proptest::collection::vec(0u8..3, 1..600),
        k_idx in 0usize..4,
        bias in 0u8..3,
    ) {
        let k = [4usize, 8, 16, 32][k_idx];
        // Bias some inputs towards runs of a single symbol so the
        // non-mismatch cases C1–C4 actually fire.
        let stream = match bias {
            0 => to_stream(&raw),
            1 => to_stream(&vec![raw[0]; raw.len()]),
            _ => {
                let mut v = raw.clone();
                for c in v.chunks_mut(k) {
                    let lead = c[0];
                    for s in c.iter_mut() {
                        *s = lead;
                    }
                }
                to_stream(&v)
            }
        };
        let encoder = Encoder::new(k).unwrap();

        let (cases_before, blocks_before) = registry_counts();
        let encoded = encoder.encode_stream(&stream);
        let (cases_after, blocks_after) = registry_counts();
        let stats = encoded.stats();

        if ninec_obs::is_compiled() {
            for i in 0..9 {
                prop_assert_eq!(
                    cases_after[i] - cases_before[i],
                    stats.case_counts[i],
                    "case C{} delta diverged from EncodeStats (k={})",
                    i + 1,
                    k
                );
            }
            prop_assert_eq!(blocks_after - blocks_before, stats.blocks);
            // The per-case counters and the block counter are two
            // independent accumulations of the same loop.
            let total: u64 = stats.case_counts.iter().sum();
            prop_assert_eq!(total, stats.blocks);
        } else {
            // Compiled out: the registry stays silent, the local tally
            // still works.
            prop_assert_eq!(cases_after, [0u64; 9]);
            prop_assert_eq!(blocks_after, 0);
            prop_assert!(stats.blocks > 0);
        }
    }
}

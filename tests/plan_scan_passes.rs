//! Proves the tentpole "one scan pass" claim end to end via the
//! `ninec.frame.scan_passes` counter: building one [`FramePlan`] and
//! driving the *entire* strict → repair → salvage ladder against it
//! costs exactly one header/CRC scan of the frame, where the classic
//! entry points cost one scan each.
//!
//! Everything lives in one `#[test]` because the [`ninec_obs`] registry
//! is process global — this file is its own integration-test binary so
//! no other test perturbs the deltas.
//!
//! [`FramePlan`]: ninec::FramePlan

use ninec::{metrics, Engine, Policy};
use ninec_testdata::gen::SyntheticProfile;

fn scan_passes() -> u64 {
    ninec_obs::counter(metrics::FRAME_SCAN_PASSES).get()
}

#[test]
fn whole_ladder_costs_one_scan_pass() {
    if !ninec_obs::is_compiled() {
        return;
    }
    // A damaged v3 frame: strict fails, repair rebuilds it bit-exact.
    let set = SyntheticProfile::new("scanpass", 24, 64, 0.72).generate(5);
    let engine = Engine::builder()
        .threads(2)
        .segment_bits(256)
        .parity(2, 1)
        .build();
    let clean = engine
        .encode_frame(8, set.as_stream())
        .expect("frame encodes");
    let strict_reference = engine.decode_frame(&clean).expect("clean frame decodes");
    let mut damaged = clean.clone();
    damaged[ninec::engine::frame::HEADER_BYTES_V3 + ninec::engine::frame::SEGMENT_HEADER_BYTES] ^=
        0x55;

    // The plan pipeline: ONE scan pass for the whole ladder.
    let before = scan_passes();
    let plan = engine.build_plan(&damaged).expect("plan builds");
    let strict = engine.execute_plan(&plan, Policy::Strict);
    let repair = engine.execute_plan(&plan, Policy::Repair);
    let salvage = engine.execute_plan(&plan, Policy::Salvage);
    let plan_passes = scan_passes() - before;
    assert_eq!(
        plan_passes, 1,
        "plan ladder must scan the frame exactly once"
    );
    // ...and the rungs behaved like the real ladder while doing it.
    assert!(strict.is_err(), "strict must fail on the damaged segment");
    let repair = repair.expect("repair rung runs");
    assert!(repair.is_full_recovery());
    assert_eq!(repair.trits, strict_reference);
    let salvage = salvage.expect("salvage rung runs");
    assert!(!salvage.is_full_recovery());

    // The classic entry points: one scan pass *each* — three to walk
    // the same ladder (this is the 3→1 the benchmark records).
    let before = scan_passes();
    let _ = engine.decode_frame(&damaged);
    let _ = engine.decode_frame_repair(&damaged);
    let _ = engine.decode_frame_salvage(&damaged);
    let classic_passes = scan_passes() - before;
    assert_eq!(
        classic_passes, 3,
        "classic ladder entry points scan once each"
    );
}

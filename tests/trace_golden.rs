//! Golden Chrome-trace test: a fixed seeded decode of a corrupted v3
//! parity frame must produce a byte-stable trace-event document once
//! [`ninec_obs::normalize_trace`] strips the run-dependent fields
//! (timestamps, global sequence numbers, id allocation order).
//!
//! Regenerate after an intentional event-shape change with
//! `OBS_BLESS=1 cargo test --test trace_golden`.

use ninec::engine::frame;
use ninec::session::DecodeSession;
use ninec::Engine;
use ninec_testdata::gen::SyntheticProfile;
use std::path::PathBuf;

fn check_golden(name: &str, rendered: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("OBS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {name} ({e}); run with OBS_BLESS=1"));
    assert_eq!(rendered, expected, "golden mismatch for {name}");
}

#[test]
fn seeded_decode_chrome_trace_matches_golden() {
    if !ninec_obs::is_compiled() {
        // Compiled out: the recorder drains empty, nothing to pin.
        assert!(ninec_obs::take_trace().is_empty());
        return;
    }

    // Deterministic input: seeded synthetic set, serial engine, one
    // corrupted payload byte that the 4:1 parity group rebuilds.
    let set = SyntheticProfile::new("trace", 24, 64, 0.72).generate(9);
    let engine = Engine::builder()
        .threads(1)
        .segment_bits(256)
        .parity(4, 1)
        .build();
    let mut bytes = engine
        .encode_frame(8, set.as_stream())
        .expect("golden frame encodes");
    bytes[frame::HEADER_BYTES_V3 + frame::SEGMENT_HEADER_BYTES] ^= 0x55;

    let _ = ninec_obs::take_trace(); // drain unrelated leftovers
    let session = DecodeSession::new().threads(1).audit(true);
    let outcome = session
        .decode_frame(&bytes, ninec::Policy::Repair)
        .expect("frame repairs");
    assert_eq!(outcome.rung, ninec::RungKind::Repaired);
    let audit = outcome.audit.expect("audited decode attaches the rollup");

    let mut events: Vec<_> = ninec_obs::take_trace()
        .into_iter()
        .filter(|e| e.trace == audit.trace)
        .collect();
    assert!(!events.is_empty(), "audited decode recorded no events");
    ninec_obs::normalize_trace(&mut events);

    check_golden(
        "decode_trace.json",
        &ninec_obs::render_chrome_trace(&events),
    );
    check_golden("decode_trace.jsonl", &ninec_obs::render_jsonl(&events));
}

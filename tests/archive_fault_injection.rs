//! Archive-tier fault injection: the `9CA` container under hostile
//! bytes and killed appends.
//!
//! Four layers, mirroring `fault_injection.rs` for the frame format:
//!
//! 1. **Torn-append harness** (`failpoints` feature): an append is
//!    killed at *every* byte boundary via the `arc:<b>:kill` fault
//!    point; the previous epoch must stay bit-exactly extractable at
//!    every single one.
//! 2. **Exhaustive mutation sweeps**: every byte of the store and of
//!    the epoch index is flipped; every outcome must land in the
//!    trichotomy *bit-exact read ∨ typed error ∨ scrub report covering
//!    the mutated byte* — never a panic, never silent corruption.
//! 3. **Truncation sweeps**: the store and index cut at every length.
//! 4. **Corpus replay**: blessed `.9ca`/`.9ca.idx` goldens under
//!    `tests/corpus/` — including a bombed index, a torn-epoch tail and
//!    a rotted dedup-shared blob — are byte-pinned against their
//!    generators (regenerate with `CORPUS_BLESS=1`) and replayed.

use std::path::{Path, PathBuf};

use ninec::engine::archive::{self, Archive, ArchiveError, DATA_HEADER_BYTES, INDEX_SUFFIX};
use ninec::engine::frame;
use ninec::engine::scrub::{ScrubMode, ScrubVerdict};
use ninec::engine::Engine;
use ninec_testdata::gen::SyntheticProfile;
use ninec_testdata::trit::TritVec;

/// Deterministic multi-segment source stream (same generator family as
/// the frame fault suite, smaller so the exhaustive sweeps stay fast).
fn stream(seed: u64) -> TritVec {
    SyntheticProfile::new("arc", 12, 48, 0.72)
        .generate(seed)
        .as_stream()
        .clone()
}

fn engine(threads: usize) -> Engine {
    Engine::builder().threads(threads).segment_bits(192).build()
}

/// Erasure-coded sibling: small interleaved groups, one-shard budget.
fn engine_v3(threads: usize) -> Engine {
    Engine::builder()
        .threads(threads)
        .segment_bits(192)
        .parity(2, 1)
        .build()
}

/// Private scratch dir per test (std-only; no tempfile crate).
fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ninec_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Writes a store/index pair into `dir` and returns the store path.
fn write_pair(dir: &Path, store: &[u8], index: &[u8]) -> PathBuf {
    let path = dir.join("t.9ca");
    let mut idx = path.as_os_str().to_os_string();
    idx.push(INDEX_SUFFIX);
    std::fs::write(&path, store).expect("write store");
    std::fs::write(PathBuf::from(idx), index).expect("write index");
    path
}

/// Builds a two-frame archive with `eng` (the second frame repeats the
/// first's stream, so every one of its blobs dedups) and returns
/// `(store bytes, index bytes, frame bytes in order)`.
fn build_archive(eng: &Engine, tag: &str) -> (Vec<u8>, Vec<u8>, Vec<Vec<u8>>) {
    let dir = tempdir(tag);
    let path = dir.join("t.9ca");
    let mut arc = Archive::create(&path, eng).expect("create");
    let f1 = eng.encode_frame(8, &stream(7)).expect("frame 1");
    let f2 = eng.encode_frame(8, &stream(7)).expect("frame 2");
    let r1 = arc.append_frame(&f1).expect("append 1");
    let r2 = arc.append_frame(&f2).expect("append 2");
    assert!(r1.new_bytes > 0);
    assert_eq!(r2.new_bytes, 0, "identical frame must fully dedup");
    let store = std::fs::read(arc.path()).expect("read store");
    let index = std::fs::read(arc.index_path()).expect("read index");
    let _ = std::fs::remove_dir_all(&dir);
    (store, index, vec![f1, f2])
}

/// The single-mutant trichotomy check for an archive store byte.
///
/// Exactly one of: the archive opens and every frame extracts
/// bit-exactly; or a typed error is returned and (when the damage is
/// past the store header) a check-mode scrub covers the mutated byte.
/// When `repairable` (the v3 golden), a repair-mode scrub must then
/// heal every frame back to bit-exact.
fn check_store_mutant(
    store: &[u8],
    index: &[u8],
    frames: &[Vec<u8>],
    eng: &Engine,
    offset: usize,
    repairable: bool,
) {
    let dir = tempdir("arc_store_mut");
    let mut mutant = store.to_vec();
    mutant[offset] ^= 0xFF;
    let path = write_pair(&dir, &mutant, index);
    match Archive::open(&path, eng) {
        Err(e) => {
            // Typed error: rendering it must not panic either. Only
            // store-header damage can fail open — blobs are lazy.
            let _ = e.to_string();
            assert!(
                offset < DATA_HEADER_BYTES,
                "open rejected a store whose header is intact (mutation at {offset})"
            );
        }
        Ok(mut arc) => {
            let extracts: Vec<_> = (0..arc.frame_count())
                .map(|i| arc.extract_frame(i))
                .collect();
            if extracts.iter().all(Result::is_ok) {
                for (i, got) in extracts.iter().enumerate() {
                    assert_eq!(
                        got.as_deref().ok(),
                        Some(frames[i].as_slice()),
                        "extraction silently corrupt (mutation at {offset})"
                    );
                }
            } else {
                for e in extracts.iter().filter_map(|r| r.as_ref().err()) {
                    let _ = e.to_string();
                }
                let check = arc.scrub(ScrubMode::Check).expect("check scrub");
                assert!(
                    check.covers_offset(offset as u64),
                    "scrub report misses mutated byte {offset}: {:?}",
                    check.findings
                );
                if repairable {
                    let repair = arc.scrub(ScrubMode::Repair).expect("repair scrub");
                    assert!(
                        !repair.needs_attention(),
                        "single-byte rot within the r=1 budget must repair \
                         (mutation at {offset}): {:?}",
                        repair.findings
                    );
                    for (i, f) in frames.iter().enumerate() {
                        assert_eq!(
                            arc.extract_frame(i).expect("post-repair extract"),
                            *f,
                            "repair not bit-exact (mutation at {offset})"
                        );
                    }
                    assert!(arc.scrub(ScrubMode::Check).expect("rescrub").is_clean());
                } else {
                    assert!(
                        check.lost_segments > 0,
                        "unprotected rot must be reported Lost (mutation at {offset})"
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_mutation_sweep_v2_holds_the_trichotomy() {
    let eng = engine(2);
    let (store, index, frames) = build_archive(&eng, "arc_sweep_v2");
    for offset in 0..store.len() {
        check_store_mutant(&store, &index, &frames, &eng, offset, false);
    }
}

#[test]
fn store_mutation_sweep_v3_repairs_every_byte() {
    let eng = engine_v3(2);
    let (store, index, frames) = build_archive(&eng, "arc_sweep_v3");
    for offset in 0..store.len() {
        check_store_mutant(&store, &index, &frames, &eng, offset, true);
    }
}

#[test]
fn index_mutation_sweep_is_always_typed() {
    let eng = engine(2);
    let (store, index, _frames) = build_archive(&eng, "arc_sweep_idx");
    let dir = tempdir("arc_idx_mut");
    for offset in 0..index.len() {
        let mut mutant = index.to_vec();
        mutant[offset] ^= 0xFF;
        let path = write_pair(&dir, &store, &mutant);
        // The index is CRC-covered end to end: any single flipped byte
        // must be a typed rejection, never a wrong archive.
        let e = Archive::open(&path, &eng)
            .err()
            .unwrap_or_else(|| panic!("flipped index byte {offset} was accepted"));
        let _ = e.to_string();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_sweeps_are_always_typed() {
    let eng = engine(2);
    let (store, index, _frames) = build_archive(&eng, "arc_trunc");
    let dir = tempdir("arc_trunc_sweep");
    // Index cut at every length: typed rejection.
    for cut in 0..index.len() {
        let path = write_pair(&dir, &store, &index[..cut]);
        let e = Archive::open(&path, &eng)
            .err()
            .unwrap_or_else(|| panic!("index truncated to {cut} bytes was accepted"));
        let _ = e.to_string();
    }
    // Store cut below its committed epoch: typed rejection (the index
    // would otherwise reference bytes that no longer exist).
    for cut in 0..store.len() {
        let path = write_pair(&dir, &store[..cut], &index);
        let e = Archive::open(&path, &eng)
            .err()
            .unwrap_or_else(|| panic!("store truncated to {cut} bytes was accepted"));
        let _ = e.to_string();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_bytes_are_ignored_and_reclaimed() {
    let eng = engine(2);
    let (store, index, frames) = build_archive(&eng, "arc_tail");
    let dir = tempdir("arc_tail_sweep");
    for garbage in [1usize, 7, 64] {
        let mut torn = store.clone();
        torn.resize(torn.len() + garbage, 0xA5);
        let path = write_pair(&dir, &torn, &index);
        // A torn tail past the committed epoch is invisible: reads are
        // bit-exact and a scrub is clean.
        let mut arc = Archive::open(&path, &eng).expect("open with torn tail");
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(arc.extract_frame(i).expect("extract"), *f);
        }
        assert!(arc.scrub(ScrubMode::Check).expect("scrub").is_clean());
        // The next successful append truncates the tail away.
        let f3 = eng.encode_frame(8, &stream(9)).expect("frame 3");
        arc.append_frame(&f3).expect("append past torn tail");
        let len = std::fs::metadata(&path).expect("store metadata").len();
        let reopened = Archive::open(&path, &eng).expect("reopen");
        assert_eq!(reopened.frame_count(), 3);
        assert_eq!(reopened.extract_frame(2).expect("extract"), f3);
        assert_eq!(
            len,
            reopened.stats().stored_bytes + DATA_HEADER_BYTES as u64,
            "torn tail must be reclaimed by the append"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Corpus replay: committed nasty archives under tests/corpus/.
// ---------------------------------------------------------------------------

/// Deterministically regenerates every archive corpus file. Run with
/// `CORPUS_BLESS=1 cargo test -q --test archive_fault_injection` after
/// changing the archive format.
///
/// Returns `(name, bytes)` pairs; stores and indexes are separate
/// files so each golden archive is the on-disk *pair* the reader sees.
fn corpus_files() -> Vec<(&'static str, Vec<u8>)> {
    let (store_v2, index_v2, _) = build_archive(&engine(1), "arc_corpus_v2");
    let (store_v3, index_v3, _) = build_archive(&engine_v3(1), "arc_corpus_v3");

    // 1. Bomb index: a forged frame count of u32::MAX with a fixed-up
    //    trailing CRC — the byte-budget cross-check must reject it
    //    before allocating anything.
    let mut bomb = index_v3.clone();
    let body_len = bomb.len() - 4;
    bomb[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
    let crc = frame::crc32(&bomb[..body_len]);
    bomb[body_len..].copy_from_slice(&crc.to_le_bytes());

    // 2. Torn epoch: a store with 19 garbage bytes past the committed
    //    length — the uncommitted tail a killed append leaves behind.
    let mut torn = store_v3.clone();
    torn.extend_from_slice(&[0x5A; 19]);

    // 3. Rotted dedup-shared blob: one flipped byte in the first blob
    //    past the store header, which both frames reference.
    let mut rotted = store_v3.clone();
    rotted[DATA_HEADER_BYTES + 4] ^= 0xFF;

    vec![
        ("archive_v2.9ca", store_v2),
        ("archive_v2.9ca.idx", index_v2),
        ("archive_v3.9ca", store_v3),
        ("archive_v3.9ca.idx", index_v3),
        ("archive_bomb.9ca.idx", bomb),
        ("archive_torn_epoch.9ca", torn),
        ("archive_rotted.9ca", rotted),
    ]
}

#[test]
fn corpus_replay() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let bless = std::env::var_os("CORPUS_BLESS").is_some();
    let mut on_disk: std::collections::HashMap<&'static str, Vec<u8>> =
        std::collections::HashMap::new();
    for (name, bytes) in corpus_files() {
        let path = dir.join(name);
        if bless {
            std::fs::create_dir_all(&dir).expect("create corpus dir");
            std::fs::write(&path, &bytes).expect("bless corpus file");
            on_disk.insert(name, bytes);
            continue;
        }
        let got = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (regenerate with CORPUS_BLESS=1)", path.display()));
        assert_eq!(
            got, bytes,
            "{name} drifted from its generator; regenerate with CORPUS_BLESS=1"
        );
        on_disk.insert(name, got);
    }

    let eng_v2 = engine(1);
    let eng_v3 = engine_v3(1);
    let (_, _, frames_v2) = build_archive(&eng_v2, "arc_replay_v2");
    let (_, _, frames_v3) = build_archive(&eng_v3, "arc_replay_v3");
    let store_v3 = &on_disk["archive_v3.9ca"];
    let index_v3 = &on_disk["archive_v3.9ca.idx"];

    // Clean goldens: bit-exact extraction, clean scrub.
    for (store, index, frames, eng) in [
        ("archive_v2.9ca", "archive_v2.9ca.idx", &frames_v2, &eng_v2),
        ("archive_v3.9ca", "archive_v3.9ca.idx", &frames_v3, &eng_v3),
    ] {
        let tmp = tempdir("arc_replay_clean");
        let path = write_pair(&tmp, &on_disk[store], &on_disk[index]);
        let mut arc = Archive::open(&path, eng).expect(store);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(
                arc.extract_frame(i).expect("extract"),
                *f,
                "{store} frame {i}"
            );
        }
        assert!(arc.scrub(ScrubMode::Check).expect("scrub").is_clean());
        let _ = std::fs::remove_dir_all(&tmp);
    }

    // Bombed index: typed structural rejection, no allocation bomb.
    {
        let tmp = tempdir("arc_replay_bomb");
        let path = write_pair(&tmp, store_v3, &on_disk["archive_bomb.9ca.idx"]);
        assert!(matches!(
            Archive::open(&path, &eng_v3),
            Err(ArchiveError::BadIndex { .. })
        ));
        let _ = std::fs::remove_dir_all(&tmp);
    }

    // Torn epoch: the garbage tail is invisible to every read path.
    {
        let tmp = tempdir("arc_replay_torn");
        let path = write_pair(&tmp, &on_disk["archive_torn_epoch.9ca"], index_v3);
        let mut arc = Archive::open(&path, &eng_v3).expect("open torn epoch");
        for (i, f) in frames_v3.iter().enumerate() {
            assert_eq!(arc.extract_frame(i).expect("extract"), *f);
        }
        assert!(arc.scrub(ScrubMode::Check).expect("scrub").is_clean());
        let _ = std::fs::remove_dir_all(&tmp);
    }

    // Rotted shared blob: both frames see the rot, one repair heals
    // every referencing frame bit-exactly.
    {
        let tmp = tempdir("arc_replay_rot");
        let path = write_pair(&tmp, &on_disk["archive_rotted.9ca"], index_v3);
        let mut arc = Archive::open(&path, &eng_v3).expect("open rotted");
        for i in 0..arc.frame_count() {
            assert!(
                matches!(arc.extract_frame(i), Err(ArchiveError::Rotted { .. })),
                "shared rot must fail every referencing frame"
            );
        }
        let check = arc.scrub(ScrubMode::Check).expect("check");
        assert!(check.covers_offset((DATA_HEADER_BYTES + 4) as u64));
        assert!(check
            .findings
            .iter()
            .all(|f| matches!(f.verdict, ScrubVerdict::Degraded { .. })));
        let repair = arc.scrub(ScrubMode::Repair).expect("repair");
        assert!(!repair.needs_attention());
        for (i, f) in frames_v3.iter().enumerate() {
            assert_eq!(arc.extract_frame(i).expect("post-repair extract"), *f);
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }

    // Random access over the blessed v3 archive matches a full decode.
    {
        let tmp = tempdir("arc_replay_range");
        let path = write_pair(&tmp, store_v3, index_v3);
        let arc = Archive::open(&path, &eng_v3).expect("open");
        let full = eng_v3.decode_frame(&frames_v3[0]).expect("decode");
        for (start, len) in [(0usize, 7usize), (63, 64), (full.len() - 5, 5)] {
            let got = arc.decode_range(0, start, len).expect("range");
            assert_eq!(got.len(), len);
            for i in 0..len {
                assert_eq!(got.get(i), full.get(start + i), "start {start} trit {i}");
            }
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }
}

// ---------------------------------------------------------------------------
// Torn-append harness: a kill at every byte boundary (failpoints only).
// ---------------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod torn_append {
    use super::*;
    use ninec::engine::faultpoint::{Action, FailPoint, SITE_ARC};

    fn kill_engine(boundary: usize) -> Engine {
        Engine::builder()
            .threads(1)
            .segment_bits(192)
            .failpoint(FailPoint {
                site: SITE_ARC.into(),
                index: Some(boundary),
                action: Action::Kill,
            })
            .build()
    }

    /// The ISSUE's headline robustness claim: killing an append at
    /// *every* byte boundary leaves all previously committed frames
    /// bit-exactly extractable, with the epoch untouched.
    #[test]
    fn every_kill_boundary_preserves_the_previous_epoch() {
        let dir = tempdir("arc_kill_all");
        let eng = engine(1);
        let f1 = eng.encode_frame(8, &stream(3)).expect("frame 1");
        let f2 = eng.encode_frame(8, &stream(5)).expect("frame 2");
        let f3 = eng.encode_frame(8, &stream(9)).expect("frame 3");
        let path = dir.join("t.9ca");
        let mut arc = Archive::create(&path, &eng).expect("create");
        arc.append_frame(&f1).expect("append 1");
        arc.append_frame(&f2).expect("append 2");
        let epoch = arc.epoch();
        drop(arc);

        // Dry-run the third append elsewhere to learn how many fresh
        // store bytes it writes — that is the boundary space.
        let total = {
            let dry = tempdir("arc_kill_dry");
            let mut a = Archive::create(dry.join("t.9ca"), &eng).expect("create dry");
            a.append_frame(&f1).expect("dry 1");
            a.append_frame(&f2).expect("dry 2");
            let receipt = a.append_frame(&f3).expect("dry 3");
            let _ = std::fs::remove_dir_all(&dry);
            usize::try_from(receipt.new_bytes).expect("fits usize")
        };
        assert!(total > 0, "the harness needs fresh bytes to tear");

        for boundary in 0..=total {
            let killer = kill_engine(boundary);
            let mut arc = Archive::open(&path, &killer).expect("open under kill point");
            let err = arc
                .append_frame(&f3)
                .expect_err("armed kill must tear the append");
            match err {
                ArchiveError::TornAppend { written } => assert_eq!(
                    written as usize,
                    boundary.min(total),
                    "kill at boundary {boundary} wrote the wrong byte count"
                ),
                other => panic!("kill at boundary {boundary} surfaced {other}"),
            }
            // The previous epoch survives: same frames, same bytes.
            let survivor = Archive::open(&path, &eng).expect("reopen after kill");
            assert_eq!(survivor.frame_count(), 2, "boundary {boundary}");
            assert_eq!(survivor.epoch(), epoch, "boundary {boundary}");
            assert_eq!(survivor.extract_frame(0).expect("extract 1"), f1);
            assert_eq!(survivor.extract_frame(1).expect("extract 2"), f2);
        }

        // With the fault disarmed the append lands and reclaims every
        // torn tail the kills left behind.
        let mut arc = Archive::open(&path, &eng).expect("final open");
        arc.append_frame(&f3).expect("clean append");
        assert_eq!(arc.frame_count(), 3);
        assert_eq!(arc.extract_frame(2).expect("extract 3"), f3);
        let len = std::fs::metadata(&path).expect("store metadata").len();
        assert_eq!(len, arc.stats().stored_bytes + DATA_HEADER_BYTES as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A wildcard kill point (`arc:*:kill`) tears at boundary zero.
    #[test]
    fn wildcard_kill_point_writes_nothing() {
        let dir = tempdir("arc_kill_wild");
        let eng = engine(1);
        let killer = Engine::builder()
            .threads(1)
            .segment_bits(192)
            .failpoint(FailPoint {
                site: SITE_ARC.into(),
                index: None,
                action: Action::Kill,
            })
            .build();
        let path = dir.join("t.9ca");
        let mut arc = Archive::create(&path, &killer).expect("create");
        let f1 = eng.encode_frame(8, &stream(3)).expect("frame");
        match arc.append_frame(&f1) {
            Err(ArchiveError::TornAppend { written }) => assert_eq!(written, 0),
            other => panic!("expected a torn append, got {other:?}"),
        }
        let survivor = Archive::open(&path, &eng).expect("reopen");
        assert_eq!(survivor.frame_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn archive_module_sniffs() {
    assert!(archive::is_archive(b"9CA1rest"));
    assert!(!archive::is_archive(b"9CSF"));
}

//! End-to-end integration: netlist → ATPG → 9C → cycle-accurate
//! decompression → X-fill → fault simulation, across architectures.

use ninec::encode::Encoder;
use ninec::multiscan::encode_multiscan;
use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_circuit::bench::{parse_bench, C17, S27};
use ninec_circuit::random::RandomCircuitSpec;
use ninec_circuit::Circuit;
use ninec_decompressor::multi::MultiScanDecoder;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_fsim::fault::collapsed_faults;
use ninec_fsim::fsim::fault_simulate;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::trit::TritVec;

/// ATPG's detections must survive 9C compression + hardware decompression
/// + random fill.
fn assert_flow_preserves_coverage(circuit: &Circuit, k: usize) {
    let atpg = generate_tests(circuit, AtpgConfig::default());
    let cubes = &atpg.tests;
    assert!(
        cubes.num_patterns() > 0,
        "{}: ATPG produced no cubes",
        circuit.name()
    );

    let encoded = Encoder::new(k).expect("valid K").encode_set(cubes);
    let ate_bits = encoded.to_bitvec(FillStrategy::Random { seed: 2024 });
    let decoder = SingleScanDecoder::new(k, encoded.table().clone(), ClockRatio::new(8));
    let trace = decoder
        .run(&ate_bits, cubes.total_bits())
        .expect("own encoding decompresses");

    let applied = TestSet::from_stream(cubes.pattern_len(), TritVec::from(&trace.scan_out));
    assert!(applied.covers(cubes), "{}: care bit lost", circuit.name());

    let faults = collapsed_faults(circuit);
    let applied_cov = fault_simulate(circuit, &applied, &faults);
    assert!(
        applied_cov.detected() >= atpg.detected(),
        "{}: coverage dropped from {} to {}",
        circuit.name(),
        atpg.detected(),
        applied_cov.detected()
    );
}

#[test]
fn s27_flow_at_multiple_k() {
    let s27 = parse_bench(S27).unwrap();
    for k in [4usize, 8, 16] {
        assert_flow_preserves_coverage(&s27, k);
    }
}

#[test]
fn c17_flow() {
    let c17 = parse_bench(C17).unwrap();
    assert_flow_preserves_coverage(&c17, 8);
}

#[test]
fn random_circuits_flow() {
    for seed in [1u64, 2] {
        let c = RandomCircuitSpec::new(&format!("e2e{seed}"), 8, 16, 150).generate(seed);
        assert_flow_preserves_coverage(&c, 8);
    }
}

#[test]
fn multiscan_flow_preserves_coverage() {
    // A random circuit with enough scan cells to split into chains.
    let circuit = RandomCircuitSpec::new("e2e-ms", 8, 24, 200).generate(11);
    let atpg = generate_tests(&circuit, AtpgConfig::default());
    let cubes = &atpg.tests;
    let (k, m) = (8usize, 16usize);

    let encoded = encode_multiscan(cubes, m, k).unwrap();
    let ate_bits = encoded.to_bitvec(FillStrategy::Random { seed: 5 });
    let decoder = MultiScanDecoder::new(k, m, encoded.table().clone(), ClockRatio::new(8));
    let trace = decoder.run(&ate_bits, cubes).unwrap();
    assert!(trace.loaded.covers(cubes));
    assert_eq!(trace.pins, 1);

    let faults = collapsed_faults(&circuit);
    let cov = fault_simulate(&circuit, &trace.loaded, &faults);
    assert!(
        cov.detected() >= atpg.detected(),
        "multiscan coverage dropped: {} < {}",
        cov.detected(),
        atpg.detected()
    );
}

#[test]
fn frequency_directed_flow_roundtrips() {
    let s27 = parse_bench(S27).unwrap();
    let atpg = generate_tests(&s27, AtpgConfig::default());
    let out = ninec::freqdir::encode_frequency_directed(8, atpg.tests.as_stream()).unwrap();
    let best = out.best();
    let ate_bits = best.to_bitvec(FillStrategy::Zero);
    let decoder = SingleScanDecoder::new(8, best.table().clone(), ClockRatio::new(4));
    let trace = decoder.run(&ate_bits, atpg.tests.total_bits()).unwrap();
    let applied = TestSet::from_stream(atpg.tests.pattern_len(), TritVec::from(&trace.scan_out));
    assert!(applied.covers(&atpg.tests));
}

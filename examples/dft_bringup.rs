//! DFT bring-up on a netlist, end to end: insert a scan chain, prove the
//! shift/capture protocol against the combinational scan view, run ATPG,
//! compress the cubes with 9C, and emit the matching decoder RTL.
//!
//! ```text
//! cargo run --example dft_bringup
//! ```

use ninec::encode::Encoder;
use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_circuit::bench::{parse_bench, S27};
use ninec_circuit::scan::insert_scan;
use ninec_decompressor::verilog::decoder_verilog;
use ninec_fsim::seq::SequentialSimulator;
use ninec_fsim::sim::simulate_cubes;
use ninec_testdata::trit::{Trit, TritVec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Read the netlist and stitch the scan chain.
    let s27 = parse_bench(S27)?;
    println!("netlist: {s27}");
    let scanned = insert_scan(&s27)?;
    println!(
        "scan inserted: {} cells, +{} gates for the muxes\n",
        scanned.chain_len(),
        scanned.circuit.num_logic_gates() - s27.num_logic_gates()
    );

    // 2. ATPG on the original circuit's scan view.
    let atpg = generate_tests(&s27, AtpgConfig::default());
    println!("ATPG: {atpg}");

    // 3. Replay one cube through the *real* chain: shift, capture, compare.
    let cube = atpg.tests.pattern(0);
    let num_pis = s27.primary_inputs().len();
    let ppi: TritVec = (num_pis..cube.len())
        .map(|i| cube.get(i).unwrap())
        .collect();
    let reversed: TritVec = ppi.iter().rev().collect();
    let mut sim = SequentialSimulator::new(&scanned.circuit);
    sim.scan_shift(&scanned, &reversed);
    let mut pis = TritVec::repeat(Trit::X, scanned.circuit.primary_inputs().len());
    for i in 0..num_pis {
        pis.set(i, cube.get(i).unwrap());
    }
    let se = scanned
        .circuit
        .primary_inputs()
        .iter()
        .position(|&n| n == scanned.scan_en)
        .expect("scan_en exists");
    pis.set(se, Trit::Zero);
    let captured_pos = sim.step(&pis);
    let expected = &simulate_cubes(&s27, &atpg.tests)[0];
    let agreement =
        (0..s27.primary_outputs().len()).all(|o| captured_pos.get(o) == expected.get(o));
    println!(
        "protocol check on cube 0: serial shift/capture {} the scan view\n",
        if agreement {
            "matches"
        } else {
            "DISAGREES with"
        }
    );
    assert!(agreement);

    // 4. Compress the cube set and print the numbers.
    let encoded = Encoder::new(8)?.encode_set(&atpg.tests);
    println!(
        "9C @ K=8: {} -> {} bits (CR {:.1}%), {} leftover X",
        atpg.tests.total_bits(),
        encoded.compressed_len(),
        encoded.compression_ratio(),
        encoded.stats().leftover_x
    );

    // 5. Emit the decoder RTL that pairs with this test set.
    let rtl = decoder_verilog(8);
    println!(
        "\ndecoder RTL: {} lines of Verilog (module ninec_decoder_k8); first lines:",
        rtl.lines().count()
    );
    for line in rtl.lines().take(5) {
        println!("    {line}");
    }
    Ok(())
}

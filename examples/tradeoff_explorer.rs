//! Explore the paper's three-way trade-off (§IV): compression ratio vs
//! leftover don't-cares vs block size K — and what the leftover X buys you
//! (random fill for non-modeled faults, or MT-fill for scan power).
//!
//! Give a target LX% on the command line to get the K recommendation the
//! paper describes ("if the user asks for a specific amount of
//! don't-cares, K is obtained from Table III"):
//!
//! ```text
//! cargo run --example tradeoff_explorer -- 10
//! ```

use ninec::encode::Encoder;
use ninec::session::DecodeSession;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::gen::mintest_profile;
use ninec_testdata::power::scan_power;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target_lx: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(8.0);

    let profile = mintest_profile("s15850").expect("bundled profile");
    let cubes = profile.generate(1);
    println!(
        "circuit {}: {} bits, {:.1}% X; target leftover X >= {target_lx}%\n",
        profile.name,
        cubes.total_bits(),
        cubes.x_density() * 100.0
    );

    println!(
        "{:>4} {:>8} {:>8} {:>14} {:>14}",
        "K", "CR%", "LX%", "WTM random", "WTM MT-fill"
    );
    let mut recommendation: Option<(usize, f64, f64)> = None;
    for k in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let encoded = Encoder::new(k)?.encode_set(&cubes);
        let cr = encoded.compression_ratio();
        let lx = encoded.leftover_x_percent();
        // What the surviving X is worth: decode, then fill both ways.
        let decoded =
            TestSet::from_stream(cubes.pattern_len(), DecodeSession::new().decode(&encoded)?);
        let rnd = scan_power(&decoded, FillStrategy::Random { seed: 5 });
        let mt = scan_power(&decoded, FillStrategy::MinTransition);
        println!(
            "{:>4} {:>8.1} {:>8.1} {:>14} {:>14}",
            k, cr, lx, rnd.total, mt.total
        );
        if lx >= target_lx && recommendation.is_none_or(|(_, best_cr, _)| cr > best_cr) {
            recommendation = Some((k, cr, lx));
        }
    }

    match recommendation {
        Some((k, cr, lx)) => println!(
            "\nrecommendation: K={k} gives the best CR ({cr:.1}%) with at \
             least {target_lx}% leftover X (achieves {lx:.1}%)"
        ),
        None => println!(
            "\nno K in the sweep leaves {target_lx}% of |T_D| as don't-cares; \
             the maximum is at K=32"
        ),
    }
    Ok(())
}

//! Quickstart: compress a scan test set with 9C, decompress it, and look
//! at the numbers the paper reports (CR%, leftover X, TAT%).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ninec::analysis::TatModel;
use ninec::encode::Encoder;
use ninec::session::DecodeSession;
use ninec_testdata::gen::SyntheticProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An s5378-shaped synthetic test-cube set: 111 patterns x 214 scan
    // cells, ~72% don't-cares (see DESIGN.md §4 for why synthetic).
    let profile = SyntheticProfile::new("s5378-like", 111, 214, 0.726);
    let cubes = profile.generate(1);
    println!(
        "test set: {} patterns x {} cells = {} bits, {:.1}% X\n",
        cubes.num_patterns(),
        cubes.pattern_len(),
        cubes.total_bits(),
        cubes.x_density() * 100.0
    );

    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>10}",
        "K", "CR%", "LX%", "TAT%p=8", "|T_E| bits"
    );
    for k in [4usize, 8, 12, 16, 24, 32] {
        let encoder = Encoder::new(k)?;
        let encoded = encoder.encode_set(&cubes);
        let tat = TatModel::new(8.0).tat_percent(&encoded);
        println!(
            "{:>4} {:>8.1} {:>8.1} {:>8.1} {:>10}",
            k,
            encoded.compression_ratio(),
            encoded.leftover_x_percent(),
            tat,
            encoded.compressed_len()
        );
    }

    // Decode at the sweet spot and verify every care bit survived.
    let encoded = Encoder::new(8)?.encode_set(&cubes);
    let decoded = DecodeSession::new().decode(&encoded)?;
    let src = cubes.as_stream();
    let mut preserved = 0usize;
    for i in 0..src.len() {
        let s = src.get(i).expect("in range");
        if s.is_care() {
            assert_eq!(Some(s), decoded.get(i), "care bit {i} corrupted");
            preserved += 1;
        }
    }
    println!(
        "\ndecode check: all {preserved} care bits preserved; \
         {} X symbols survive in T_E for later fill",
        encoded.stats().leftover_x
    );
    Ok(())
}

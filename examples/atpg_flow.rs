//! The full DFT flow the paper assumes, end to end on real circuits:
//!
//! netlist -> ATPG (PODEM) -> test cubes T_D -> 9C compression -> ATE ->
//! cycle-accurate on-chip decompression -> random X-fill -> fault
//! simulation, confirming that compression lost no stuck-at coverage.
//!
//! ```text
//! cargo run --example atpg_flow
//! ```

use ninec::encode::Encoder;
use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_circuit::bench::{parse_bench, S27};
use ninec_circuit::random::RandomCircuitSpec;
use ninec_circuit::Circuit;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_fsim::fault::collapsed_faults;
use ninec_fsim::fsim::fault_simulate;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::{fill_test_set, FillStrategy};
use ninec_testdata::trit::TritVec;

fn run_flow(circuit: &Circuit) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {circuit}");

    // 1. ATPG: cubes with don't-cares.
    let atpg = generate_tests(circuit, AtpgConfig::default());
    println!("   ATPG: {atpg}");
    let cubes = &atpg.tests;
    println!(
        "   cubes: {} x {} bits, {:.1}% X",
        cubes.num_patterns(),
        cubes.pattern_len(),
        cubes.x_density() * 100.0
    );

    // 2. Compress with 9C at K = 8.
    let encoded = Encoder::new(8)?.encode_set(cubes);
    println!(
        "   9C: {} -> {} bits (CR {:.1}%), leftover X {}",
        cubes.total_bits(),
        encoded.compressed_len(),
        encoded.compression_ratio(),
        encoded.stats().leftover_x
    );

    // 3. Random-fill the leftover X in T_E and ship through the
    //    cycle-accurate decoder.
    let ate_bits = encoded.to_bitvec(FillStrategy::Random { seed: 99 });
    let decoder = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(8));
    let trace = decoder.run(&ate_bits, cubes.total_bits())?;
    println!(
        "   decompressed in {} SoC ticks ({} ATE bits)",
        trace.soc_ticks, trace.ate_bits
    );

    // 4. The decompressed patterns (now fully specified) must keep the
    //    cube set's fault coverage.
    let applied = TestSet::from_stream(cubes.pattern_len(), TritVec::from(&trace.scan_out));
    assert!(applied.covers(cubes), "decompression altered a care bit");
    let faults = collapsed_faults(circuit);
    let cube_cov = fault_simulate(circuit, &fill_test_set(cubes, FillStrategy::Zero), &faults);
    let applied_cov = fault_simulate(circuit, &applied, &faults);
    println!(
        "   coverage: cubes (0-fill) {:.2}% vs decompressed+random-fill {:.2}%",
        cube_cov.coverage_percent(),
        applied_cov.coverage_percent()
    );
    assert!(
        applied_cov.detected() >= atpg.detected(),
        "decompressed patterns must detect at least the targeted faults"
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_flow(&parse_bench(S27)?)?;
    run_flow(&RandomCircuitSpec::new("rand400", 12, 20, 400).generate(7))?;
    Ok(())
}

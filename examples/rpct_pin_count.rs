//! Reduced pin-count testing: walk the paper's Figure 4 spectrum on one
//! circuit — (a) one chain / one pin, (b) `m` chains / one pin, (c) `m`
//! chains / `m/K` pins — with the cycle-accurate decompressor models.
//!
//! ```text
//! cargo run --example rpct_pin_count
//! ```

use ninec::encode::Encoder;
use ninec::multiscan::encode_multiscan;
use ninec_decompressor::multi::MultiScanDecoder;
use ninec_decompressor::parallel::ParallelDecoders;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::gen::mintest_profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = mintest_profile("s5378").expect("bundled profile");
    let cubes = profile.generate(1);
    let (k, p) = (8usize, 8u32);
    let clocks = ClockRatio::new(p);
    println!(
        "circuit {} ({} cells), K={k}, f_scan = {p} x f_ate\n",
        profile.name,
        cubes.pattern_len()
    );
    println!(
        "{:<28} {:>5} {:>12} {:>10} {:>8}",
        "architecture", "pins", "SoC ticks", "ATE bits", "CR%"
    );

    // (a) single scan chain.
    let enc = Encoder::new(k)?.encode_set(&cubes);
    let bits = enc.to_bitvec(FillStrategy::Random { seed: 7 });
    let trace =
        SingleScanDecoder::new(k, enc.table().clone(), clocks).run(&bits, cubes.total_bits())?;
    let base_ticks = trace.soc_ticks;
    println!(
        "{:<28} {:>5} {:>12} {:>10} {:>8.1}",
        "4a: 1 chain",
        1,
        trace.soc_ticks,
        trace.ate_bits,
        enc.compression_ratio()
    );

    // (b) m chains, one pin — pin count collapses, time ~unchanged.
    for m in [16usize, 32, 64] {
        let enc = encode_multiscan(&cubes, m, k)?;
        let bits = enc.to_bitvec(FillStrategy::Random { seed: 7 });
        let dec = MultiScanDecoder::new(k, m, enc.table().clone(), clocks);
        let trace = dec.run(&bits, &cubes)?;
        assert!(trace.loaded.covers(&cubes), "multi-scan lost care bits");
        println!(
            "{:<28} {:>5} {:>12} {:>10} {:>8.1}",
            format!("4b: {m} chains, 1 pin"),
            trace.pins,
            trace.decoder.soc_ticks,
            trace.decoder.ate_bits,
            enc.compression_ratio()
        );
    }

    // (c) m chains, m/K pins — test time divides by the decoder count.
    for m in [16usize, 32, 64] {
        let arch = ParallelDecoders::new(k, m, clocks)?;
        let trace = arch.compress_and_run(&cubes, FillStrategy::Random { seed: 7 })?;
        assert!(
            trace.loaded.covers(&cubes),
            "parallel decode lost care bits"
        );
        println!(
            "{:<28} {:>5} {:>12} {:>10} {:>8}",
            format!("4c: {m} chains, {} pins", trace.pins),
            trace.pins,
            trace.soc_ticks,
            trace.total_ate_bits,
            format!("{:.2}x", base_ticks as f64 / trace.soc_ticks as f64)
        );
    }

    println!(
        "\ntrade-off: one decoder serves any chain count at 1 pin with\n\
         single-chain test time; parallel decoders buy speed with pins."
    );
    Ok(())
}

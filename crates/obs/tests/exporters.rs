//! Golden-file tests for the two exposition formats.
//!
//! The golden files live in `tests/golden/`; regenerate them after an
//! intentional renderer change with
//! `OBS_BLESS=1 cargo test -p ninec-obs --test exporters`.

use ninec_obs::{HistogramSnapshot, Snapshot};
use std::path::PathBuf;

/// A fixed snapshot exercising every metric kind and the histogram
/// cumulative-bucket path, with names that need sanitizing.
fn sample() -> Snapshot {
    Snapshot {
        counters: vec![
            ("ninec.encode.blocks".to_owned(), 128),
            ("ninec.encode.case.C1".to_owned(), 57),
        ],
        gauges: vec![("ninec.baseline.9C.cr_pct".to_owned(), 61.25)],
        histograms: vec![(
            "ninec.encode.codeword_bits".to_owned(),
            HistogramSnapshot {
                count: 5,
                sum: 20,
                min: Some(1),
                max: Some(8),
                buckets: vec![(1, 2), (7, 2), (15, 1)],
            },
        )],
    }
}

fn check_golden(name: &str, rendered: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("OBS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with OBS_BLESS=1", name));
    assert_eq!(rendered, expected, "golden mismatch for {name}");
}

#[test]
fn prometheus_text_matches_golden() {
    check_golden("snapshot.prom", &sample().render_prometheus());
}

#[test]
fn json_matches_golden() {
    let mut rendered = sample().render_json();
    rendered.push('\n');
    check_golden("snapshot.json", &rendered);
}

#[test]
fn empty_snapshot_documents_are_stable() {
    let s = Snapshot::default();
    assert_eq!(s.render_prometheus(), "");
    let json = s.render_json();
    assert!(json.contains("\"counters\": {}"));
    assert!(json.contains("\"gauges\": {}"));
    assert!(json.contains("\"histograms\": {}"));
}

/// End-to-end through the live registry: record → snapshot → render.
/// With the feature off the registry is inert, so the snapshot is empty
/// and both renderers still produce valid (empty) documents.
#[test]
fn registry_snapshot_round_trip() {
    let reg = ninec_obs::global();
    reg.counter("exp.hits").add(4);
    reg.gauge("exp.ratio").set(0.5);
    let h = reg.histogram("exp.lat");
    h.record(3);
    h.record(9);
    let snap = reg.snapshot();
    if ninec_obs::is_compiled() {
        assert_eq!(snap.counter("exp.hits"), Some(4));
        assert_eq!(snap.gauge("exp.ratio"), Some(0.5));
        let hs = snap.histogram("exp.lat").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 12);
        assert_eq!(hs.min, Some(3));
        assert_eq!(hs.max, Some(9));
        let text = snap.render_prometheus();
        assert!(text.contains("exp_hits 4\n"));
        assert!(text.contains("exp_lat_bucket{le=\"+Inf\"} 2\n"));
    } else {
        assert!(snap.is_empty());
        assert_eq!(snap.render_prometheus(), "");
    }
    // Valid JSON in both builds.
    let json = snap.render_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
}

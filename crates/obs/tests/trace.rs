//! Flight-recorder behavior tests: bounded rings with oldest-first
//! eviction, span nesting, the kill switch, and cross-thread context
//! inheritance.
//!
//! The recorder is process-global (one global ring, thread-local
//! buffers), so every test that drains it holds `LOCK` and filters by
//! its own trace id.

use ninec_obs::{EventKind, RungKind, TracePayload, NO_SEGMENT, THREAD_RING_CAPACITY};
use std::sync::{Mutex, MutexGuard};
use std::thread;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes recorder tests; recovers from a poisoned lock so one
/// failing test doesn't cascade.
fn recorder() -> MutexGuard<'static, ()> {
    match LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[test]
fn ring_wraparound_is_bounded_and_oldest_first() {
    let _g = recorder();
    if !ninec_obs::is_compiled() {
        assert!(ninec_obs::take_trace().is_empty());
        return;
    }
    let _ = ninec_obs::take_trace(); // drain leftovers from other tests
    let trace = ninec_obs::begin_trace();

    // Overfill the thread ring by 100 events; the segment field carries
    // each event's birth index so eviction order is observable.
    let total = THREAD_RING_CAPACITY + 100;
    for i in 0..total {
        ninec_obs::trace_instant(
            "wrap",
            u32::try_from(i).unwrap(),
            RungKind::None,
            TracePayload::None,
        );
    }

    let events: Vec<_> = ninec_obs::take_trace()
        .into_iter()
        .filter(|e| e.trace == trace)
        .collect();

    // Bounded: exactly the ring capacity survived, not `total`.
    assert_eq!(events.len(), THREAD_RING_CAPACITY);
    // Oldest-first eviction: the survivors are the *last* capacity
    // events, in record order.
    for (slot, ev) in events.iter().enumerate() {
        assert_eq!(ev.segment as usize, 100 + slot);
    }
    ninec_obs::set_trace_context(0, 0);
}

#[test]
fn spans_nest_and_carry_the_worker_stamp() {
    let _g = recorder();
    if !ninec_obs::is_compiled() {
        return;
    }
    let _ = ninec_obs::take_trace();
    let trace = ninec_obs::begin_trace();
    let prev = ninec_obs::set_trace_worker(7);

    {
        let _outer = ninec_obs::trace_span_scope("outer", NO_SEGMENT, TracePayload::None);
        ninec_obs::trace_instant("tick", 3, RungKind::Strict, TracePayload::None);
        let _inner = ninec_obs::trace_span_scope("inner", 3, TracePayload::None);
    }

    ninec_obs::set_trace_worker(prev);
    let events: Vec<_> = ninec_obs::take_trace()
        .into_iter()
        .filter(|e| e.trace == trace)
        .collect();

    let names: Vec<(&str, EventKind)> = events.iter().map(|e| (e.name, e.kind)).collect();
    assert_eq!(
        names,
        vec![
            ("outer", EventKind::SpanStart),
            ("tick", EventKind::Instant),
            ("inner", EventKind::SpanStart),
            ("inner", EventKind::SpanEnd),
            ("outer", EventKind::SpanEnd),
        ]
    );
    let outer_span = events[0].span;
    // The instant and the inner span both parent under the open outer
    // span; the outer span has no parent.
    assert_eq!(events[0].parent, 0);
    assert_eq!(events[1].parent, outer_span);
    assert_eq!(events[2].parent, outer_span);
    // Every event carries the thread's worker stamp.
    assert!(events.iter().all(|e| e.worker == 7));
    ninec_obs::set_trace_context(0, 0);
}

#[test]
fn kill_switch_drops_events_but_still_closes_open_spans() {
    let _g = recorder();
    if !ninec_obs::is_compiled() {
        return;
    }
    let _ = ninec_obs::take_trace();
    let trace = ninec_obs::begin_trace();

    {
        let _open = ninec_obs::trace_span_scope("open", NO_SEGMENT, TracePayload::None);
        ninec_obs::set_trace_enabled(false);
        // Dropped: the switch is off.
        ninec_obs::trace_instant("lost", 0, RungKind::None, TracePayload::None);
        // Inert scope: no start, so no end either.
        let _inert = ninec_obs::trace_span_scope("inert", NO_SEGMENT, TracePayload::None);
        // `_open` drops here: its SpanEnd is recorded even though the
        // switch flipped mid-span, keeping start/end pairs balanced.
    }

    ninec_obs::set_trace_enabled(true);
    let events: Vec<_> = ninec_obs::take_trace()
        .into_iter()
        .filter(|e| e.trace == trace)
        .collect();
    let names: Vec<(&str, EventKind)> = events.iter().map(|e| (e.name, e.kind)).collect();
    assert_eq!(
        names,
        vec![("open", EventKind::SpanStart), ("open", EventKind::SpanEnd),]
    );
    ninec_obs::set_trace_context(0, 0);
}

#[test]
fn worker_threads_inherit_the_captured_context() {
    let _g = recorder();
    if !ninec_obs::is_compiled() {
        return;
    }
    let _ = ninec_obs::take_trace();
    let trace = ninec_obs::begin_trace();

    let parent_span;
    {
        let _submit = ninec_obs::trace_span_scope("submit", NO_SEGMENT, TracePayload::None);
        let ctx = ninec_obs::trace_context();
        parent_span = ctx.1;
        assert_eq!(ctx.0, trace);
        thread::scope(|s| {
            s.spawn(move || {
                ninec_obs::set_trace_context(ctx.0, ctx.1);
                ninec_obs::set_trace_worker(2);
                ninec_obs::trace_instant("job", 5, RungKind::None, TracePayload::None);
                // Thread exit also drains the local ring via its TLS
                // destructor, but scope join can observe completion
                // before that destructor runs — flush explicitly so the
                // drain is ordered before `take_trace` below.
                ninec_obs::flush_thread_trace();
            });
        });
    }

    let events: Vec<_> = ninec_obs::take_trace()
        .into_iter()
        .filter(|e| e.trace == trace && e.name == "job")
        .collect();
    assert_eq!(events.len(), 1);
    // The worker event nests under the submitting span and carries the
    // worker id even though it was recorded on another thread.
    assert_eq!(events[0].parent, parent_span);
    assert_eq!(events[0].worker, 2);
    assert_eq!(events[0].segment, 5);
    ninec_obs::set_trace_context(0, 0);
}

//! Multi-threaded hammer test: 8 threads increment the same counter and
//! histogram handles; totals must be exact (no lost updates).
//!
//! Only meaningful in the real build — with the feature off the metrics
//! are inert and the assertions flip to the always-zero contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const THREADS: u64 = 8;
const ITERS: u64 = 10_000;

#[test]
fn eight_threads_exact_totals() {
    let reg = ninec_obs::global();
    let counter = reg.counter("conc.hits");
    let hist = reg.histogram("conc.values");

    thread::scope(|s| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    counter.inc();
                    // Deterministic value mix spanning several buckets.
                    hist.record(t * ITERS + i);
                }
            });
        }
    });

    if ninec_obs::is_compiled() {
        assert_eq!(counter.get(), THREADS * ITERS);
        assert_eq!(hist.count(), THREADS * ITERS);
        // Sum of 0 .. THREADS*ITERS - 1.
        let n = THREADS * ITERS;
        assert_eq!(hist.sum(), n * (n - 1) / 2);
        assert_eq!(hist.min(), Some(0));
        assert_eq!(hist.max(), Some(n - 1));
        // The snapshot agrees and its buckets account for every sample.
        let snap = reg.snapshot();
        let hs = snap.histogram("conc.values").unwrap();
        assert_eq!(hs.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
    } else {
        assert_eq!(counter.get(), 0);
        assert_eq!(hist.count(), 0);
    }
}

#[test]
fn snapshot_under_load_is_internally_consistent() {
    // Satellite of the flight-recorder PR: a snapshot taken *while* 8
    // writers hammer the histogram must still be a coherent document —
    // its count equals the sum of its own bucket counts, never a torn
    // mix of "count from now, buckets from a moment ago".
    let reg = ninec_obs::global();
    let hist = reg.histogram("conc.load.values");
    let stop = AtomicBool::new(false);

    thread::scope(|s| {
        for t in 0..THREADS {
            let hist = hist.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Values spread across many log2 buckets.
                    hist.record((t + 1) << (i % 48));
                    i += 1;
                }
            });
        }
        for _ in 0..200 {
            let snap = reg.snapshot();
            if let Some(hs) = snap.histogram("conc.load.values") {
                assert_eq!(
                    hs.count,
                    hs.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
                    "snapshot count must equal the sum of its bucket counts"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced: the final snapshot agrees with the handle exactly.
    if ninec_obs::is_compiled() {
        let snap = reg.snapshot();
        let hs = snap.histogram("conc.load.values").unwrap();
        assert_eq!(hs.count, hist.count());
        assert_eq!(
            hs.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            hist.count()
        );
    }
}

#[test]
fn concurrent_get_or_register_is_one_handle() {
    // All threads asking for the same name must share one underlying slot.
    let reg = ninec_obs::global();
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..ITERS {
                    reg.counter("conc.shared").inc();
                }
            });
        }
    });
    if ninec_obs::is_compiled() {
        assert_eq!(reg.counter("conc.shared").get(), THREADS * ITERS);
    }
}

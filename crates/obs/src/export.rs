//! Snapshot types and the two exposition formats.
//!
//! A [`Snapshot`] is a point-in-time copy of a registry's metrics, fully
//! decoupled from the live atomics: it exists in both the real and the
//! no-op build (where it is simply always empty), so exporters and their
//! golden tests are feature-independent.
//!
//! Two renderers are provided:
//!
//! - [`Snapshot::render_prometheus`] — Prometheus text exposition
//!   (`# TYPE` comments, cumulative `_bucket{le="…"}` histogram series);
//! - [`Snapshot::to_json`] / [`Snapshot::render_json`] — a JSON document
//!   built on the vendored `serde_json` [`Value`] tree.

use serde_json::Value;

/// Number of log2 histogram buckets: bucket 0 holds the value `0`, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`, bucket 64 tops out at
/// `u64::MAX`.
pub const BUCKETS: usize = 65;

/// The bucket index a value falls into (`0 ..= 64`).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, …,
/// `u64::MAX`).
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value, `None` when empty.
    pub min: Option<u64>,
    /// Largest recorded value, `None` when empty.
    pub max: Option<u64>,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric in a registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, state)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// `true` when no metric of any kind is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of the counter `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Value of the gauge `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        lookup(&self.gauges, name).copied()
    }

    /// State of the histogram `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Renders Prometheus text exposition format.
    ///
    /// Metric names are sanitized (`.`/`-` → `_`); histogram buckets are
    /// emitted cumulatively with a final `+Inf` bucket, followed by
    /// `_sum` and `_count` series, per the exposition spec.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for &(upper, count) in &hist.buckets {
                cumulative += count;
                out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_count {}\n", hist.count));
        }
        out
    }

    /// The snapshot as a JSON value:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    ///
    /// Histogram entries carry `count`, `sum`, `min`, `max`, `mean` and
    /// the non-empty `buckets` as `{"le": upper, "count": n}` objects.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets: Vec<Value> = h
                        .buckets
                        .iter()
                        .map(|&(le, count)| serde_json::json!({"le": le, "count": count}))
                        .collect();
                    let body = serde_json::json!({
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                        "mean": h.mean(),
                        "buckets": buckets,
                    });
                    (k.clone(), body)
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".to_owned(), counters),
            ("gauges".to_owned(), gauges),
            ("histograms".to_owned(), histograms),
        ])
    }

    /// [`Snapshot::to_json`] pretty-printed.
    #[must_use]
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("snapshot JSON cannot fail")
    }
}

fn lookup<'a, T>(entries: &'a [(String, T)], name: &str) -> Option<&'a T> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Prometheus-compatible metric name: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bound brackets it.
        for v in [0u64, 1, 2, 5, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v}");
            }
        }
    }

    #[test]
    fn empty_snapshot_renders_valid_documents() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.render_prometheus(), "");
        let v = s.to_json();
        assert!(v["counters"].as_array().is_none()); // object, not array
        assert!(v.get("histograms").is_some());
        assert!(s.render_json().contains("\"counters\": {}"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let s = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![(
                "h.x".to_owned(),
                HistogramSnapshot {
                    count: 5,
                    sum: 20,
                    min: Some(1),
                    max: Some(8),
                    buckets: vec![(1, 2), (7, 2), (15, 1)],
                },
            )],
        };
        let text = s.render_prometheus();
        assert!(text.contains("h_x_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("h_x_bucket{le=\"7\"} 4\n"));
        assert!(text.contains("h_x_bucket{le=\"15\"} 5\n"));
        assert!(text.contains("h_x_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("h_x_sum 20\n"));
        assert!(text.contains("h_x_count 5\n"));
    }

    #[test]
    fn lookup_helpers() {
        let s = Snapshot {
            counters: vec![("a".into(), 3)],
            gauges: vec![("g".into(), 1.5)],
            histograms: vec![("h".into(), HistogramSnapshot::default())],
        };
        assert_eq!(s.counter("a"), Some(3));
        assert_eq!(s.counter("b"), None);
        assert_eq!(s.gauge("g"), Some(1.5));
        assert_eq!(s.histogram("h").unwrap().count, 0);
        assert!((s.histogram("h").unwrap().mean() - 0.0).abs() < 1e-12);
    }
}

//! No-op twin of [`live`](../live.rs): the API surface compiled when the
//! `enabled` feature is **off**.
//!
//! Every type is a unit struct and every operation an inlined empty body,
//! so the optimizer erases instrumentation call sites entirely. The
//! [`Snapshot`]-producing entry points return empty snapshots, which keeps
//! exporters (and their golden tests) feature-independent.

use crate::export::Snapshot;

/// Monotonic event counter (no-op build: always zero).
#[derive(Debug, Clone, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always `0`.
    #[inline(always)]
    #[must_use]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Last-write-wins float gauge (no-op build: always zero).
#[derive(Debug, Clone, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _value: f64) {}

    /// Always `0.0`.
    #[inline(always)]
    #[must_use]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// Fixed-bucket log2 histogram (no-op build: always empty).
#[derive(Debug, Clone, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _value: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn record_n(&self, _value: u64, _n: u64) {}

    /// Always `0`.
    #[inline(always)]
    #[must_use]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always `0`.
    #[inline(always)]
    #[must_use]
    pub fn sum(&self) -> u64 {
        0
    }

    /// Always `0.0`.
    #[inline(always)]
    #[must_use]
    pub fn mean(&self) -> f64 {
        0.0
    }

    /// Always `None`.
    #[inline(always)]
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        None
    }

    /// Always `None`.
    #[inline(always)]
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        None
    }
}

/// Named-metric registry (no-op build: permanently empty).
#[derive(Debug, Default)]
pub struct Registry;

impl Registry {
    /// A new, permanently empty registry.
    #[must_use]
    pub const fn new() -> Self {
        Registry
    }

    /// A unit [`Counter`]; the name is discarded.
    #[inline(always)]
    #[must_use]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// A unit [`Gauge`]; the name is discarded.
    #[inline(always)]
    #[must_use]
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge
    }

    /// A unit [`Histogram`]; the name is discarded.
    #[inline(always)]
    #[must_use]
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram
    }

    /// Always the empty [`Snapshot`].
    #[inline(always)]
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }

    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry (no-op build: permanently empty).
#[inline(always)]
#[must_use]
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Does nothing: there is no runtime switch to flip in the no-op build.
#[inline(always)]
pub fn set_runtime_enabled(_on: bool) {}

/// Always `false`: instrumentation is compiled out.
#[inline(always)]
#[must_use]
pub fn runtime_enabled() -> bool {
    false
}

/// Always `false` in this build.
#[inline(always)]
#[must_use]
pub fn is_compiled() -> bool {
    false
}

/// One completed span occurrence (no-op build: never produced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global start order of the span.
    pub seq: u64,
    /// Static span name.
    pub name: &'static str,
    /// Nesting depth on the recording thread (`0` = outermost).
    pub depth: usize,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// Does nothing: span tracing does not exist in the no-op build.
#[inline(always)]
pub fn set_trace_spans(_on: bool) {}

/// Always empty.
#[inline(always)]
#[must_use]
pub fn take_spans() -> Vec<SpanEvent> {
    Vec::new()
}

/// An inert timer; dropping it records nothing.
#[inline(always)]
#[must_use]
pub fn span(_name: &'static str) -> SpanTimer {
    SpanTimer
}

/// RAII span timer (no-op build: a unit struct whose drop is empty).
#[derive(Debug)]
pub struct SpanTimer;

// --- flight recorder (no-op build: nothing is ever recorded) ----------

use crate::trace::{RungKind, TraceEvent, TracePayload, NO_WORKER};

/// Does nothing: the recorder is compiled out.
#[inline(always)]
pub fn set_trace_enabled(_on: bool) {}

/// Always `false`: the recorder is compiled out.
#[inline(always)]
#[must_use]
pub fn trace_enabled() -> bool {
    false
}

/// Always `0`: no trace ids exist in the no-op build.
#[inline(always)]
pub fn begin_trace() -> u64 {
    0
}

/// Always `0`.
#[inline(always)]
#[must_use]
pub fn current_trace() -> u64 {
    0
}

/// Always `(0, 0)`.
#[inline(always)]
#[must_use]
pub fn trace_context() -> (u64, u64) {
    (0, 0)
}

/// Does nothing.
#[inline(always)]
pub fn set_trace_context(_trace: u64, _parent: u64) {}

/// Does nothing; always returns [`NO_WORKER`].
#[inline(always)]
pub fn set_trace_worker(_worker: u32) -> u32 {
    NO_WORKER
}

/// Always [`NO_WORKER`].
#[inline(always)]
#[must_use]
pub fn trace_worker() -> u32 {
    NO_WORKER
}

/// Does nothing.
#[inline(always)]
pub fn trace_instant(_name: &'static str, _segment: u32, _rung: RungKind, _payload: TracePayload) {}

/// An inert guard; nothing is recorded on creation or drop.
#[inline(always)]
#[must_use]
pub fn trace_span_scope(_name: &'static str, _segment: u32, _payload: TracePayload) -> TraceScope {
    TraceScope
}

/// RAII trace span (no-op build: a unit struct whose drop is empty).
#[derive(Debug)]
pub struct TraceScope;

/// Does nothing.
#[inline(always)]
pub fn flush_thread_trace() {}

/// Always empty.
#[inline(always)]
#[must_use]
pub fn take_trace() -> Vec<TraceEvent> {
    Vec::new()
}

/// Always empty.
#[inline(always)]
#[must_use]
pub fn snapshot_trace() -> Vec<TraceEvent> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_inert() {
        let reg = global();
        let c = reg.counter("x");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("g");
        g.set(3.5);
        assert!((g.get() - 0.0).abs() < 1e-12);
        let h = reg.histogram("h");
        h.record(7);
        h.record_n(4, 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(reg.snapshot().is_empty());
        assert!(!is_compiled());
        set_runtime_enabled(true);
        assert!(!runtime_enabled());
        set_trace_spans(true);
        {
            let _t = span("work");
        }
        assert!(take_spans().is_empty());
        set_trace_enabled(true);
        assert!(!trace_enabled());
        assert_eq!(begin_trace(), 0);
        assert_eq!(current_trace(), 0);
        assert_eq!(trace_context(), (0, 0));
        set_trace_context(7, 9);
        assert_eq!(set_trace_worker(3), NO_WORKER);
        assert_eq!(trace_worker(), NO_WORKER);
        trace_instant("x", 0, RungKind::Strict, TracePayload::None);
        {
            let _s = trace_span_scope("x", 0, TracePayload::None);
        }
        flush_thread_trace();
        assert!(take_trace().is_empty());
        assert!(snapshot_trace().is_empty());
        reg.reset();
    }
}

//! # `ninec-obs` — zero-external-dependency telemetry for the ninec workspace
//!
//! The paper's claims are quantitative (Table I codeword accounting,
//! Table IV cross-codec ratios, decoder cycle costs), so every hot path
//! in the workspace should be self-reporting. This crate is the substrate:
//!
//! - [`Counter`] / [`Gauge`] — lock-free atomics behind `Arc` handles;
//! - [`Histogram`] — fixed 65-bucket log2 histogram (`0`, `[1,1]`,
//!   `[2,3]`, …, up to `u64::MAX`) with count/sum/min/max;
//! - [`SpanTimer`] — RAII monotonic-clock timer with per-thread nesting
//!   depth, feeding a `span.<name>.ns` histogram and an optional ordered
//!   trace buffer ([`set_trace_spans`] / [`take_spans`]);
//! - the **flight recorder** ([`trace`] module) — bounded per-thread
//!   ring buffers of typed [`TraceEvent`]s ([`trace_span_scope`] /
//!   [`trace_instant`] / [`take_trace`]) with Chrome trace-event and
//!   JSON-lines renderers;
//! - [`Registry`] — named get-or-register metric handles, with a
//!   process-wide instance at [`global()`];
//! - [`export::Snapshot`] — a decoupled point-in-time copy with
//!   Prometheus-text and JSON renderers.
//!
//! ## Feature story
//!
//! The default-on `enabled` feature selects the real implementation.
//! With `--no-default-features` every type degenerates to a unit struct
//! and every operation to an inlined empty body — call sites need no
//! `cfg` guards, and the optimizer removes the instrumentation from the
//! data plane entirely ([`is_compiled`] reports which build you got).
//! [`export`] is compiled in both builds so exporters and golden tests
//! are feature-independent.
//!
//! On top of the compile-time switch there is a *runtime* kill switch,
//! [`set_runtime_enabled`]: benchmarks flip it to measure the
//! obs-on vs obs-off delta inside a single binary.
//!
//! ## Example
//!
//! ```
//! use ninec_obs as obs;
//!
//! let hits = obs::counter("ninec.encode.case.C1");
//! hits.add(3);
//! let h = obs::histogram("ninec.encode.codeword_bits");
//! h.record(2);
//! h.record(7);
//! {
//!     let _t = obs::span("encode");
//!     // ... timed work ...
//! }
//! let snap = obs::snapshot();
//! # #[cfg(feature = "enabled")]
//! assert_eq!(snap.counter("ninec.encode.case.C1"), Some(3));
//! let _text = snap.render_prometheus();
//! let _json = snap.render_json();
//! ```
//!
//! (With the feature disabled the snapshot is empty and the renderers
//! produce valid empty documents — the example compiles either way.)

#![warn(missing_docs)]

pub mod export;
pub mod trace;

#[cfg(feature = "enabled")]
mod live;
#[cfg(feature = "enabled")]
pub use live::{
    begin_trace, current_trace, flush_thread_trace, global, is_compiled, runtime_enabled,
    set_runtime_enabled, set_trace_context, set_trace_enabled, set_trace_spans, set_trace_worker,
    snapshot_trace, span, take_spans, take_trace, trace_context, trace_enabled, trace_instant,
    trace_span_scope, trace_worker, Counter, Gauge, Histogram, Registry, SpanEvent, SpanTimer,
    TraceScope,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    begin_trace, current_trace, flush_thread_trace, global, is_compiled, runtime_enabled,
    set_runtime_enabled, set_trace_context, set_trace_enabled, set_trace_spans, set_trace_worker,
    snapshot_trace, span, take_spans, take_trace, trace_context, trace_enabled, trace_instant,
    trace_span_scope, trace_worker, Counter, Gauge, Histogram, Registry, SpanEvent, SpanTimer,
    TraceScope,
};

pub use export::{HistogramSnapshot, Snapshot};
pub use trace::{
    normalize_trace, render_chrome_trace, render_jsonl, EventKind, RungKind, TraceEvent,
    TracePayload, GLOBAL_RING_CAPACITY, NO_SEGMENT, NO_WORKER, THREAD_RING_CAPACITY,
};

/// Get-or-register the counter `name` on the [`global()`] registry.
#[inline]
#[must_use]
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Get-or-register the gauge `name` on the [`global()`] registry.
#[inline]
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Get-or-register the histogram `name` on the [`global()`] registry.
#[inline]
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// A point-in-time [`Snapshot`] of the [`global()`] registry.
#[inline]
#[must_use]
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clear every metric in the [`global()`] registry (handles stay valid).
#[inline]
pub fn reset() {
    global().reset();
}

//! The real (feature `enabled`) metric implementation: lock-free atomic
//! cells behind cloneable handles, registered in a named [`Registry`].
//!
//! Handles are cheap `Arc`s onto the shared atomic state; the registry
//! mutex is touched only at registration/snapshot time, never on the hot
//! path. All updates use relaxed ordering — metrics need totals, not
//! ordering, and a [`Registry::snapshot`] sees every update that
//! happened-before it via the mutex acquire.

use crate::export::{bucket_index, bucket_upper, HistogramSnapshot, Snapshot, BUCKETS};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing atomic counter handle.
///
/// Clones share the same cell; updates are wait-free.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    /// `0` while empty (disambiguated by `count`).
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket log2 histogram handle (65 buckets covering all of
/// `u64`; see [`crate::export::bucket_index`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` in one update — how per-case
    /// codeword-length distributions are flushed in bulk.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let core = &*self.0;
        // min/max/sum land before the bucket: any sample a concurrent
        // snapshot counts via the bucket array is already reflected in
        // the order statistics it reads afterwards.
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
        core.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        core.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        core.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Smallest observation, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.min.load(Ordering::Relaxed))
        }
    }

    /// Largest observation, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.max.load(Ordering::Relaxed))
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // One pass over the bucket atomics, with the total *derived from
        // those same reads*: a concurrent record_n may land between two
        // loads, but `count == Σ bucket counts` holds for whatever this
        // pass observed, so the exported document is always internally
        // consistent (the Prometheus `+Inf` bucket equals `_count`).
        let mut count = 0u64;
        let mut buckets = Vec::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((bucket_upper(i), n));
            }
        }
        let (min, max) = if count == 0 {
            (None, None)
        } else {
            (
                Some(self.0.min.load(Ordering::Relaxed)),
                Some(self.0.max.load(Ordering::Relaxed)),
            )
        };
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            min,
            max,
            buckets,
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A named metric registry.
///
/// `Registry::new()` is `const`, so registries can live in statics; the
/// process-wide default is [`global`]. Handle lookups lock a mutex —
/// resolve handles once (e.g. in a `OnceLock`) on hot paths.
#[derive(Debug, Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))) {
            Slot::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.slot(name, || {
            Slot::Histogram(Histogram(Arc::new(HistogramCore::new())))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().expect("registry poisoned");
        slots.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Copies every metric into a [`Snapshot`], sorted by name.
    ///
    /// The cell handles are collected under the registry lock and then
    /// read outside it: the snapshot is one point-in-time pass over a
    /// fixed set of cells, never blocked by (or blocking) concurrent
    /// registrations, and each histogram renders internally consistent
    /// even while writers are recording.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let cells: Vec<(String, Slot)> = {
            let slots = self.slots.lock().expect("registry poisoned");
            slots
                .iter()
                .map(|(name, slot)| (name.clone(), slot.clone()))
                .collect()
        };
        let mut snap = Snapshot::default();
        for (name, slot) in cells {
            match slot {
                Slot::Counter(c) => snap.counters.push((name, c.get())),
                Slot::Gauge(g) => snap.gauges.push((name, g.get())),
                Slot::Histogram(h) => snap.histograms.push((name, h.snapshot())),
            }
        }
        snap
    }

    /// Zeroes every metric, keeping registrations (and outstanding
    /// handles) alive.
    pub fn reset(&self) {
        let slots = self.slots.lock().expect("registry poisoned");
        for slot in slots.values() {
            match slot {
                Slot::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Slot::Gauge(g) => g.set(0.0),
                Slot::Histogram(h) => h.0.reset(),
            }
        }
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide default registry every `ninec` crate reports into.
#[must_use]
pub fn global() -> &'static Registry {
    &GLOBAL
}

static RUNTIME: AtomicBool = AtomicBool::new(true);

/// Runtime kill switch consulted by the instrumentation call sites
/// (flushes and span timers). Defaults to on; the `bench_core` binary
/// toggles it to measure the obs-on vs obs-off throughput delta without
/// a rebuild.
pub fn set_runtime_enabled(on: bool) {
    RUNTIME.store(on, Ordering::Relaxed);
}

/// Whether runtime collection is currently on (always `false` in the
/// no-op build).
#[must_use]
pub fn runtime_enabled() -> bool {
    RUNTIME.load(Ordering::Relaxed)
}

/// `true` when the crate was compiled with the `enabled` feature.
#[must_use]
pub const fn is_compiled() -> bool {
    true
}

// --- span timers -----------------------------------------------------

thread_local! {
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

static TRACING: AtomicBool = AtomicBool::new(false);
static SPAN_SEQ: AtomicU64 = AtomicU64::new(0);
static SPAN_TRACE: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

/// One completed span, captured when span tracing is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Start order across the process (pre-order for nested spans).
    pub seq: u64,
    /// Span name as passed to [`span`].
    pub name: &'static str,
    /// Nesting depth on the opening thread at start time.
    pub depth: usize,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// Turns span-event capture on or off (duration histograms are always
/// recorded while [`runtime_enabled`]); the CLI's `--trace-spans` flag
/// sets this.
pub fn set_trace_spans(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Drains and returns the captured span events in start order.
#[must_use]
pub fn take_spans() -> Vec<SpanEvent> {
    let mut spans = std::mem::take(&mut *SPAN_TRACE.lock().expect("span trace poisoned"));
    spans.sort_by_key(|s| s.seq);
    spans
}

/// An RAII span timer over the monotonic clock.
///
/// Created by [`span`]; on drop it records its wall-clock duration into
/// the global histogram `span.<name>.ns` and, when tracing is on,
/// captures a [`SpanEvent`] with its nesting depth. Timers nest per
/// thread: a span opened while another is live records one level deeper.
#[derive(Debug)]
pub struct SpanTimer {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    start: Instant,
    depth: usize,
    seq: u64,
    hist: Histogram,
}

/// Opens a span named `name` on the global registry. Inert (and free)
/// when [`runtime_enabled`] is off.
#[must_use]
pub fn span(name: &'static str) -> SpanTimer {
    if !runtime_enabled() {
        return SpanTimer { inner: None };
    }
    let depth = SPAN_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanTimer {
        inner: Some(SpanInner {
            name,
            start: Instant::now(),
            depth,
            seq: SPAN_SEQ.fetch_add(1, Ordering::Relaxed),
            hist: global().histogram(&format!("span.{name}.ns")),
        }),
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let nanos = inner.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        inner.hist.record(nanos);
        if TRACING.load(Ordering::Relaxed) {
            SPAN_TRACE
                .lock()
                .expect("span trace poisoned")
                .push(SpanEvent {
                    seq: inner.seq,
                    name: inner.name,
                    depth: inner.depth,
                    nanos,
                });
        }
    }
}

// --- flight recorder -------------------------------------------------

use crate::trace::{
    EventKind, RungKind, TraceEvent, TracePayload, GLOBAL_RING_CAPACITY, NO_WORKER,
    THREAD_RING_CAPACITY,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// A bounded oldest-first-evicting event buffer.
#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    cap: usize,
}

impl Ring {
    const fn new(cap: usize) -> Self {
        Self {
            buf: VecDeque::new(),
            cap,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
    }

    fn merge_from(&mut self, other: &mut VecDeque<TraceEvent>) {
        for ev in other.drain(..) {
            self.push(ev);
        }
    }
}

static TRACE_ON: AtomicBool = AtomicBool::new(true);
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);
static TRACE_IDS: AtomicU64 = AtomicU64::new(0);
static SPAN_IDS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_TRACE: Mutex<Ring> = Mutex::new(Ring::new(GLOBAL_RING_CAPACITY));

/// Locks the global ring, recovering from poison: the recorder is the
/// one thing that must keep working while a worker panic unwinds.
fn global_ring() -> std::sync::MutexGuard<'static, Ring> {
    match GLOBAL_TRACE.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Per-thread trace context: which trace the thread is contributing to,
/// which engine worker it is, and the open-span stack for parenting.
#[derive(Debug)]
struct TraceCtx {
    trace: u64,
    worker: u32,
    inherited_parent: u64,
    stack: Vec<u64>,
}

/// Thread-local ring wrapper whose drop drains into the global ring, so
/// a pool worker's timeline survives its (scoped) thread exiting.
struct LocalRing(RefCell<Ring>);

impl Drop for LocalRing {
    fn drop(&mut self) {
        let mut local = self.0.borrow_mut();
        if !local.buf.is_empty() {
            global_ring().merge_from(&mut local.buf);
        }
    }
}

thread_local! {
    static LOCAL_TRACE: LocalRing =
        const { LocalRing(RefCell::new(Ring::new(THREAD_RING_CAPACITY))) };
    static TRACE_CTX: RefCell<TraceCtx> = const {
        RefCell::new(TraceCtx {
            trace: 0,
            worker: NO_WORKER,
            inherited_parent: 0,
            stack: Vec::new(),
        })
    };
}

/// Flight-recorder kill switch, independent of the metrics switch but
/// also gated by it: events are recorded only while *both*
/// [`runtime_enabled`] and this switch are on. Defaults to on — the
/// recorder is always-on at bounded memory; `bench_core` flips this to
/// measure recorder-on vs recorder-off throughput in one binary.
pub fn set_trace_enabled(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is currently capturing events (always
/// `false` in the no-op build).
#[must_use]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed) && runtime_enabled()
}

/// Starts a new trace on the calling thread and returns its id (ids
/// start at 1; `0` means "outside any trace"). Subsequent events on
/// this thread — and on engine workers that inherit the context via
/// [`set_trace_context`] — are stamped with the id, so one decode's
/// timeline can be filtered out of the shared recorder.
pub fn begin_trace() -> u64 {
    let id = TRACE_IDS.fetch_add(1, Ordering::Relaxed) + 1;
    TRACE_CTX.with(|c| c.borrow_mut().trace = id);
    id
}

/// The trace id the calling thread is currently contributing to.
#[must_use]
pub fn current_trace() -> u64 {
    TRACE_CTX.with(|c| c.borrow().trace)
}

/// `(trace id, enclosing span id)` on the calling thread — captured by
/// the executor before spawning workers so their events nest under the
/// submitting span.
#[must_use]
pub fn trace_context() -> (u64, u64) {
    TRACE_CTX.with(|c| {
        let ctx = c.borrow();
        let parent = ctx.stack.last().copied().unwrap_or(ctx.inherited_parent);
        (ctx.trace, parent)
    })
}

/// Adopts a trace context captured by [`trace_context`] on another
/// thread: events recorded here now carry `trace` and parent under
/// `parent` (until a local span opens deeper).
pub fn set_trace_context(trace: u64, parent: u64) {
    TRACE_CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        ctx.trace = trace;
        ctx.inherited_parent = parent;
    });
}

/// Stamps the calling thread as engine worker `worker` ([`NO_WORKER`]
/// to clear). Returns the previous value so callers can restore it —
/// the serial executor fallback runs on the caller's thread.
pub fn set_trace_worker(worker: u32) -> u32 {
    TRACE_CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        std::mem::replace(&mut ctx.worker, worker)
    })
}

/// The engine worker id stamped on the calling thread, [`NO_WORKER`]
/// when outside the pool.
#[must_use]
pub fn trace_worker() -> u32 {
    TRACE_CTX.with(|c| c.borrow().worker)
}

fn record_event(
    kind: EventKind,
    name: &'static str,
    span: u64,
    parent: u64,
    segment: u32,
    rung: RungKind,
    payload: TracePayload,
) {
    let (trace, worker) = TRACE_CTX.with(|c| {
        let ctx = c.borrow();
        (ctx.trace, ctx.worker)
    });
    let ev = TraceEvent {
        seq: TRACE_SEQ.fetch_add(1, Ordering::Relaxed),
        nanos: trace_epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        kind,
        name,
        trace,
        span,
        parent,
        worker,
        segment,
        rung,
        payload,
    };
    LOCAL_TRACE.with(|l| l.0.borrow_mut().push(ev));
}

/// Records a point-in-time event on the calling thread's ring. Inert
/// while [`trace_enabled`] is off.
pub fn trace_instant(name: &'static str, segment: u32, rung: RungKind, payload: TracePayload) {
    if !trace_enabled() {
        return;
    }
    let parent = TRACE_CTX.with(|c| {
        let ctx = c.borrow();
        ctx.stack.last().copied().unwrap_or(ctx.inherited_parent)
    });
    record_event(EventKind::Instant, name, 0, parent, segment, rung, payload);
}

/// An RAII trace span: records `SpanStart` on creation and the matching
/// `SpanEnd` on drop. Inert when created while [`trace_enabled`] is off.
#[derive(Debug)]
pub struct TraceScope {
    inner: Option<ScopeInner>,
}

#[derive(Debug)]
struct ScopeInner {
    name: &'static str,
    span: u64,
    parent: u64,
    segment: u32,
}

/// Opens a trace span named `name` (segment-scoped when `segment` is
/// not [`NO_SEGMENT`](crate::trace::NO_SEGMENT)); the returned guard
/// records the `SpanEnd` when
/// dropped. Spans nest per thread: the innermost open span is the
/// parent of anything recorded under it.
#[must_use]
pub fn trace_span_scope(name: &'static str, segment: u32, payload: TracePayload) -> TraceScope {
    if !trace_enabled() {
        return TraceScope { inner: None };
    }
    let span = SPAN_IDS.fetch_add(1, Ordering::Relaxed) + 1;
    let parent = TRACE_CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        let parent = ctx.stack.last().copied().unwrap_or(ctx.inherited_parent);
        ctx.stack.push(span);
        parent
    });
    record_event(
        EventKind::SpanStart,
        name,
        span,
        parent,
        segment,
        RungKind::None,
        payload,
    );
    TraceScope {
        inner: Some(ScopeInner {
            name,
            span,
            parent,
            segment,
        }),
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        TRACE_CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            // LIFO in practice; tolerate out-of-order drops anyway.
            if ctx.stack.last() == Some(&inner.span) {
                ctx.stack.pop();
            } else if let Some(at) = ctx.stack.iter().rposition(|&s| s == inner.span) {
                ctx.stack.remove(at);
            }
        });
        // The end is recorded even if the kill switch flipped mid-span,
        // so every recorded SpanStart has its matching SpanEnd.
        record_event(
            EventKind::SpanEnd,
            inner.name,
            inner.span,
            inner.parent,
            inner.segment,
            RungKind::None,
            TracePayload::None,
        );
    }
}

/// Drains the calling thread's ring into the global one. Called
/// automatically on thread exit and by the engine on decode errors,
/// worker panics and partial salvage, so the recorder holds the
/// interesting tail when something goes wrong.
pub fn flush_thread_trace() {
    LOCAL_TRACE.with(|l| {
        let mut local = l.0.borrow_mut();
        if !local.buf.is_empty() {
            global_ring().merge_from(&mut local.buf);
        }
    });
}

/// Flushes the calling thread and drains the global ring, returning
/// every retained event in record order.
#[must_use]
pub fn take_trace() -> Vec<TraceEvent> {
    flush_thread_trace();
    let mut events: Vec<TraceEvent> = {
        let mut ring = global_ring();
        ring.buf.drain(..).collect()
    };
    events.sort_by_key(|e| e.seq);
    events
}

/// A non-draining copy of every retained event (global ring plus the
/// calling thread's ring), in record order.
#[must_use]
pub fn snapshot_trace() -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = global_ring().buf.iter().copied().collect();
    LOCAL_TRACE.with(|l| events.extend(l.0.borrow().buf.iter().copied()));
    events.sort_by_key(|e| e.seq);
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("c").get(), 5); // same cell via name
        let g = reg.gauge("g");
        g.set(2.25);
        assert_eq!(reg.gauge("g").get(), 2.25);
    }

    #[test]
    fn histogram_stats() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.record(0);
        h.record(3);
        h.record_n(5, 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(5));
        assert!((h.mean() - 3.25).abs() < 1e-12);
        let snap = h.snapshot();
        // 0 -> bucket 0 (le 0); 3 -> bucket 2 (le 3); 5,5 -> bucket 3 (le 7).
        assert_eq!(snap.buckets, vec![(0, 1), (3, 1), (7, 2)]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn reset_keeps_handles_live() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn spans_nest_and_record() {
        set_trace_spans(true);
        let _ = take_spans(); // drain anything from other tests
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        let spans = take_spans();
        set_trace_spans(false);
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(outer.seq < inner.seq);
        assert!(global().histogram("span.test.outer.ns").count() >= 1);
    }

    #[test]
    fn runtime_switch_makes_spans_inert() {
        set_runtime_enabled(false);
        let before = global().histogram("span.test.off.ns").count();
        {
            let _s = span("test.off");
        }
        set_runtime_enabled(true);
        assert_eq!(global().histogram("span.test.off.ns").count(), before);
    }
}

//! Typed flight-recorder events and their exporters.
//!
//! A [`TraceEvent`] is one moment on a decode timeline: a span opening
//! or closing, or a point-in-time instant (a CRC verdict, an RS repair,
//! an X-erasure, a resync probe). Events carry the trace id they belong
//! to, their parent span, the worker that recorded them, the segment
//! they concern and, where known, the ladder rung that recovered that
//! segment — enough to reconstruct the Fig 4c per-decoder load picture
//! as a timeline instead of a histogram.
//!
//! Like [`crate::export`], this module is compiled in **both** builds
//! (the `enabled` feature only gates the recorder): renderers and their
//! golden tests are feature-independent, and with the feature off the
//! recorder simply never produces events.
//!
//! Two renderers are provided:
//!
//! - [`render_chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` and Perfetto (`B`/`E` duration events per span,
//!   `i` instants, one `tid` lane per worker);
//! - [`render_jsonl`] — one compact JSON object per line, for `grep`
//!   and downstream tooling.

use serde_json::Value;

/// Sentinel worker id for events recorded outside the engine pool.
pub const NO_WORKER: u32 = u32::MAX;

/// Sentinel segment index for events not tied to one segment.
pub const NO_SEGMENT: u32 = u32::MAX;

/// Capacity of each per-thread flight-recorder ring (events).
pub const THREAD_RING_CAPACITY: usize = 4096;

/// Capacity of the process-wide flight-recorder ring that per-thread
/// rings drain into (events).
pub const GLOBAL_RING_CAPACITY: usize = 16384;

/// What kind of moment a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in Chrome trace terms).
    SpanStart,
    /// A span closed (`ph: "E"`).
    SpanEnd,
    /// A point-in-time event (`ph: "i"`).
    Instant,
}

impl EventKind {
    /// The Chrome trace-event phase letter.
    #[must_use]
    pub fn chrome_phase(self) -> &'static str {
        match self {
            EventKind::SpanStart => "B",
            EventKind::SpanEnd => "E",
            EventKind::Instant => "i",
        }
    }

    /// Stable lower-snake name used in the JSON-lines dump.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "instant",
        }
    }
}

/// Which rung of the strict → repair → salvage ladder recovered a
/// segment, when the recording site knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RungKind {
    /// Not a per-rung event.
    None,
    /// Decoded from the wire bytes as written.
    Strict,
    /// Rebuilt from GF(256) parity before decoding.
    Repaired,
    /// Unrecoverable; its output span was X-erased.
    Salvaged,
}

impl RungKind {
    /// Stable lower-case name (`None` renders as `"-"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RungKind::None => "-",
            RungKind::Strict => "strict",
            RungKind::Repaired => "repaired",
            RungKind::Salvaged => "salvaged",
        }
    }
}

/// The small typed payload a recording site attaches to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePayload {
    /// No extra data.
    None,
    /// An executor job: its index, priority class and whether the
    /// running worker stole it from a sibling's queue.
    Job {
        /// Job index in the submission order.
        index: u32,
        /// `true` for high-priority jobs.
        high: bool,
        /// `true` when the job was stolen rather than popped locally.
        stolen: bool,
    },
    /// A segment CRC verdict from the frame walker.
    Crc {
        /// Whether the stored CRC matched the recomputed one.
        ok: bool,
        /// The (untrusted) `source_trits` claim from the segment header.
        claimed_trits: u32,
    },
    /// A resync scan across damaged bytes.
    Resync {
        /// Byte offset the scan started from.
        from: u32,
        /// Byte offset of the next parseable boundary (frame end if none).
        to: u32,
    },
    /// An RS parity reconstruction.
    Repair {
        /// Interleaved parity group the segment belongs to.
        group: u32,
        /// Number of parity shards consumed by the reconstruction.
        parity_used: u32,
    },
    /// An X-erasure covering a damaged segment's output span.
    Erase {
        /// Number of trits filled with `X`.
        trits: u32,
    },
    /// A parity-group-scoped event (e.g. one repair-group job).
    Group {
        /// Interleaved parity group index.
        group: u32,
    },
}

/// One recorded flight-recorder event.
///
/// `Copy` on purpose: ring buffers shuffle these around without
/// allocation, and the payload is a few machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process-wide record order (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch.
    pub nanos: u64,
    /// Span start/end or instant.
    pub kind: EventKind,
    /// Static site name (`"job"`, `"segment_decode"`, `"rung"`, …).
    pub name: &'static str,
    /// Trace id from [`begin_trace`](crate::begin_trace); `0` when the
    /// event fell outside any explicit trace.
    pub trace: u64,
    /// Span id (`0` for instants).
    pub span: u64,
    /// Enclosing span id (`0` for roots).
    pub parent: u64,
    /// Engine worker that recorded the event, [`NO_WORKER`] outside the
    /// pool.
    pub worker: u32,
    /// Segment index the event concerns, [`NO_SEGMENT`] when none.
    pub segment: u32,
    /// Ladder rung, when the site knows it ([`RungKind::None`] otherwise).
    pub rung: RungKind,
    /// Typed payload.
    pub payload: TracePayload,
}

impl TraceEvent {
    /// The Chrome trace `tid` lane: worker `w` maps to lane `w + 1`,
    /// events recorded outside the pool to lane `0`.
    #[must_use]
    pub fn chrome_tid(&self) -> u64 {
        if self.worker == NO_WORKER {
            0
        } else {
            u64::from(self.worker) + 1
        }
    }
}

fn payload_fields(payload: &TracePayload, out: &mut Vec<(String, Value)>) {
    match *payload {
        TracePayload::None => {}
        TracePayload::Job {
            index,
            high,
            stolen,
        } => {
            out.push(("job".to_owned(), serde_json::json!(index)));
            out.push(("high".to_owned(), serde_json::json!(high)));
            out.push(("stolen".to_owned(), serde_json::json!(stolen)));
        }
        TracePayload::Crc { ok, claimed_trits } => {
            out.push(("crc_ok".to_owned(), serde_json::json!(ok)));
            out.push(("claimed_trits".to_owned(), serde_json::json!(claimed_trits)));
        }
        TracePayload::Resync { from, to } => {
            out.push(("from".to_owned(), serde_json::json!(from)));
            out.push(("to".to_owned(), serde_json::json!(to)));
        }
        TracePayload::Repair { group, parity_used } => {
            out.push(("group".to_owned(), serde_json::json!(group)));
            out.push(("parity_used".to_owned(), serde_json::json!(parity_used)));
        }
        TracePayload::Erase { trits } => {
            out.push(("trits".to_owned(), serde_json::json!(trits)));
        }
        TracePayload::Group { group } => {
            out.push(("group".to_owned(), serde_json::json!(group)));
        }
    }
}

fn common_fields(ev: &TraceEvent, out: &mut Vec<(String, Value)>) {
    out.push(("seq".to_owned(), serde_json::json!(ev.seq)));
    out.push(("trace".to_owned(), serde_json::json!(ev.trace)));
    if ev.span != 0 {
        out.push(("span".to_owned(), serde_json::json!(ev.span)));
    }
    if ev.parent != 0 {
        out.push(("parent".to_owned(), serde_json::json!(ev.parent)));
    }
    if ev.worker != NO_WORKER {
        out.push(("worker".to_owned(), serde_json::json!(ev.worker)));
    }
    if ev.segment != NO_SEGMENT {
        out.push(("segment".to_owned(), serde_json::json!(ev.segment)));
    }
    if ev.rung != RungKind::None {
        out.push(("rung".to_owned(), serde_json::json!(ev.rung.label())));
    }
    payload_fields(&ev.payload, out);
}

fn chrome_event(ev: &TraceEvent) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("name".to_owned(), serde_json::json!(ev.name)),
        ("cat".to_owned(), serde_json::json!("ninec")),
        ("ph".to_owned(), serde_json::json!(ev.kind.chrome_phase())),
        ("ts".to_owned(), serde_json::json!(ev.nanos as f64 / 1000.0)),
        ("pid".to_owned(), serde_json::json!(1u64)),
        ("tid".to_owned(), serde_json::json!(ev.chrome_tid())),
    ];
    if ev.kind == EventKind::Instant {
        // Thread-scoped instant: renders as a tick on the worker's lane.
        fields.push(("s".to_owned(), serde_json::json!("t")));
    }
    let mut args: Vec<(String, Value)> = Vec::new();
    common_fields(ev, &mut args);
    fields.push(("args".to_owned(), Value::Object(args)));
    Value::Object(fields)
}

/// Renders events as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto. Spans become `B`/`E` duration events, instants become
/// thread-scoped `i` events; each engine worker gets its own `tid`
/// lane ([`TraceEvent::chrome_tid`]).
#[must_use]
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let rendered: Vec<Value> = events.iter().map(chrome_event).collect();
    let doc = Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(rendered)),
        ("displayTimeUnit".to_owned(), serde_json::json!("ns")),
    ]);
    serde_json::to_string_pretty(&doc).expect("trace JSON cannot fail")
}

/// Renders events as compact JSON lines, one event per line:
/// `{"seq": …, "ns": …, "kind": "span_start", "name": …, …}`.
#[must_use]
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let mut fields: Vec<(String, Value)> = vec![
            ("ns".to_owned(), serde_json::json!(ev.nanos)),
            ("kind".to_owned(), serde_json::json!(ev.kind.label())),
            ("name".to_owned(), serde_json::json!(ev.name)),
        ];
        common_fields(ev, &mut fields);
        out.push_str(
            &serde_json::to_string(&Value::Object(fields)).expect("trace JSON cannot fail"),
        );
        out.push('\n');
    }
    out
}

/// Rewrites recorder-assigned coordinates into deterministic ones so a
/// fixed decode renders byte-identically across runs: events are sorted
/// by `seq` then renumbered `0, 1, 2, …`, timestamps become
/// `seq × 1000` ns, and trace/span ids are renumbered in order of first
/// appearance (`0` stays `0`). Golden tests call this before rendering.
pub fn normalize_trace(events: &mut [TraceEvent]) {
    fn remap(ids: &mut Vec<u64>, id: u64) -> u64 {
        if id == 0 {
            return 0;
        }
        match ids.iter().position(|&x| x == id) {
            Some(i) => i as u64 + 1,
            None => {
                ids.push(id);
                ids.len() as u64
            }
        }
    }
    events.sort_by_key(|e| e.seq);
    let mut traces: Vec<u64> = Vec::new();
    let mut spans: Vec<u64> = Vec::new();
    for (i, ev) in events.iter_mut().enumerate() {
        ev.seq = i as u64;
        ev.nanos = i as u64 * 1000;
        ev.trace = remap(&mut traces, ev.trace);
        ev.span = remap(&mut spans, ev.span);
        ev.parent = remap(&mut spans, ev.parent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: EventKind, span: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            seq,
            nanos: seq * 7919,
            kind,
            name: "t",
            trace: 42,
            span,
            parent,
            worker: NO_WORKER,
            segment: NO_SEGMENT,
            rung: RungKind::None,
            payload: TracePayload::None,
        }
    }

    #[test]
    fn chrome_document_shape() {
        let events = [
            TraceEvent {
                worker: 2,
                segment: 5,
                rung: RungKind::Repaired,
                payload: TracePayload::Repair {
                    group: 1,
                    parity_used: 1,
                },
                ..ev(3, EventKind::Instant, 0, 0)
            },
            ev(4, EventKind::SpanStart, 9, 0),
            ev(5, EventKind::SpanEnd, 9, 0),
        ];
        let doc = serde_json::from_str(&render_chrome_trace(&events)).unwrap();
        let list = doc["traceEvents"].as_array().unwrap();
        assert_eq!(list.len(), 3);
        assert_eq!(list[0]["ph"].as_str(), Some("i"));
        assert_eq!(list[0]["tid"].as_u64(), Some(3)); // worker 2 -> lane 3
        assert_eq!(list[0]["args"]["rung"].as_str(), Some("repaired"));
        assert_eq!(list[0]["args"]["segment"].as_u64(), Some(5));
        assert_eq!(list[0]["args"]["parity_used"].as_u64(), Some(1));
        assert_eq!(list[1]["ph"].as_str(), Some("B"));
        assert_eq!(list[1]["tid"].as_u64(), Some(0)); // NO_WORKER -> lane 0
        assert_eq!(list[2]["ph"].as_str(), Some("E"));
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let events = [
            ev(1, EventKind::SpanStart, 4, 0),
            ev(2, EventKind::SpanEnd, 4, 0),
        ];
        let text = render_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = serde_json::from_str(line).unwrap();
            assert_eq!(v["trace"].as_u64(), Some(42));
            assert_eq!(v["span"].as_u64(), Some(4));
        }
    }

    #[test]
    fn normalize_is_deterministic_and_order_preserving() {
        let mut events = vec![
            ev(100, EventKind::SpanStart, 77, 0),
            ev(90, EventKind::Instant, 0, 77),
            ev(110, EventKind::SpanEnd, 77, 0),
        ];
        normalize_trace(&mut events);
        // Sorted by original seq, renumbered from zero.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].kind, EventKind::Instant);
        assert_eq!(events[1].nanos, 1000);
        // Span 77 was renumbered consistently everywhere it appears.
        assert_eq!(events[0].parent, 1);
        assert_eq!(events[1].span, 1);
        assert_eq!(events[2].span, 1);
        assert_eq!(events[0].trace, 1);
    }
}

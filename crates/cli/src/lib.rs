//! Library backing the `ninec` command-line tool.
//!
//! Subcommands (see [`run`]):
//!
//! - `compress <in.cubes> -o <out.te>` — 9C-compress a cube file;
//! - `decompress <in.te> -o <out.cubes>` — expand back to scan data;
//! - `info <file>` — statistics of a cube or `.te` file;
//! - `generate <profile> -o <out.cubes>` — synthetic benchmark test sets;
//! - `atpg <netlist.bench> -o <out.cubes>` — run PODEM on a netlist;
//! - `compare <in.cubes>` — CR of 9C and every baseline code side by side;
//! - `rtl -o <decoder.v> [--tb]` — emit the synthesizable decoder, and
//!   optionally a self-checking testbench generated from the reference
//!   model.
//!
//! All commands are pure functions of their arguments plus the named
//! files, so the test suite drives [`run`] directly.

#![warn(missing_docs)]

pub mod format;

use format::TeFile;
use ninec::encode::Encoder;
use ninec::engine::{
    frame, Archive, ArchiveError, Engine, PlanEntry, Policy, ScrubMode, ScrubVerdict, SegmentRung,
};
use ninec::freqdir::encode_frequency_directed;
use ninec::session::DecodeSession;
use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_circuit::bench::parse_bench;
use ninec_decompressor::verilog::decoder_verilog;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::gen::{mintest_profile, SyntheticProfile};
use ninec_testdata::stats::TestSetStats;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::LazyLock;

/// CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Underlying operation failed.
    Failed(String),
    /// I/O failure.
    Io(std::io::Error),
    /// `decompress --salvage` recovered *some* but not all segments: the
    /// output file was written (damaged spans as `X` or their fill), and
    /// the message carries the damage map.
    PartialRecovery(String),
    /// A `client` request was refused by the codec service. The wire
    /// status byte doubles as the exit code: the serve statuses mirror
    /// the local contract (2/3/4/5), plus 6 busy / 7 rate-limited.
    Service {
        /// Wire status byte, reported verbatim as the exit code.
        code: u8,
        /// The server's error text (suffixed when it was degraded).
        message: String,
    },
}

impl CliError {
    /// Process exit code for this error class.
    ///
    /// Scripts can distinguish a bad invocation (2) from an operation
    /// that failed on valid arguments (3), an I/O problem (4), and a
    /// salvage decompress that wrote output but lost segments (5).
    /// Server refusals over the wire ([`CliError::Service`]) carry
    /// their status byte straight through — the serve protocol reuses
    /// this contract and extends it with 6 (busy) and 7 (rate-limited).
    /// The whole mapping is documented once, in [`EXIT_CODES`].
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failed(_) => 3,
            CliError::Io(_) => 4,
            CliError::PartialRecovery(_) => 5,
            // A wire status of 0 never reaches the error path; guard it
            // anyway so a confused server cannot make a failure exit 0.
            CliError::Service { code: 0, .. } => 3,
            CliError::Service { code, .. } => *code,
        }
    }

    /// Full structured report: the `ninec:`-prefixed headline plus one
    /// `  caused by:` line per link of the [`std::error::Error::source`]
    /// chain. This is what `main` prints to stderr.
    pub fn report(&self) -> String {
        use std::error::Error as _;
        let mut s = format!("ninec: {self}");
        let mut cause = self.source();
        while let Some(e) = cause {
            s.push_str(&format!("\n  caused by: {e}"));
            cause = e.source();
        }
        s
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{}", USAGE.as_str()),
            CliError::Failed(msg) => write!(f, "{msg}"),
            CliError::Io(_) => write!(f, "i/o error"),
            CliError::PartialRecovery(msg) => write!(f, "partial recovery: {msg}"),
            CliError::Service { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Usage(_)
            | CliError::Failed(_)
            | CliError::PartialRecovery(_)
            | CliError::Service { .. } => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// The exit-code contract, verbatim as `--help` prints it and the
/// README quotes it. One source: the help text is assembled from this
/// constant, and the doc-drift tests assert the README block and
/// [`CliError::exit_code`] agree with it character for character.
/// Codes 6–8 exist only on the `client` path — they are the serve
/// protocol's load-shedding refusals and its typed timeout, carried
/// through verbatim.
pub const EXIT_CODES: &str = "\
EXIT CODES:
    0   success — including damage fully repaired by parity or by scrub
    2   usage error (bad flags, arguments, or not a 9CSF/9CA container)
    3   operation failed on valid arguments (corrupt input, no output)
    4   i/o error
    5   partial recovery: --salvage wrote output but segments were lost,
        or scrub found damage beyond the parity budget
    6   server busy: the admission window or handler queue refused (client)
    7   tenant over its request-rate budget (client)
    8   deadline exceeded: the server cancelled the decode in time (client)
";

/// Usage text, assembled once on first use; the exit-code block is
/// [`EXIT_CODES`] verbatim.
pub static USAGE: LazyLock<String> = LazyLock::new(|| {
    format!(
        "\
ninec — nine-coded scan test-data compression (DATE 2004)

USAGE:
    ninec compress   <in.cubes> -o <out.te|out.9cf> [-k <even>=8]
                     [--fill zero|one|random|mt|keep] [--seed <n>] [--freq-directed]
                     [--threads <n>] [--segment-bits <n>] [--parity <g>:<r>]
                     [--verify]
    ninec decompress <in.te|in.9cf|-> -o <out.cubes> [--fill zero|one|random|mt|keep]
                     [--seed <n>] [--threads <n>] [--salvage] [--no-repair]
    ninec info       <file.cubes|file.te|file.9cf|file.9ca>
    ninec archive    <in.9cf>... -o <out.9ca> [--verify] [--threads <n>]
                     [--parity <g>:<r>] [--segment-bits <n>]
    ninec extract    <in.9ca> -o <out> [--frame <i>] [--range <start>:<len>]
                     [--verify]
    ninec scrub      <in.9ca> [--check]
    ninec generate   <s5378|s9234|s13207|s15850|s38417|s38584|custom:P,L,X%>
                     -o <out.cubes> [--seed <n>]
    ninec atpg       <netlist.bench> -o <out.cubes>
    ninec compare    <in.cubes> [-k <even>=8]
    ninec rtl        -o <decoder.v> [-k <even>=8] [--tb]
    ninec trace      <in.9cf> [--threads <n>] [--no-repair] [--json]
    ninec serve      [--addr <ip:port>] [--http-addr <ip:port>] [--no-http]
                     [--tenants <file>] [--handler-threads <n>] [--threads <n>]
                     [--max-inflight <n>] [--degrade-threshold <n>]
                     [--segment-bits <n>] [--parity <g>:<r>]
                     [--max-request-time-ms <n>] [--archive <file.9ca>]
    ninec client     <addr> ping|compress|decompress|info|range|metrics [<file>]
                     [-o <out>] [-k <even>=8] [--tenant <name>]
                     [--salvage] [--no-repair]
                     [--retries <n>] [--deadline-ms <n>]
                     [--frame <i>] [--range <start>:<len>]
    ninec chaos-proxy <upstream-addr> [--addr <ip:port>] [--delay-ms <n>]
                     [--throttle-bps <n>] [--torn-permille <n>]
                     [--blackhole-permille <n>] [--seed <n>]

PARALLEL ENGINE:
    --threads <n>       worker threads for the sharded codec engine
                        (default: NINEC_THREADS, else the machine's
                        available parallelism); output is byte-identical
                        at every thread count
    --segment-bits <n>  target segment size in source bits for the `9CSF`
                        frame container (default 1048576)
    An output path ending in `.9cf` selects the binary segment-frame
    container (parallel decode); anything else writes the textual `.te`
    format. `.9cf` frames always keep leftover don't-cares — bind them at
    decompress time with `--fill`. `decompress` sniffs the input format,
    and reads the frame from stdin when the input is `-` (bounded-memory
    streaming decode, so `cat big.9cf | ninec decompress -` works from a
    pipe).

REPAIR AND SALVAGE (binary `.9cf` frames):
    --parity <g>:<r>    protect every interleaved group of <g> data
                        segments with <r> GF(256) Reed-Solomon parity
                        segments (a v3 frame; up to <r> lost or corrupted
                        segments per group are rebuilt bit-exact at
                        decompress time). `--parity 1:1` duplicates every
                        segment; `0:0` (default) writes a plain v2 frame.
    `decompress` climbs a three-stage ladder: strict decode first; on
    damage it rebuilds what the parity budget covers (repair); whatever
    repair cannot rebuild is salvaged as don't-care spans when --salvage
    is given.
    --no-repair         skip the repair stage (strict, or strict-then-
                        salvage with --salvage)
    --salvage           keep going past unrepairable damage: CRC-valid
                        segments are recovered, damaged spans come back as
                        don't-cares (then `--fill` applies), and the damage
                        map goes to stderr.
    `info` on a `.9cf` frame prints the parity geometry and the
    per-segment decode plan — what each ladder rung will do with every
    slot, including the damage map — instead of failing on the first
    bad segment.
    `trace` replays a frame through the audited ladder and prints the
    per-frame audit trail: one line per segment naming the rung it
    resolved on (strict/repaired/salvaged), the worker that decoded it
    and the decode wall-clock (--json for a machine-readable document).
    Exit code 5 when segments were lost, like a --salvage decompress.

ARCHIVE & SCRUB (`.9ca` containers):
    `archive` appends `.9cf` frames to a durable `9CA` archive: segment
    blobs are content-addressed and deduplicated across frames, and
    every append commits a new CRC-protected index epoch by atomic
    rename — a crash at any byte leaves the previous epoch readable.
    `extract` reassembles a frame byte-exactly (--frame <i>, default 0),
    or decodes just a trit range via the seek index with
    --range <start>:<len> (O(segments touched), not O(archive)).
    `scrub` walks every stored blob's CRC and parity group: by default
    it rebuilds rotted blobs from parity and rewrites them in place
    under the same atomic-epoch discipline (exit 0 with a report);
    --check only reports. Damage beyond the parity budget exits 5.
    --verify re-reads what was just written (compress: re-decode the
    frame and compare bit-exactly; archive/extract: re-extract and
    re-decode) before exiting 0.

DECODE LIMITS (hostile inputs):
    --max-segments <n>  reject frames/archives claiming more segments
    --max-total-alloc <n>  cap total decode-buffer bytes
    Violations are typed failures (exit 3), never allocations.

SERVING:
    `serve` runs a multi-tenant codec service speaking a length-prefixed
    TCP protocol (compress / decode / info / repair) and prints the
    bound addresses on startup — bind port 0 for an ephemeral port.
    Per-tenant decode budgets and request rates come from the --tenants
    file: `[tenant.NAME]` sections with max_segments, max_segment_trits,
    max_total_alloc, max_resync_probes, rate (requests/s) and burst.
    Load is never buffered unbounded: past --max-inflight concurrent
    requests the server answers busy (exit 6 at the client); past
    --degrade-threshold it sheds repair/salvage work to strict-only and
    flags every answer degraded. --no-http disables the /metrics
    (Prometheus text) and /trace (Chrome trace JSON) exporter listener.
    `client` drives a running server: `ping` greets a tenant (--tenant),
    `compress <in.cubes> -o <out.9cf>` round-trips a cube file into a
    frame, `decompress <in.9cf> -o <out>` recovers the trit stream
    (--no-repair / --salvage pick the decode policy, like the local
    verb), `info <in.9cf>` prints the server's frame summary, `metrics`
    fetches the exporter text from the http address. Server refusals
    exit with the matching code below.

DEADLINES, RETRIES AND CHAOS:
    Requests are time-bounded from both sides. On the server,
    --max-request-time-ms caps any single decode (default 60000; 0
    disables): work past the cap is cancelled at the next segment
    boundary and answered with the deadline status (exit 8 at the
    client). On the client, --deadline-ms negotiates the wire's deadline
    capability at HELLO and sends that budget with every request; the
    effective deadline is the smaller of the two. --retries <n> retries
    transport errors, busy/rate-limit refusals and deadline timeouts
    with decorrelated-jitter backoff, reconnecting as needed — decode
    failures never retry. `chaos-proxy` runs the fault-injection TCP
    proxy from the test harness in front of <upstream-addr> (per-mille
    rates for torn writes and blackholed connections, plus fixed delay
    and byte-rate throttling) and prints its bound address; point
    `client` at it to rehearse failure handling end to end.

{EXIT_CODES}
GLOBAL FLAGS (any command):
    --stats text|json|prom
                        after the command succeeds, print the telemetry
                        registry (counters, gauges, histograms) in
                        Prometheus text exposition format (text or prom)
                        or as a JSON document
    --trace-spans       also print the span-timer trace (one line per
                        timed region, indented by nesting depth)
    --trace <file>      write the flight-recorder event trace to <file>
                        after the command (even when it fails): Chrome
                        trace-event JSON loadable in chrome://tracing or
                        Perfetto, or compact JSON-lines when <file> ends
                        in .jsonl
"
    )
});

/// Runs the CLI with `args` (without the program name), writing normal
/// output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments or failing operations.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let (args, global) = extract_global_opts(args)?;
    if global.trace_spans {
        ninec_obs::set_trace_spans(true);
    }
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError::Usage("no command".into()))?;
    let rest: Vec<String> = it.cloned().collect();
    let result = {
        // One span per invocation so `--trace-spans` shows the library
        // spans (encode_chunked, decode_stream, ...) nested under the
        // command that triggered them.
        let _span = ninec_obs::span(command_span_name(command));
        match command.as_str() {
            "compress" => compress(&rest, out),
            "decompress" => decompress(&rest, out),
            "info" => info(&rest, out),
            "archive" => archive_cmd(&rest, out),
            "extract" => extract_cmd(&rest, out),
            "scrub" => scrub_cmd(&rest, out),
            "generate" => generate(&rest, out),
            "atpg" => atpg(&rest, out),
            "compare" => compare(&rest, out),
            "rtl" => rtl(&rest, out),
            "trace" => trace_cmd(&rest, out),
            "serve" => serve(&rest, out),
            "client" => client(&rest, out),
            "chaos-proxy" => chaos_proxy(&rest, out),
            "help" | "--help" | "-h" => {
                writeln!(out, "{}", USAGE.as_str())?;
                Ok(())
            }
            other => Err(CliError::Usage(format!("unknown command {other:?}"))),
        }
    };
    if let Some(path) = &global.trace {
        // Drain the flight recorder to the file even when the command
        // failed — a failing decode is exactly when the timeline matters.
        let events = ninec_obs::take_trace();
        let doc = if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
            ninec_obs::render_jsonl(&events)
        } else {
            ninec_obs::render_chrome_trace(&events)
        };
        let wrote = fs::write(path, doc);
        if let (true, Err(e)) = (result.is_ok(), wrote) {
            return Err(CliError::Io(e));
        }
    }
    if global.trace_spans {
        // Drain even on error so a failed run doesn't leak events into
        // the next invocation of a long-lived process (e.g. the tests).
        let spans = ninec_obs::take_spans();
        ninec_obs::set_trace_spans(false);
        result?;
        writeln!(out, "# spans ({} events)", spans.len())?;
        for ev in &spans {
            writeln!(
                out,
                "{:>12} ns  {}{}",
                ev.nanos,
                "  ".repeat(ev.depth),
                ev.name
            )?;
        }
    } else {
        result?;
    }
    match global.stats {
        None => {}
        Some(StatsFormat::Text | StatsFormat::Prom) => {
            write!(out, "{}", ninec_obs::snapshot().render_prometheus())?;
        }
        Some(StatsFormat::Json) => writeln!(out, "{}", ninec_obs::snapshot().render_json())?,
    }
    Ok(())
}

/// Static span label for a command (span names are `&'static str`).
fn command_span_name(command: &str) -> &'static str {
    match command {
        "compress" => "cli_compress",
        "decompress" => "cli_decompress",
        "info" => "cli_info",
        "archive" => "cli_archive",
        "extract" => "cli_extract",
        "scrub" => "cli_scrub",
        "generate" => "cli_generate",
        "atpg" => "cli_atpg",
        "compare" => "cli_compare",
        "rtl" => "cli_rtl",
        "trace" => "cli_trace",
        "serve" => "cli_serve",
        "client" => "cli_client",
        "chaos-proxy" => "cli_chaos_proxy",
        _ => "cli",
    }
}

/// Output format for `--stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    Text,
    Json,
    Prom,
}

/// Global flags that apply to every command.
#[derive(Debug, Default)]
struct GlobalOpts {
    stats: Option<StatsFormat>,
    trace_spans: bool,
    trace: Option<PathBuf>,
}

/// Strips `--stats <fmt>`, `--trace-spans` and `--trace <file>` out of
/// `args` (they may appear anywhere on the line) and returns the
/// remaining arguments.
fn extract_global_opts(args: &[String]) -> Result<(Vec<String>, GlobalOpts), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut global = GlobalOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--stats needs text|json|prom".into()))?;
                global.stats = Some(match v.as_str() {
                    "text" => StatsFormat::Text,
                    "json" => StatsFormat::Json,
                    "prom" => StatsFormat::Prom,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--stats wants text, json or prom, got {other:?}"
                        )))
                    }
                });
            }
            "--trace-spans" => global.trace_spans = true,
            "--trace" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace needs a file path".into()))?;
                global.trace = Some(PathBuf::from(v));
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, global))
}

/// Parsed common options.
#[derive(Debug, Default)]
struct Opts {
    positional: Vec<String>,
    output: Option<PathBuf>,
    k: Option<usize>,
    fill: Option<String>,
    seed: u64,
    freq_directed: bool,
    testbench: bool,
    threads: Option<usize>,
    segment_bits: Option<usize>,
    salvage: bool,
    no_repair: bool,
    json: bool,
    parity: Option<(u8, u8)>,
    // `archive` / `extract` / `scrub` flags.
    verify: bool,
    check: bool,
    frame: Option<usize>,
    range: Option<(usize, usize)>,
    archive: Option<String>,
    // Decode-limit knobs (any decoding command).
    max_segments: Option<usize>,
    max_total_alloc: Option<usize>,
    // `serve` / `client` flags.
    addr: Option<String>,
    http_addr: Option<String>,
    no_http: bool,
    tenants: Option<PathBuf>,
    handler_threads: Option<usize>,
    max_inflight: Option<usize>,
    degrade_threshold: Option<usize>,
    tenant: Option<String>,
    max_request_time_ms: Option<u64>,
    deadline_ms: Option<u64>,
    retries: Option<u32>,
    // `chaos-proxy` flags.
    delay_ms: Option<u64>,
    throttle_bps: Option<usize>,
    torn_permille: Option<u16>,
    blackhole_permille: Option<u16>,
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut opts = Opts {
        seed: 1,
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("-o needs a path".into()))?;
                opts.output = Some(PathBuf::from(v));
            }
            "-k" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("-k needs a value".into()))?;
                opts.k = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad -k {v:?}")))?,
                );
            }
            "--fill" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--fill needs a value".into()))?;
                opts.fill = Some(v.clone());
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed needs a value".into()))?;
                opts.seed = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --seed {v:?}")))?;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --threads {v:?}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be >= 1".into()));
                }
                opts.threads = Some(n);
            }
            "--segment-bits" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--segment-bits needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --segment-bits {v:?}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--segment-bits must be >= 1".into()));
                }
                opts.segment_bits = Some(n);
            }
            "--parity" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--parity needs <g>:<r>".into()))?;
                let (g, r) = v
                    .split_once(':')
                    .ok_or_else(|| CliError::Usage(format!("--parity wants <g>:<r>, got {v:?}")))?;
                let g: u8 = g
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --parity group size {g:?}")))?;
                let r: u8 = r
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --parity shard count {r:?}")))?;
                if r > 0 && g == 0 {
                    return Err(CliError::Usage(
                        "--parity group size must be >= 1 when parity is on".into(),
                    ));
                }
                if g as usize + r as usize > 255 {
                    return Err(CliError::Usage(format!(
                        "--parity {g}:{r} exceeds the GF(256) shard budget (g + r <= 255)"
                    )));
                }
                opts.parity = Some((g, r));
            }
            "--addr" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--addr needs <ip:port>".into()))?;
                opts.addr = Some(v.clone());
            }
            "--http-addr" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--http-addr needs <ip:port>".into()))?;
                opts.http_addr = Some(v.clone());
            }
            "--no-http" => opts.no_http = true,
            "--tenants" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--tenants needs a file path".into()))?;
                opts.tenants = Some(PathBuf::from(v));
            }
            "--handler-threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--handler-threads needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --handler-threads {v:?}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--handler-threads must be >= 1".into()));
                }
                opts.handler_threads = Some(n);
            }
            "--max-inflight" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-inflight needs a value".into()))?;
                opts.max_inflight = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --max-inflight {v:?}")))?,
                );
            }
            "--degrade-threshold" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--degrade-threshold needs a value".into()))?;
                opts.degrade_threshold = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --degrade-threshold {v:?}")))?,
                );
            }
            "--tenant" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--tenant needs a name".into()))?;
                opts.tenant = Some(v.clone());
            }
            "--max-request-time-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-request-time-ms needs a value".into()))?;
                opts.max_request_time_ms =
                    Some(v.parse().map_err(|_| {
                        CliError::Usage(format!("bad --max-request-time-ms {v:?}"))
                    })?);
            }
            "--deadline-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--deadline-ms needs a value".into()))?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --deadline-ms {v:?}")))?;
                if ms == 0 {
                    return Err(CliError::Usage("--deadline-ms must be >= 1".into()));
                }
                opts.deadline_ms = Some(ms);
            }
            "--retries" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--retries needs a value".into()))?;
                opts.retries = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --retries {v:?}")))?,
                );
            }
            "--delay-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--delay-ms needs a value".into()))?;
                opts.delay_ms = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --delay-ms {v:?}")))?,
                );
            }
            "--throttle-bps" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--throttle-bps needs a value".into()))?;
                opts.throttle_bps = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --throttle-bps {v:?}")))?,
                );
            }
            "--torn-permille" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--torn-permille needs 0..=1000".into()))?;
                let n: u16 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --torn-permille {v:?}")))?;
                if n > 1000 {
                    return Err(CliError::Usage("--torn-permille is out of 1000".into()));
                }
                opts.torn_permille = Some(n);
            }
            "--blackhole-permille" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--blackhole-permille needs 0..=1000".into()))?;
                let n: u16 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --blackhole-permille {v:?}")))?;
                if n > 1000 {
                    return Err(CliError::Usage(
                        "--blackhole-permille is out of 1000".into(),
                    ));
                }
                opts.blackhole_permille = Some(n);
            }
            "--verify" => opts.verify = true,
            "--check" => opts.check = true,
            "--frame" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--frame needs an index".into()))?;
                opts.frame = Some(
                    v.parse()
                        .map_err(|_| CliError::Usage(format!("bad --frame {v:?}")))?,
                );
            }
            "--range" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--range needs <start>:<len>".into()))?;
                let (s, l) = v.split_once(':').ok_or_else(|| {
                    CliError::Usage(format!("--range wants <start>:<len>, got {v:?}"))
                })?;
                let start: usize = s
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --range start {s:?}")))?;
                let len: usize = l
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --range length {l:?}")))?;
                opts.range = Some((start, len));
            }
            "--archive" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--archive needs a .9ca path".into()))?;
                opts.archive = Some(v.clone());
            }
            "--max-segments" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-segments needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --max-segments {v:?}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--max-segments must be >= 1".into()));
                }
                opts.max_segments = Some(n);
            }
            "--max-total-alloc" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-total-alloc needs a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad --max-total-alloc {v:?}")))?;
                if n == 0 {
                    return Err(CliError::Usage("--max-total-alloc must be >= 1".into()));
                }
                opts.max_total_alloc = Some(n);
            }
            "--freq-directed" => opts.freq_directed = true,
            "--salvage" => opts.salvage = true,
            "--no-repair" => opts.no_repair = true,
            "--json" => opts.json = true,
            "--tb" | "--testbench" => opts.testbench = true,
            // A bare `-` is the stdin pseudo-path, not a flag.
            "-" => opts.positional.push(a.clone()),
            flag if flag.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")))
            }
            _ => opts.positional.push(a.clone()),
        }
    }
    Ok(opts)
}

/// `keep` leaves X in place; everything else is a concrete fill.
fn fill_strategy(opts: &Opts) -> Result<Option<FillStrategy>, CliError> {
    match opts.fill.as_deref() {
        None | Some("random") => Ok(Some(FillStrategy::Random { seed: opts.seed })),
        Some("zero") => Ok(Some(FillStrategy::Zero)),
        Some("one") => Ok(Some(FillStrategy::One)),
        Some("mt") | Some("min-transition") => Ok(Some(FillStrategy::MinTransition)),
        Some("keep") => Ok(None),
        Some(other) => Err(CliError::Usage(format!("unknown fill {other:?}"))),
    }
}

fn one_input(opts: &Opts) -> Result<&str, CliError> {
    match opts.positional.as_slice() {
        [one] => Ok(one),
        _ => Err(CliError::Usage("expected exactly one input file".into())),
    }
}

fn output(opts: &Opts) -> Result<&PathBuf, CliError> {
    opts.output
        .as_ref()
        .ok_or_else(|| CliError::Usage("missing -o <output>".into()))
}

/// Chunk size (in symbols) for the streaming compress/decompress paths —
/// peak codec state stays `O(STREAM_CHUNK + K)` regardless of input size.
const STREAM_CHUNK: usize = 4096;

/// True when `path` selects the binary `9CSF` segment-frame container.
fn wants_frame(path: &std::path::Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("9cf")
}

/// Builds the sharded engine from the CLI flags (paper code table).
fn engine_from_opts(opts: &Opts) -> Engine {
    let mut builder = Engine::builder();
    if let Some(threads) = opts.threads {
        builder = builder.threads(threads);
    }
    if let Some(bits) = opts.segment_bits {
        builder = builder.segment_bits(bits);
    }
    if let Some((g, r)) = opts.parity {
        builder = builder.parity(g, r);
    }
    if let Some(limits) = limits_from_opts(opts) {
        builder = builder.limits(limits);
    }
    builder.build()
}

/// Tightened hostile-input ceilings from `--max-segments` /
/// `--max-total-alloc`, or `None` when neither flag was given.
/// Violations surface as typed `LimitExceeded` failures (exit 3),
/// never as allocations.
fn limits_from_opts(opts: &Opts) -> Option<frame::DecodeLimits> {
    if opts.max_segments.is_none() && opts.max_total_alloc.is_none() {
        return None;
    }
    let mut limits = frame::DecodeLimits::default();
    if let Some(n) = opts.max_segments {
        limits.max_segments = n;
    }
    if let Some(n) = opts.max_total_alloc {
        limits.max_total_alloc = n;
    }
    Some(limits)
}

/// The `--verify` guard: re-decodes `frame_bytes` in-process and
/// compares the result against `expect`. Every care trit must survive
/// bit-exact; positions that were X in `expect` may come back bound
/// (the 9C code is free to fill them). Shared by `compress --verify`
/// (expect = the source stream) and the archive verbs (expect = the
/// decode of the frame that went in).
fn verify_frame_bytes(
    engine: &Engine,
    what: &str,
    frame_bytes: &[u8],
    expect: &ninec_testdata::trit::TritVec,
) -> Result<(), CliError> {
    let decoded = engine
        .decode_frame(frame_bytes)
        .map_err(|e| CliError::Failed(format!("{what}: --verify re-decode failed: {e}")))?;
    let matches = decoded.len() == expect.len()
        && (0..expect.len()).all(|i| match expect.get(i) {
            Some(t) if t.is_care() => decoded.get(i) == Some(t),
            _ => decoded.get(i).is_some(),
        });
    if !matches {
        return Err(CliError::Failed(format!(
            "{what}: --verify mismatch: re-decode differs from the expected stream"
        )));
    }
    Ok(())
}

fn compress(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let k = opts.k.unwrap_or(8);
    let cubes = ninec_testdata::io::read_test_set_file(input)
        .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
    let out_path = output(&opts)?;
    if wants_frame(out_path) {
        // Binary segment-frame container: encoded concurrently, decoded
        // in parallel, byte-identical at every thread count. Frames always
        // keep leftover X so the decompressor can bind them later.
        if !matches!(opts.fill.as_deref(), None | Some("keep")) {
            return Err(CliError::Usage(
                "a .9cf frame always keeps leftover X; bind them at \
                 decompress time with --fill"
                    .into(),
            ));
        }
        if opts.freq_directed {
            return Err(CliError::Usage(
                "--freq-directed applies to the .te text format only".into(),
            ));
        }
        let engine = engine_from_opts(&opts);
        let stream = cubes.as_stream();
        let bytes = engine
            .encode_frame(k, stream)
            .map_err(|e| CliError::Failed(e.to_string()))?;
        fs::write(out_path, &bytes)?;
        if opts.verify {
            // The output exists; prove it round-trips before exiting 0.
            verify_frame_bytes(&engine, input, &bytes, stream)?;
        }
        writeln!(
            out,
            "{input}: {} -> {} bits (CR {:.2}%), 9CSF frame, {} threads{}{}",
            cubes.total_bits(),
            bytes.len() * 8,
            (cubes.total_bits() as f64 - (bytes.len() * 8) as f64)
                / cubes.total_bits().max(1) as f64
                * 100.0,
            engine.threads(),
            match engine.parity() {
                Some((g, r)) => format!(", parity {g}:{r}"),
                None => String::new(),
            },
            if opts.verify { ", verified" } else { "" },
        )?;
        return Ok(());
    }
    if opts.verify {
        return Err(CliError::Usage(
            "--verify applies to the binary .9cf frame container only".into(),
        ));
    }
    if opts.parity.is_some() {
        return Err(CliError::Usage(
            "--parity applies to the binary .9cf frame container only".into(),
        ));
    }
    let encoded = if opts.freq_directed {
        encode_frequency_directed(k, cubes.as_stream())
            .map_err(|e| CliError::Failed(e.to_string()))?
            .best()
            .clone()
    } else if opts.threads.is_some() || opts.segment_bits.is_some() {
        // Sharded engine path: bit-identical to the serial encoder.
        engine_from_opts(&opts)
            .encode(k, cubes.as_stream())
            .map_err(|e| CliError::Failed(e.to_string()))?
    } else {
        // Streaming path: the encoder sees the source in fixed chunks and
        // holds at most one partial block between them.
        Encoder::new(k)
            .map_err(|e| CliError::Failed(e.to_string()))?
            .encode_chunked(cubes.as_stream().chunks(STREAM_CHUNK))
    };
    let mut te = TeFile::from_encoded(&encoded, cubes.pattern_len());
    if let Some(strategy) = fill_strategy(&opts)? {
        te.stream = fill_trits(&te.stream, strategy);
    }
    fs::write(out_path, te.to_text())?;
    writeln!(
        out,
        "{input}: {} -> {} bits (CR {:.2}%), leftover X {}{}",
        cubes.total_bits(),
        encoded.compressed_len(),
        encoded.compression_ratio(),
        encoded.stats().leftover_x,
        if opts.freq_directed {
            ", frequency-directed"
        } else {
            ""
        }
    )?;
    Ok(())
}

/// Formats a [`SalvageReport`] damage map for the stderr report.
fn damage_map(input: &str, report: &ninec::engine::SalvageReport) -> String {
    let mut msg = format!(
        "{input}: salvaged {}/{} segments; damaged:",
        report.recovered_segments, report.total_segments,
    );
    for d in &report.damaged {
        msg.push_str(&format!(
            "\n  segment {} bytes {}..{} trits {}..{}: {}",
            d.index,
            d.byte_range.start,
            d.byte_range.end,
            d.trit_range.start,
            d.trit_range.end,
            d.reason,
        ));
    }
    msg
}

fn decompress(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let mut damage: Option<String> = None;
    let mut repaired: usize = 0;
    if input == "-" {
        // Stdin: bounded-memory streaming decode straight off the pipe.
        // Streaming is strict-only — repair needs random access to the
        // whole frame (parity groups interleave across it).
        if opts.salvage {
            return Err(CliError::Usage(
                "--salvage needs the whole frame; pipe it to a file first \
                 or pass a path instead of -"
                    .into(),
            ));
        }
        let engine = engine_from_opts(&opts);
        let stdin = std::io::stdin();
        let decoded = engine.decode_stream(stdin.lock()).map_err(|e| match e {
            ninec::engine::ReadError::Io(io) => CliError::Io(io),
            other => CliError::Failed(format!("<stdin>: {other}")),
        })?;
        return write_decompressed(&opts, out, "<stdin>", decoded, 0, None, 0);
    }
    let bytes = fs::read(input)?;
    let (decoded, te_pattern_len) = if frame::is_frame(&bytes) {
        // Binary 9CSF frame: self-describing (K, table, segment bounds),
        // decoded in parallel by the session's sharded engine. Damaged
        // frames climb the ladder: strict -> repair (unless --no-repair)
        // -> salvage (only kept when --salvage allows lossy output) —
        // every rung executes against ONE plan, built by a single
        // header/CRC scan pass.
        let mut session = DecodeSession::new();
        if let Some(threads) = opts.threads {
            session = session.threads(threads);
        }
        if let Some(limits) = limits_from_opts(&opts) {
            session = session.limits(limits);
        }
        let plan = session
            .plan(&bytes)
            .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
        let decoded = match session.execute_plan(&plan, Policy::Strict) {
            Ok(report) => report.trits,
            Err(strict_err) => {
                let rung = if opts.no_repair {
                    Policy::Salvage
                } else {
                    Policy::Repair
                };
                let report = session
                    .execute_plan(&plan, rung)
                    .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
                repaired = report
                    .damaged
                    .iter()
                    .filter(|d| d.reason.is_repaired())
                    .count();
                if report.is_full_recovery() {
                    // Every damaged segment was rebuilt bit-exact from
                    // parity (or cost no output trits): full recovery,
                    // exit 0.
                    report.trits
                } else if opts.salvage {
                    // Best-effort: keep every CRC-valid or rebuilt
                    // segment, materialize the rest as X (bound below by
                    // --fill like any other leftover X).
                    damage = Some(damage_map(input, &report));
                    report.trits
                } else {
                    return Err(CliError::Failed(format!(
                        "{input}: {strict_err}{}; {}/{} segments are recoverable — \
                         re-run with --salvage to keep them (damaged spans decode as X)",
                        if opts.no_repair {
                            ""
                        } else {
                            " (and parity could not rebuild all damage)"
                        },
                        report.recovered_segments,
                        report.total_segments,
                    )));
                }
            }
        };
        (decoded, 0)
    } else {
        if opts.salvage {
            return Err(CliError::Usage(
                "--salvage applies to binary 9CSF frames only".into(),
            ));
        }
        let text = String::from_utf8(bytes)
            .map_err(|_| CliError::Failed(format!("{input}: not a .te or 9CSF file")))?;
        let te = TeFile::parse(&text).map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
        let decoded = te
            .decode()
            .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
        (decoded, te.pattern_len)
    };
    write_decompressed(&opts, out, input, decoded, te_pattern_len, damage, repaired)
}

/// Shared tail of `decompress`: bind leftover X, shape into patterns,
/// write the cube file and the summary line, and map a lossy salvage to
/// [`CliError::PartialRecovery`] (exit 5) *after* the output exists.
#[allow(clippy::too_many_arguments)]
fn write_decompressed(
    opts: &Opts,
    out: &mut dyn Write,
    input: &str,
    mut decoded: ninec_testdata::trit::TritVec,
    te_pattern_len: usize,
    damage: Option<String>,
    repaired: usize,
) -> Result<(), CliError> {
    if let Some(strategy) = fill_strategy(opts)? {
        decoded = fill_trits(&decoded, strategy);
    }
    let pattern_len = if te_pattern_len > 0 {
        te_pattern_len
    } else {
        decoded.len()
    };
    if !decoded.len().is_multiple_of(pattern_len) {
        return Err(CliError::Failed(format!(
            "decoded length {} is not a multiple of pattern length {pattern_len}",
            decoded.len()
        )));
    }
    let set = TestSet::from_stream(pattern_len, decoded);
    ninec_testdata::io::write_test_set_file(output(opts)?, &set)?;
    writeln!(
        out,
        "{input}: decoded {} patterns x {} cells{}{}",
        set.num_patterns(),
        set.pattern_len(),
        if repaired > 0 {
            format!(" ({repaired} segments rebuilt from parity)")
        } else {
            String::new()
        },
        if damage.is_some() {
            " (partial recovery)"
        } else {
            ""
        }
    )?;
    // Output was written; a lossy salvage still reports exit code 5 so
    // scripts can tell full from partial recovery.
    match damage {
        Some(msg) => Err(CliError::PartialRecovery(msg)),
        None => Ok(()),
    }
}

fn info(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let bytes = fs::read(input)?;
    if ninec::engine::archive::is_archive(&bytes) {
        // A 9CA archive: open it (validating the epoch index under the
        // engine's limits) and print the shape and dedup stats.
        let engine = engine_from_opts(&opts);
        let arc = Archive::open(input, &engine).map_err(|e| archive_err(input, e))?;
        let stats = arc.stats();
        writeln!(
            out,
            "{input}: 9CA archive, {} frames, {} data + {} parity segment refs, \
             {} stored blobs ({} bytes for {} logical, dedup ratio {:.2}, {} hits), epoch {}",
            stats.frames,
            stats.data_segments,
            stats.parity_segments,
            stats.stored_blobs,
            stats.stored_bytes,
            stats.logical_bytes,
            stats.dedup_ratio(),
            stats.dedup_hits,
            stats.epoch,
        )?;
        for i in 0..arc.frame_count() {
            if let Some(fi) = arc.frame_info(i) {
                writeln!(
                    out,
                    "  frame {i}: v{}, {} trits, {} segments + {} parity{}",
                    fi.version,
                    fi.source_len,
                    fi.segments,
                    fi.parity_segments,
                    if fi.parity.1 > 0 {
                        format!(" (parity {}:{})", fi.parity.0, fi.parity.1)
                    } else {
                        String::new()
                    },
                )?;
            }
        }
        return Ok(());
    }
    if frame::is_frame(&bytes) {
        // One plan build — a single header/CRC scan pass — keeps going
        // past damaged segments, so `info` prints the per-segment decode
        // plan (including the damage map) instead of dying on the first
        // bad CRC.
        let plan = DecodeSession::new()
            .plan(&bytes)
            .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
        let compressed_bits = bytes.len() * 8;
        writeln!(
            out,
            "{input}: 9CSF frame, {} segments ({} intact), {} compressed bits for {} source \
             bits (CR {:.2}%), lengths {:?}",
            plan.entries().len(),
            plan.intact_count(),
            compressed_bits,
            plan.source_len(),
            (plan.source_len() as f64 - compressed_bits as f64)
                / (plan.source_len() as f64).max(1.0)
                * 100.0,
            plan.table_lengths(),
        )?;
        if plan.parity_r() > 0 {
            // v3: report the parity-group geometry and how much of the
            // repair budget is still standing.
            let groups = plan.groups();
            let parity_found = plan
                .entries()
                .iter()
                .filter(|e| matches!(e, PlanEntry::Parity { .. }))
                .count();
            let parity_bytes: usize = plan
                .entries()
                .iter()
                .filter(|e| matches!(e, PlanEntry::Parity { .. }))
                .map(|e| e.byte_range().len())
                .sum();
            writeln!(
                out,
                "  parity {}:{} — {} interleaved groups, {}/{} parity segments intact \
                 ({} parity bytes, {:.2}% overhead); up to {} lost segments per group \
                 rebuild bit-exact",
                plan.parity_g(),
                plan.parity_r(),
                groups,
                parity_found,
                groups * plan.parity_r() as usize,
                parity_bytes,
                parity_bytes as f64 / (bytes.len().max(1)) as f64 * 100.0,
                plan.parity_r(),
            )?;
        }
        // The per-segment plan, one line per slot: exactly what each
        // rung of the decode ladder will do with it.
        for (i, entry) in plan.entries().iter().enumerate() {
            let r = entry.byte_range();
            match entry {
                PlanEntry::Data { seg, .. } => writeln!(
                    out,
                    "  segment {i}: data k={} {} trits, bytes {}..{} — decode",
                    seg.k, seg.source_trits, r.start, r.end,
                )?,
                PlanEntry::OverBudget { seg, .. } => writeln!(
                    out,
                    "  segment {i}: data k={} {} trits, bytes {}..{} — over budget, erase",
                    seg.k, seg.source_trits, r.start, r.end,
                )?,
                PlanEntry::Parity { par, .. } => writeln!(
                    out,
                    "  segment {i}: parity group {} shard {}, bytes {}..{} — repair input",
                    par.group, par.pindex, r.start, r.end,
                )?,
                PlanEntry::Damaged { error, .. } => writeln!(
                    out,
                    "  damaged segment {i}: bytes {}..{}: {error}",
                    r.start, r.end,
                )?,
                _ => writeln!(out, "  segment {i}: bytes {}..{}", r.start, r.end)?,
            }
        }
        if let Some(err) = plan.strict_error() {
            writeln!(out, "  strict decode fails: {err}")?;
        }
        return Ok(());
    }
    // Binary bytes that are neither container: a typed usage error
    // naming the magic we actually saw, so a mis-pointed script learns
    // what the file was instead of getting a generic parse failure.
    // Control bytes count as binary even when they happen to decode as
    // UTF-8 (an ELF header is valid UTF-8 but is not a cube file).
    let looks_binary = bytes
        .iter()
        .any(|&b| b == 0x7F || (b < 0x20 && b != b'\t' && b != b'\n' && b != b'\r'));
    if looks_binary {
        return Err(CliError::Usage(format!(
            "{input}: not a 9CSF/9CA container (leading bytes {:02x?})",
            &bytes[..bytes.len().min(4)]
        )));
    }
    let text = String::from_utf8(bytes).map_err(|e| {
        let b = e.as_bytes();
        CliError::Usage(format!(
            "{input}: not a 9CSF/9CA container (leading bytes {:02x?})",
            &b[..b.len().min(4)]
        ))
    })?;
    if let Ok(te) = TeFile::parse(&text) {
        writeln!(
            out,
            "{input}: 9C stream, K={}, {} compressed bits for {} source bits \
             (CR {:.2}%), {} leftover X, lengths {:?}",
            te.k,
            te.stream.len(),
            te.source_len,
            (te.source_len as f64 - te.stream.len() as f64) / te.source_len.max(1) as f64 * 100.0,
            te.stream.count_x(),
            te.table.lengths()
        )?;
        return Ok(());
    }
    let cubes = ninec_testdata::io::parse_test_set(&text)
        .map_err(|e| CliError::Failed(format!("{input}: not a .te or cube file ({e})")))?;
    writeln!(out, "{input}: cube file, {}", TestSetStats::compute(&cubes))?;
    Ok(())
}

/// Maps an [`ArchiveError`] onto the CLI contract: pointing a verb at
/// something that is not an archive is a usage error (2), I/O problems
/// are 4, and everything else — corrupt indexes, rotted blobs, torn
/// appends, limit bombs — is an operation failure (3).
fn archive_err(input: &str, e: ArchiveError) -> CliError {
    match e {
        ArchiveError::Io { what, source } => CliError::Io(std::io::Error::new(
            source.kind(),
            format!("{input}: {what}: {source}"),
        )),
        ArchiveError::NotAnArchive { found } => CliError::Usage(format!(
            "{input}: not a 9CSF/9CA container (leading bytes {found:02x?})"
        )),
        other => CliError::Failed(format!("{input}: {other}")),
    }
}

fn archive_cmd(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if opts.positional.is_empty() {
        return Err(CliError::Usage(
            "archive wants one or more input .9cf frames".into(),
        ));
    }
    let out_path = output(&opts)?;
    let arc_name = out_path.display().to_string();
    let engine = engine_from_opts(&opts);
    let mut arc =
        Archive::open_or_create(out_path, &engine).map_err(|e| archive_err(&arc_name, e))?;
    for input in &opts.positional {
        let bytes = fs::read(input)?;
        if !frame::is_frame(&bytes) {
            return Err(CliError::Usage(format!(
                "{input}: not a 9CSF frame (archive inputs must be .9cf)"
            )));
        }
        let receipt = arc
            .append_frame(&bytes)
            .map_err(|e| archive_err(input, e))?;
        if opts.verify {
            // Same guard as `compress --verify`: what the archive hands
            // back must be the byte-exact frame, and its re-decode must
            // match the decode of what went in.
            let extracted = arc
                .extract_frame(receipt.frame)
                .map_err(|e| archive_err(&arc_name, e))?;
            if extracted != bytes {
                return Err(CliError::Failed(format!(
                    "{input}: --verify mismatch: extracted frame differs from the input"
                )));
            }
            let expect = engine
                .decode_frame(&bytes)
                .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
            verify_frame_bytes(&engine, input, &extracted, &expect)?;
        }
        writeln!(
            out,
            "{input}: frame {} — {} segments, {} dedup hits, {} new bytes{}",
            receipt.frame,
            receipt.segments,
            receipt.dedup_hits,
            receipt.new_bytes,
            if opts.verify { ", verified" } else { "" },
        )?;
    }
    let stats = arc.stats();
    writeln!(
        out,
        "{arc_name}: {} frames, {} stored blobs, {} stored bytes for {} logical \
         (dedup ratio {:.2}), epoch {}",
        stats.frames,
        stats.stored_blobs,
        stats.stored_bytes,
        stats.logical_bytes,
        stats.dedup_ratio(),
        stats.epoch,
    )?;
    Ok(())
}

fn extract_cmd(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let engine = engine_from_opts(&opts);
    let arc = Archive::open(input, &engine).map_err(|e| archive_err(input, e))?;
    let frame_idx = opts.frame.unwrap_or(0);
    if let Some((start, len)) = opts.range {
        // Random access through the seek index: only the overlapping
        // segment blobs are read and decoded.
        let trits = arc
            .decode_range(frame_idx, start, len)
            .map_err(|e| archive_err(input, e))?;
        fs::write(output(&opts)?, trits.to_string())?;
        writeln!(
            out,
            "{input}: frame {frame_idx} trits {start}..{} via random access",
            start + len,
        )?;
        return Ok(());
    }
    let bytes = arc
        .extract_frame(frame_idx)
        .map_err(|e| archive_err(input, e))?;
    if opts.verify {
        let expect = engine
            .decode_frame(&bytes)
            .map_err(|e| CliError::Failed(format!("{input}: frame {frame_idx}: {e}")))?;
        verify_frame_bytes(&engine, input, &bytes, &expect)?;
    }
    fs::write(output(&opts)?, &bytes)?;
    writeln!(
        out,
        "{input}: frame {frame_idx} -> {} bytes{}",
        bytes.len(),
        if opts.verify { ", verified" } else { "" },
    )?;
    Ok(())
}

fn scrub_cmd(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let engine = engine_from_opts(&opts);
    let mut arc = Archive::open(input, &engine).map_err(|e| archive_err(input, e))?;
    let mode = if opts.check {
        ScrubMode::Check
    } else {
        ScrubMode::Repair
    };
    let report = arc.scrub(mode).map_err(|e| archive_err(input, e))?;
    writeln!(
        out,
        "{input}: scrubbed {} segment refs — {} repaired, {} degraded, {} lost (epoch {})",
        report.scrubbed_segments,
        report.repaired_segments,
        report.degraded_segments,
        report.lost_segments,
        arc.epoch(),
    )?;
    for f in &report.findings {
        let verdict = match f.verdict {
            ScrubVerdict::Clean => "clean".to_string(),
            ScrubVerdict::Repaired => "repaired bit-exact".to_string(),
            ScrubVerdict::Degraded { remaining_budget } => {
                format!("degraded (parity budget {remaining_budget} remaining)")
            }
            ScrubVerdict::Lost => "lost (beyond the parity budget)".to_string(),
        };
        writeln!(
            out,
            "  frame {} group {}: {verdict} — segments {:?}",
            f.frame, f.group, f.segments,
        )?;
    }
    if report.needs_attention() {
        // Rot the scrub could not (or, in --check, did not) repair:
        // exit 5, like a lossy salvage — the report above was written.
        return Err(CliError::PartialRecovery(format!(
            "{input}: {} degraded and {} lost segment refs remain",
            report.degraded_segments, report.lost_segments,
        )));
    }
    Ok(())
}

fn generate(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let spec = one_input(&opts)?;
    let profile = if let Some(rest) = spec.strip_prefix("custom:") {
        let parts: Vec<&str> = rest.split(',').collect();
        let [p, l, x] = parts.as_slice() else {
            return Err(CliError::Usage("custom profile is custom:P,L,X%".into()));
        };
        let patterns: usize = p.parse().map_err(|_| CliError::Usage("bad P".into()))?;
        let len: usize = l.parse().map_err(|_| CliError::Usage("bad L".into()))?;
        let x_pct: f64 = x.parse().map_err(|_| CliError::Usage("bad X%".into()))?;
        if !(0.0..100.0).contains(&x_pct) || x_pct == 0.0 {
            return Err(CliError::Usage("X% must be in (0, 100)".into()));
        }
        SyntheticProfile::new("custom", patterns, len, x_pct / 100.0)
    } else {
        mintest_profile(spec).ok_or_else(|| CliError::Usage(format!("unknown profile {spec:?}")))?
    };
    let set = profile.generate(opts.seed);
    ninec_testdata::io::write_test_set_file(output(&opts)?, &set)?;
    writeln!(out, "{}: {}", profile.name, TestSetStats::compute(&set))?;
    Ok(())
}

fn atpg(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let text = fs::read_to_string(input)?;
    let circuit = parse_bench(&text).map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
    let result = generate_tests(&circuit, AtpgConfig::default());
    ninec_testdata::io::write_test_set_file(output(&opts)?, &result.tests)?;
    writeln!(out, "{}: {result}", circuit.name())?;
    Ok(())
}

fn compare(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use ninec_baselines::registry::table4_registry;
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let k = opts.k.unwrap_or(8);
    let cubes = ninec_testdata::io::read_test_set_file(input)
        .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
    let stream = cubes.as_stream();
    writeln!(out, "{input}: |T_D| = {} bits", cubes.total_bits())?;
    writeln!(out, "{:>12}  {:>8}", "code", "CR%")?;
    // One unified registry covers 9C and every baseline; the sweep-style
    // columns (VIHC, Golomb, Dict) report their best parameter.
    for codec in table4_registry(k).map_err(|e| CliError::Failed(e.to_string()))? {
        let label = match codec.name() {
            "9C" => format!("9C (K={k})"),
            other => other.to_owned(),
        };
        writeln!(out, "{label:>12}  {:>8.2}", codec.compression_ratio(stream))?;
    }
    Ok(())
}

fn rtl(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if !opts.positional.is_empty() {
        return Err(CliError::Usage("rtl takes no positional arguments".into()));
    }
    let k = opts.k.unwrap_or(8);
    if k < 4 || k % 2 != 0 {
        return Err(CliError::Usage(format!(
            "-k must be even and >= 4, got {k}"
        )));
    }
    let mut rtl = decoder_verilog(k);
    if opts.testbench {
        // Build a short self-test stream with the reference model so the
        // emitted testbench is self-checking out of the box.
        use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
        use ninec_testdata::gen::SyntheticProfile;
        let cubes = SyntheticProfile::new("rtl-selftest", 4, 8 * k, 0.7).generate(opts.seed);
        let encoded = Encoder::new(k)
            .map_err(|e| CliError::Failed(e.to_string()))?
            .encode_set(&cubes);
        let bits = encoded.to_bitvec(FillStrategy::Zero);
        let decoder = SingleScanDecoder::new(k, encoded.table().clone(), ClockRatio::new(8));
        let trace = decoder
            .run(&bits, cubes.total_bits())
            .map_err(|e| CliError::Failed(e.to_string()))?;
        rtl.push('\n');
        rtl.push_str(&ninec_decompressor::verilog::testbench_verilog(
            k,
            8,
            &bits,
            &trace.scan_out,
        ));
    }
    ninec_decompressor::verilog::lint(&rtl).map_err(CliError::Failed)?;
    fs::write(output(&opts)?, &rtl)?;
    writeln!(
        out,
        "wrote ninec_decoder_k{k}{} ({} lines of Verilog)",
        if opts.testbench {
            " + self-checking testbench"
        } else {
            ""
        },
        rtl.lines().count()
    )?;
    Ok(())
}

/// Minimal JSON string escaping for the `trace --json` document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `ninec trace <in.9cf>`: replay the frame through the audited decode
/// ladder and print the per-frame audit trail — one line per segment
/// naming the rung it resolved on, the worker that decoded it and the
/// decode wall-clock (from the flight recorder, when compiled in).
fn trace_cmd(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let input = one_input(&opts)?;
    let bytes = fs::read(input)?;
    if !frame::is_frame(&bytes) {
        return Err(CliError::Failed(format!(
            "{input}: not a 9CSF frame (trace replays binary .9cf frames)"
        )));
    }
    let mut session = DecodeSession::new().audit(true);
    if let Some(threads) = opts.threads {
        session = session.threads(threads);
    }
    let policy = if opts.no_repair {
        Policy::Salvage
    } else {
        Policy::Repair
    };
    let outcome = session
        .decode_frame(&bytes, policy)
        .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
    let audit = outcome
        .audit
        .ok_or_else(|| CliError::Failed(format!("{input}: audited decode produced no audit")))?;
    // A clean frame resolves strict with no report: every segment counts
    // as recovered.
    let (recovered_segments, total_segments) = match &outcome.report {
        Some(report) => (report.recovered_segments, report.total_segments),
        None => (audit.segments.len(), audit.segments.len()),
    };
    if opts.json {
        let segs: Vec<String> = audit
            .segments
            .iter()
            .map(|s| {
                let mut obj = format!("{{\"index\":{},\"rung\":\"{}\"", s.index, s.rung.label());
                if let SegmentRung::Repaired { group, parity_used } = s.rung {
                    obj.push_str(&format!(",\"group\":{group},\"parity_used\":{parity_used}"));
                }
                if let Some(w) = s.worker {
                    obj.push_str(&format!(",\"worker\":{w}"));
                }
                if let Some(ns) = s.nanos {
                    obj.push_str(&format!(",\"nanos\":{ns}"));
                }
                obj.push('}');
                obj
            })
            .collect();
        writeln!(
            out,
            "{{\"input\":\"{}\",\"trace\":{},\"recovered_segments\":{},\"total_segments\":{},\
             \"strict\":{},\"repaired\":{},\"salvaged\":{},\"segments\":[{}]}}",
            json_escape(input),
            audit.trace,
            recovered_segments,
            total_segments,
            audit.strict_segments(),
            audit.repaired_segments(),
            audit.salvaged_segments(),
            segs.join(","),
        )?;
    } else {
        writeln!(
            out,
            "{input}: {}/{} segments recovered ({} strict, {} repaired, {} salvaged), trace {}",
            recovered_segments,
            total_segments,
            audit.strict_segments(),
            audit.repaired_segments(),
            audit.salvaged_segments(),
            audit.trace,
        )?;
        for s in &audit.segments {
            let worker = s.worker.map_or_else(|| "-".to_owned(), |w| w.to_string());
            let dur = s
                .nanos
                .map_or_else(|| "-".to_owned(), |ns| format!("{ns} ns"));
            let detail = match s.rung {
                SegmentRung::Repaired { group, parity_used } => format!(
                    "  (group {group}, {parity_used} parity shard{})",
                    if parity_used == 1 { "" } else { "s" }
                ),
                _ => String::new(),
            };
            writeln!(
                out,
                "  segment {}: {:<8}  worker {worker:>2}  {dur:>12}{detail}",
                s.index,
                s.rung.label(),
            )?;
        }
    }
    // Output printed; lossy recovery still reports exit code 5 so
    // scripts can tell a fully recovered frame from a lossy one.
    match &outcome.report {
        Some(report) if !report.is_full_recovery() => {
            Err(CliError::PartialRecovery(damage_map(input, report)))
        }
        _ => Ok(()),
    }
}

/// Builds the serve configuration from the CLI flags. Split from
/// [`serve`] so the flag-to-config mapping is testable without binding
/// a listener.
fn serve_config_from_opts(opts: &Opts) -> Result<ninec_serve::ServeConfig, CliError> {
    let mut config = ninec_serve::ServeConfig::default();
    if let Some(addr) = &opts.addr {
        config.addr.clone_from(addr);
    }
    if let Some(addr) = &opts.http_addr {
        config.http_addr.clone_from(addr);
    }
    config.http = !opts.no_http;
    if let Some(path) = &opts.tenants {
        let text = fs::read_to_string(path)?;
        config.tenants = ninec_serve::parse_tenants(&text)
            .map_err(|e| CliError::Failed(format!("{}: {e}", path.display())))?;
    }
    if let Some(n) = opts.threads {
        config.decode_threads = n;
    }
    if let Some(bits) = opts.segment_bits {
        config.segment_bits = bits;
    }
    if let Some(parity) = opts.parity {
        config.parity = parity;
    }
    if let Some(n) = opts.handler_threads {
        config.handler_threads = n;
    }
    if let Some(n) = opts.max_inflight {
        config.max_inflight = n;
    }
    if let Some(n) = opts.degrade_threshold {
        config.degrade_threshold = n;
    }
    if let Some(ms) = opts.max_request_time_ms {
        // 0 disables the ceiling — requests then run as long as the
        // client's own deadline (if any) allows.
        config.max_request_time = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    config.archive.clone_from(&opts.archive);
    Ok(config)
}

/// `chaos-proxy <upstream>`: the test harness's fault-injection proxy
/// as a standalone process, for smoke scripts and manual failure drills.
fn chaos_proxy(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let [upstream] = opts.positional.as_slice() else {
        return Err(CliError::Usage(
            "chaos-proxy wants exactly one <upstream-addr>".into(),
        ));
    };
    let upstream: std::net::SocketAddr = upstream
        .parse()
        .map_err(|_| CliError::Usage(format!("bad upstream address {upstream:?}")))?;
    let mut config = ninec_serve::ChaosConfig {
        delay: std::time::Duration::from_millis(opts.delay_ms.unwrap_or(0)),
        throttle_bytes_per_sec: opts.throttle_bps.unwrap_or(0),
        torn_write_permille: opts.torn_permille.unwrap_or(0),
        blackhole_permille: opts.blackhole_permille.unwrap_or(0),
        seed: opts.seed,
        ..ninec_serve::ChaosConfig::default()
    };
    if let Some(addr) = &opts.addr {
        config.listen.clone_from(addr);
    }
    let proxy = ninec_serve::ChaosProxy::start(upstream, config)?;
    // Same contract as `serve`: the smoke harness reads this line for
    // the ephemeral port, then the process blocks until killed.
    writeln!(out, "listening {}", proxy.addr())?;
    out.flush()?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn serve(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    if !opts.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "serve takes flags only, got {:?}",
            opts.positional
        )));
    }
    let config = serve_config_from_opts(&opts)?;
    let server = ninec_serve::Server::start(config)?;
    // The smoke harness (scripts/ci.sh) reads these lines to learn the
    // ephemeral ports, so flush before blocking.
    writeln!(out, "listening {}", server.addr())?;
    if let Some(http) = server.http_addr() {
        writeln!(out, "metrics http://{http}/metrics")?;
        writeln!(out, "trace http://{http}/trace")?;
    }
    out.flush()?;
    // The acceptor, handler pool and exporter run on their own threads;
    // this thread only keeps the `Server` (and the process) alive until
    // the operator kills it.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Maps a wire-client failure onto the CLI error contract: connection
/// problems are I/O (4), protocol violations are failures (3), and a
/// server refusal carries its wire status byte through as the exit
/// code — see [`EXIT_CODES`].
fn client_err(e: ninec_serve::ClientError) -> CliError {
    match e {
        ninec_serve::ClientError::Io(io) => CliError::Io(io),
        ninec_serve::ClientError::Server {
            status,
            degraded,
            message,
        } => CliError::Service {
            code: status as u8,
            message: if degraded {
                format!("{message} (server degraded)")
            } else {
                message
            },
        },
        other => CliError::Failed(format!("wire protocol error: {other}")),
    }
}

fn client(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let (addr, verb, rest) = match opts.positional.as_slice() {
        [addr, verb, rest @ ..] => (addr.as_str(), verb.as_str(), rest),
        _ => {
            return Err(CliError::Usage(
                "client wants <addr> ping|compress|decompress|info|range|metrics".into(),
            ))
        }
    };
    if verb == "metrics" {
        // Raw GET against the exporter listener — <addr> here is the
        // http address `serve` printed, not the wire address.
        let body = ninec_serve::client::http_get(addr, "/metrics").map_err(client_err)?;
        write!(out, "{body}")?;
        return Ok(());
    }
    // Every client connection goes through the retrying wrapper; with
    // the default --retries 0 it behaves exactly like a plain client
    // (one attempt, typed errors straight through).
    let options = ninec_serve::ClientOptions {
        deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        ..ninec_serve::ClientOptions::default()
    };
    let policy = ninec_serve::RetryPolicy {
        max_retries: opts.retries.unwrap_or(0),
        ..ninec_serve::RetryPolicy::default()
    };
    let mut client = ninec_serve::RetryingClient::new(addr, options, policy).map_err(client_err)?;
    // A deadline needs the HELLO negotiation even without --tenant.
    if opts.tenant.is_some() || opts.deadline_ms.is_some() {
        client
            .hello(opts.tenant.as_deref().unwrap_or("default"))
            .map_err(client_err)?;
    }
    let one_file = |rest: &[String]| -> Result<String, CliError> {
        match rest {
            [one] => Ok(one.clone()),
            _ => Err(CliError::Usage(format!(
                "client {verb} wants exactly one input file"
            ))),
        }
    };
    match verb {
        "ping" => {
            // `hello` already ran for --tenant; greet explicitly so a
            // bare ping exercises the wire too.
            let greeting = client
                .hello(opts.tenant.as_deref().unwrap_or("default"))
                .map_err(client_err)?;
            writeln!(out, "{greeting}")?;
            Ok(())
        }
        "compress" => {
            let input = one_file(rest)?;
            let k = opts.k.unwrap_or(8);
            let k = u16::try_from(k)
                .map_err(|_| CliError::Usage(format!("-k {k} does not fit the wire (u16)")))?;
            let cubes = ninec_testdata::io::read_test_set_file(&input)
                .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
            let frame = client
                .compress(k, &cubes.as_stream().to_string())
                .map_err(client_err)?;
            let out_path = output(&opts)?;
            fs::write(out_path, &frame)?;
            writeln!(
                out,
                "{input}: {} -> {} bits over the wire, 9CSF frame",
                cubes.total_bits(),
                frame.len() * 8,
            )?;
            Ok(())
        }
        "decompress" => {
            let input = one_file(rest)?;
            let frame = fs::read(&input)?;
            // Same policy surface as the local verb: the full ladder by
            // default, --no-repair pins strict, --salvage allows loss.
            let policy = match (opts.no_repair, opts.salvage) {
                (true, false) => Policy::Strict,
                (false, true) => Policy::Salvage,
                (false, false) => Policy::Repair,
                (true, true) => {
                    return Err(CliError::Usage(
                        "--no-repair and --salvage conflict on the wire: the \
                         serve ladder has no strict-then-salvage rung"
                            .into(),
                    ))
                }
            };
            let reply = client.decode(&frame, policy).map_err(client_err)?;
            let out_path = output(&opts)?;
            fs::write(out_path, reply.trits.as_bytes())?;
            writeln!(
                out,
                "{input}: {} trits via {} rung{}",
                reply.trits.len(),
                reply.rung.label(),
                if reply.degraded {
                    " (server degraded)"
                } else {
                    ""
                },
            )?;
            if reply.partial {
                return Err(CliError::PartialRecovery(format!(
                    "{input}: server salvage lost {} segment(s); output written",
                    reply.damaged,
                )));
            }
            Ok(())
        }
        "info" => {
            let input = one_file(rest)?;
            let frame = fs::read(&input)?;
            let info = client.info(&frame).map_err(client_err)?;
            write!(out, "{info}")?;
            Ok(())
        }
        "range" => {
            // Random access into the server's hosted archive: nothing
            // is uploaded, only the 20-byte coordinate triple.
            if !rest.is_empty() {
                return Err(CliError::Usage(format!(
                    "client range takes --frame/--range flags only, got {rest:?}"
                )));
            }
            let Some((start, len)) = opts.range else {
                return Err(CliError::Usage(
                    "client range wants --range <start>:<len>".into(),
                ));
            };
            let frame = opts.frame.unwrap_or(0);
            let frame = u32::try_from(frame)
                .map_err(|_| CliError::Usage(format!("--frame {frame} does not fit the wire")))?;
            let trits = client
                .archive_range(frame, start as u64, len as u64)
                .map_err(client_err)?;
            match &opts.output {
                Some(path) => {
                    fs::write(path, trits.as_bytes())?;
                    writeln!(
                        out,
                        "frame {frame} trits {start}..{}: {} trits written",
                        start + len,
                        trits.len()
                    )?;
                }
                None => writeln!(out, "{trits}")?,
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown client verb {other:?} (want ping|compress|decompress|info|range|metrics)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ninec_cli_{name}"));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap_or_else(|e| panic!("{args:?}: {e}"));
        String::from_utf8(out).unwrap()
    }

    fn run_err(args: &[&str]) -> CliError {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap_err()
    }

    fn path_str(p: &Path) -> &str {
        p.to_str().unwrap()
    }

    #[test]
    fn generate_compress_decompress_roundtrip() {
        let dir = tmpdir("roundtrip");
        let cubes = dir.join("s.cubes");
        let te = dir.join("s.te");
        let back = dir.join("back.cubes");

        let msg = run_ok(&[
            "generate",
            "custom:20,64,75",
            "-o",
            path_str(&cubes),
            "--seed",
            "3",
        ]);
        assert!(msg.contains("20 x 64"));

        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
            "-k",
            "8",
            "--fill",
            "keep",
        ]);
        assert!(msg.contains("CR"));

        run_ok(&[
            "decompress",
            path_str(&te),
            "-o",
            path_str(&back),
            "--fill",
            "keep",
        ]);
        let orig = ninec_testdata::io::read_test_set_file(&cubes).unwrap();
        let round = ninec_testdata::io::read_test_set_file(&back).unwrap();
        assert_eq!(round.num_patterns(), orig.num_patterns());
        assert!(round.pattern_len() == orig.pattern_len());
        // Care bits preserved end to end.
        for (a, b) in orig.patterns().zip(round.patterns()) {
            for i in 0..a.len() {
                let s = a.get(i).unwrap();
                if s.is_care() {
                    assert_eq!(Some(s), b.get(i));
                }
            }
        }
    }

    #[test]
    fn compress_with_fill_produces_specified_stream() {
        let dir = tmpdir("fill");
        let cubes = dir.join("f.cubes");
        let te = dir.join("f.te");
        run_ok(&["generate", "custom:10,40,80", "-o", path_str(&cubes)]);
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
            "--fill",
            "zero",
        ]);
        let parsed = TeFile::parse(&fs::read_to_string(&te).unwrap()).unwrap();
        assert_eq!(parsed.stream.count_x(), 0);
    }

    #[test]
    fn freq_directed_flag_reassigns_lengths() {
        let dir = tmpdir("fd");
        let cubes = dir.join("fd.cubes");
        let te = dir.join("fd.te");
        run_ok(&["generate", "s5378", "-o", path_str(&cubes)]);
        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
            "--freq-directed",
        ]);
        assert!(msg.contains("frequency-directed"));
        let parsed = TeFile::parse(&fs::read_to_string(&te).unwrap()).unwrap();
        // The decoder can be rebuilt from the stored lengths.
        assert!(parsed.decode().is_ok());
    }

    #[test]
    fn info_detects_both_formats() {
        let dir = tmpdir("info");
        let cubes = dir.join("i.cubes");
        let te = dir.join("i.te");
        run_ok(&["generate", "custom:5,32,70", "-o", path_str(&cubes)]);
        run_ok(&["compress", path_str(&cubes), "-o", path_str(&te)]);
        assert!(run_ok(&["info", path_str(&cubes)]).contains("cube file"));
        assert!(run_ok(&["info", path_str(&te)]).contains("9C stream"));
    }

    #[test]
    fn atpg_command_runs_on_bundled_bench() {
        let dir = tmpdir("atpg");
        let bench = dir.join("s27.bench");
        fs::write(&bench, ninec_circuit::bench::S27).unwrap();
        let out_cubes = dir.join("s27.cubes");
        let msg = run_ok(&["atpg", path_str(&bench), "-o", path_str(&out_cubes)]);
        assert!(msg.contains("100.0% coverage"), "{msg}");
        let cubes = ninec_testdata::io::read_test_set_file(&out_cubes).unwrap();
        assert_eq!(cubes.pattern_len(), 7);
    }

    #[test]
    fn rtl_command_writes_lintable_verilog() {
        let dir = tmpdir("rtl");
        let v = dir.join("dec.v");
        let msg = run_ok(&["rtl", "-o", path_str(&v), "-k", "16"]);
        assert!(msg.contains("ninec_decoder_k16"));
        let text = fs::read_to_string(&v).unwrap();
        assert!(text.contains("module ninec_decoder_k16"));
    }

    #[test]
    fn rtl_with_testbench() {
        let dir = tmpdir("rtltb");
        let v = dir.join("dec_tb.v");
        let msg = run_ok(&["rtl", "-o", path_str(&v), "-k", "8", "--tb"]);
        assert!(msg.contains("self-checking testbench"));
        let text = fs::read_to_string(&v).unwrap();
        assert!(text.contains("module ninec_decoder_k8_tb"));
        assert!(text.contains("PASS"));
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run_err(&[]), CliError::Usage(_)));
        assert!(matches!(run_err(&["frobnicate"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["compress"]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["compress", "a", "b", "-o", "c"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["rtl", "-o", "x.v", "-k", "7"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["generate", "custom:1,2", "-o", "x"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["generate", "nope", "-o", "x"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn compare_lists_all_codecs() {
        let dir = tmpdir("compare");
        let cubes = dir.join("c.cubes");
        run_ok(&["generate", "custom:15,64,80", "-o", path_str(&cubes)]);
        let msg = run_ok(&["compare", path_str(&cubes), "-k", "8"]);
        for name in [
            "9C", "FDR", "EFDR", "ARL", "Golomb", "VIHC", "SelHuff", "Dict",
        ] {
            assert!(msg.contains(name), "missing {name} in:\n{msg}");
        }
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
    }

    #[test]
    fn exit_codes_distinguish_error_classes() {
        assert_eq!(run_err(&["frobnicate"]).exit_code(), 2);
        let dir = tmpdir("exitcodes");
        let bogus = dir.join("bogus.cubes");
        fs::write(&bogus, "not a cube file at all\n!!!").unwrap();
        let te = dir.join("x.te");
        let failed = run_err(&["compress", path_str(&bogus), "-o", path_str(&te)]);
        assert!(matches!(failed, CliError::Failed(_)));
        assert_eq!(failed.exit_code(), 3);
        let io = run_err(&["decompress", "/nonexistent/no/such.te", "-o", "out"]);
        assert!(matches!(io, CliError::Io(_)));
        assert_eq!(io.exit_code(), 4);
    }

    #[test]
    fn io_error_report_prints_source_chain() {
        let err = run_err(&["decompress", "/nonexistent/no/such.te", "-o", "out"]);
        let report = err.report();
        assert!(report.starts_with("ninec: i/o error"), "{report}");
        assert!(report.contains("caused by:"), "{report}");
        // The io::Error detail lives in the chain, not the headline.
        assert!(
            report.contains("No such file") || report.contains("not found"),
            "{report}"
        );
    }

    #[test]
    fn stats_text_prints_prometheus_exposition() {
        let dir = tmpdir("statstext");
        let cubes = dir.join("s.cubes");
        let te = dir.join("s.te");
        run_ok(&["generate", "custom:12,64,80", "-o", path_str(&cubes)]);
        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
            "--stats",
            "text",
        ]);
        if ninec_obs::is_compiled() {
            assert!(msg.contains("# TYPE"), "{msg}");
            assert!(msg.contains("ninec_encode_blocks"), "{msg}");
        } else {
            // Compiled out: the command still works, the registry is empty.
            assert!(msg.contains("CR"), "{msg}");
        }
    }

    #[test]
    fn stats_json_parses_and_has_nonzero_encode_metrics() {
        let dir = tmpdir("statsjson");
        let cubes = dir.join("s.cubes");
        let te = dir.join("s.te");
        run_ok(&["generate", "custom:12,64,80", "-o", path_str(&cubes)]);
        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
            "--stats",
            "json",
        ]);
        // The JSON document follows the human summary line: parse from the
        // first '{' to the last '}'.
        let start = msg.find('{').expect("json object in output");
        let end = msg.rfind('}').expect("json object in output");
        let doc = serde_json::from_str(&msg[start..=end]).expect("--stats json must be valid JSON");
        if ninec_obs::is_compiled() {
            let blocks = doc["counters"]["ninec.encode.blocks"]
                .as_u64()
                .expect("encode block counter present");
            assert!(blocks > 0, "expected nonzero blocks: {doc:?}");
            assert!(
                doc["histograms"]["ninec.encode.throughput_mbit_s"]["count"]
                    .as_u64()
                    .unwrap_or(0)
                    > 0,
                "expected a throughput sample: {doc:?}"
            );
        } else {
            // Compiled out: the document is still well-formed JSON with
            // (empty) top-level sections.
            assert!(matches!(doc["counters"], serde_json::Value::Object(_)));
        }
    }

    #[test]
    fn trace_spans_show_nested_encode_span() {
        let dir = tmpdir("spans");
        let cubes = dir.join("s.cubes");
        let te = dir.join("s.te");
        run_ok(&["generate", "custom:8,64,75", "-o", path_str(&cubes)]);
        let msg = run_ok(&[
            "--trace-spans",
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
        ]);
        if ninec_obs::is_compiled() {
            assert!(msg.contains("cli_compress"), "{msg}");
            assert!(msg.contains("encode_chunked"), "{msg}");
        } else {
            assert!(msg.contains("# spans (0 events)"), "{msg}");
        }
    }

    #[test]
    fn frame_roundtrip_through_9cf_container() {
        let dir = tmpdir("frame");
        let cubes = dir.join("f.cubes");
        let frame = dir.join("f.9cf");
        let back = dir.join("back.cubes");
        run_ok(&[
            "generate",
            "custom:24,64,75",
            "-o",
            path_str(&cubes),
            "--seed",
            "7",
        ]);
        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame),
            "--threads",
            "4",
            "--segment-bits",
            "256",
        ]);
        assert!(msg.contains("9CSF frame"), "{msg}");
        // Byte-identical at every thread count.
        let bytes4 = fs::read(&frame).unwrap();
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame),
            "--threads",
            "1",
            "--segment-bits",
            "256",
        ]);
        assert_eq!(fs::read(&frame).unwrap(), bytes4);
        let msg = run_ok(&["info", path_str(&frame)]);
        assert!(msg.contains("9CSF frame"), "{msg}");
        run_ok(&[
            "decompress",
            path_str(&frame),
            "-o",
            path_str(&back),
            "--threads",
            "2",
            "--fill",
            "keep",
        ]);
        let orig = ninec_testdata::io::read_test_set_file(&cubes).unwrap();
        let round = ninec_testdata::io::read_test_set_file(&back).unwrap();
        assert_eq!(round.total_bits(), orig.total_bits());
        let (a, b) = (orig.as_stream(), round.as_stream());
        for i in 0..a.len() {
            let s = a.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), b.get(i), "care bit {i}");
            }
        }
    }

    #[test]
    fn frame_rejects_fill_and_freq_directed() {
        let dir = tmpdir("framefill");
        let cubes = dir.join("f.cubes");
        run_ok(&["generate", "custom:8,32,70", "-o", path_str(&cubes)]);
        let out_9cf = dir.join("f.9cf");
        assert!(matches!(
            run_err(&[
                "compress",
                path_str(&cubes),
                "-o",
                path_str(&out_9cf),
                "--fill",
                "zero",
            ]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&[
                "compress",
                path_str(&cubes),
                "-o",
                path_str(&out_9cf),
                "--freq-directed",
            ]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn corrupt_frame_is_a_failed_error() {
        let dir = tmpdir("framecorrupt");
        let cubes = dir.join("c.cubes");
        let frame = dir.join("c.9cf");
        run_ok(&["generate", "custom:8,64,70", "-o", path_str(&cubes)]);
        run_ok(&["compress", path_str(&cubes), "-o", path_str(&frame)]);
        // Truncate the frame: typed Failed (exit 3), never a panic.
        let mut bytes = fs::read(&frame).unwrap();
        bytes.truncate(bytes.len() - 1);
        fs::write(&frame, &bytes).unwrap();
        let err = run_err(&["decompress", path_str(&frame), "-o", "out"]);
        assert!(matches!(err, CliError::Failed(_)));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn salvage_decompress_distinguishes_full_from_partial_recovery() {
        let dir = tmpdir("salvage");
        let cubes = dir.join("s.cubes");
        let frame_path = dir.join("s.9cf");
        let back = dir.join("back.cubes");
        run_ok(&["generate", "custom:24,64,75", "-o", path_str(&cubes)]);
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame_path),
            "--segment-bits",
            "256",
        ]);
        // Intact frame: --salvage is a no-op, exit 0.
        let msg = run_ok(&[
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&back),
            "--salvage",
            "--fill",
            "keep",
        ]);
        assert!(!msg.contains("partial"), "{msg}");

        // Corrupt one payload byte of the first segment.
        let mut bytes = fs::read(&frame_path).unwrap();
        bytes[frame::HEADER_BYTES + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        fs::write(&frame_path, &bytes).unwrap();

        // Strict decompress fails closed (exit 3)...
        let err = run_err(&["decompress", path_str(&frame_path), "-o", path_str(&back)]);
        assert_eq!(err.exit_code(), 3);

        // ...salvage writes the output and reports partial recovery (5).
        let args: Vec<String> = [
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&back),
            "--salvage",
            "--fill",
            "keep",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut out = Vec::new();
        let err = run(&args, &mut out).unwrap_err();
        assert!(matches!(err, CliError::PartialRecovery(_)));
        assert_eq!(err.exit_code(), 5);
        assert!(err.report().contains("damaged"), "{}", err.report());
        let written = String::from_utf8(out).unwrap();
        assert!(written.contains("partial recovery"), "{written}");
        let set = ninec_testdata::io::read_test_set_file(&back).unwrap();
        let orig = ninec_testdata::io::read_test_set_file(&cubes).unwrap();
        assert_eq!(set.total_bits(), orig.total_bits());

        // `info` prints the damage map instead of dying on the bad CRC.
        let msg = run_ok(&["info", path_str(&frame_path)]);
        assert!(msg.contains("damaged segment 0"), "{msg}");
        assert!(msg.contains("intact"), "{msg}");

        // --salvage makes no sense for the textual format.
        let te = dir.join("s.te");
        run_ok(&["compress", path_str(&cubes), "-o", path_str(&te)]);
        assert!(matches!(
            run_err(&[
                "decompress",
                path_str(&te),
                "-o",
                path_str(&back),
                "--salvage"
            ]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn threads_flag_on_te_path_is_bit_identical_to_serial() {
        let dir = tmpdir("threadste");
        let cubes = dir.join("t.cubes");
        let serial = dir.join("serial.te");
        let parallel = dir.join("parallel.te");
        run_ok(&["generate", "custom:16,64,75", "-o", path_str(&cubes)]);
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&serial),
            "--fill",
            "keep",
        ]);
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&parallel),
            "--threads",
            "8",
            "--segment-bits",
            "128",
            "--fill",
            "keep",
        ]);
        assert_eq!(
            fs::read_to_string(&serial).unwrap(),
            fs::read_to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn bad_thread_flags_are_usage_errors() {
        assert!(matches!(
            run_err(&["compress", "x", "-o", "y", "--threads", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["compress", "x", "-o", "y", "--threads", "lots"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["compress", "x", "-o", "y", "--segment-bits", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["compress", "x", "-o", "y", "--segment-bits"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn usage_documents_the_full_exit_code_contract() {
        // The doc and the implementation must not drift: every error
        // class's exit code appears in the EXIT_CODES block exactly as
        // `CliError::exit_code` reports it, plus success (0), and the
        // block itself appears verbatim in the help text.
        assert!(
            USAGE.contains(EXIT_CODES),
            "USAGE must embed EXIT_CODES verbatim:\n{}",
            USAGE.as_str()
        );
        let documented: Vec<(u8, CliError)> = vec![
            (2, CliError::Usage("x".into())),
            (3, CliError::Failed("x".into())),
            (4, CliError::Io(std::io::Error::other("x"))),
            (5, CliError::PartialRecovery("x".into())),
            (
                6,
                CliError::Service {
                    code: 6,
                    message: "busy".into(),
                },
            ),
            (
                7,
                CliError::Service {
                    code: 7,
                    message: "rate limited".into(),
                },
            ),
            (
                8,
                CliError::Service {
                    code: 8,
                    message: "deadline exceeded".into(),
                },
            ),
        ];
        assert!(
            EXIT_CODES.contains("\n    0   success"),
            "success line missing:\n{EXIT_CODES}"
        );
        for (code, err) in documented {
            assert_eq!(err.exit_code(), code, "{err:?}");
            assert!(
                EXIT_CODES.contains(&format!("\n    {code}   ")),
                "exit code {code} not documented:\n{EXIT_CODES}"
            );
        }
        // The serve wire statuses reuse the same numbers — a drift here
        // would silently break the exit-code pass-through.
        assert_eq!(ninec_serve::Status::BadRequest as u8, 2);
        assert_eq!(ninec_serve::Status::Failed as u8, 3);
        assert_eq!(ninec_serve::Status::Io as u8, 4);
        assert_eq!(ninec_serve::Status::Partial as u8, 5);
        assert_eq!(ninec_serve::Status::Busy as u8, 6);
        assert_eq!(ninec_serve::Status::RateLimited as u8, 7);
        assert_eq!(ninec_serve::Status::DeadlineExceeded as u8, 8);
        // A wire status of 0 must never make a failure exit 0.
        assert_eq!(
            CliError::Service {
                code: 0,
                message: "confused server".into()
            }
            .exit_code(),
            3
        );
        // `--help` prints the same contract.
        assert!(run_ok(&["help"]).contains(EXIT_CODES));
    }

    #[test]
    fn readme_quotes_the_exit_code_block_verbatim() {
        // The README's exit-code section is a copy of EXIT_CODES; this
        // test is what keeps the copy honest.
        let readme = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
        let text = fs::read_to_string(readme).expect("README.md at the workspace root");
        assert!(
            text.contains(EXIT_CODES),
            "README.md must quote the EXIT_CODES block verbatim; update it \
             from crates/cli/src/lib.rs"
        );
    }

    #[test]
    fn client_roundtrips_against_a_live_server() {
        let mut server = ninec_serve::Server::start(ninec_serve::ServeConfig::default())
            .expect("ephemeral server starts");
        let addr = server.addr().to_string();
        let dir = tmpdir("cliserve");
        let cubes = dir.join("c.cubes");
        run_ok(&["generate", "custom:8,40,70", "-o", path_str(&cubes)]);
        let frame = dir.join("c.9cf");
        let msg = run_ok(&[
            "client",
            &addr,
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame),
        ]);
        assert!(msg.contains("over the wire"), "{msg}");
        let info = run_ok(&["client", &addr, "info", path_str(&frame)]);
        assert!(info.contains("segments"), "{info}");
        let trits = dir.join("c.trits");
        let msg = run_ok(&[
            "client",
            &addr,
            "decompress",
            path_str(&frame),
            "-o",
            path_str(&trits),
        ]);
        assert!(msg.contains("strict"), "{msg}");
        let text = fs::read_to_string(&trits).unwrap();
        assert!(text.chars().all(|c| "01X".contains(c)), "{text}");
        let msg = run_ok(&["client", &addr, "ping"]);
        assert!(msg.contains("tenant default"), "{msg}");
        server.shutdown();
    }

    #[test]
    fn client_range_reads_a_hosted_archive() {
        let dir = tmpdir("cliarcrange");
        let (frame, _) = small_v3_frame(&dir);
        let arc = dir.join("hosted.9ca");
        let _ = fs::remove_file(&arc);
        run_ok(&["archive", path_str(&frame), "-o", path_str(&arc)]);
        let mut server = ninec_serve::Server::start(ninec_serve::ServeConfig {
            archive: Some(path_str(&arc).to_string()),
            ..ninec_serve::ServeConfig::default()
        })
        .expect("ephemeral server starts");
        let addr = server.addr().to_string();
        // The served range must match the local random-access decode.
        let local = dir.join("local.txt");
        run_ok(&[
            "extract",
            path_str(&arc),
            "--range",
            "5:20",
            "-o",
            path_str(&local),
        ]);
        let remote = dir.join("remote.txt");
        let msg = run_ok(&[
            "client",
            &addr,
            "range",
            "--frame",
            "0",
            "--range",
            "5:20",
            "-o",
            path_str(&remote),
        ]);
        assert!(msg.contains("20 trits written"), "{msg}");
        assert_eq!(
            fs::read_to_string(&remote).unwrap(),
            fs::read_to_string(&local).unwrap()
        );
        // Missing coordinates are a usage error before anything is sent.
        let err = run_err(&["client", &addr, "range"]);
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // Out-of-range coordinates come back as the wire's BadRequest.
        let err = run_err(&["client", &addr, "range", "--frame", "7", "--range", "0:1"]);
        assert!(matches!(err, CliError::Service { code: 2, .. }), "{err:?}");
        server.shutdown();
    }

    #[test]
    fn client_maps_wire_refusals_onto_exit_codes() {
        let mut server = ninec_serve::Server::start(ninec_serve::ServeConfig::default())
            .expect("ephemeral server starts");
        let addr = server.addr().to_string();
        // Unknown tenant: BadRequest on the wire, exit 2 locally.
        let err = run_err(&["client", &addr, "ping", "--tenant", "ghost"]);
        assert!(matches!(err, CliError::Service { code: 2, .. }), "{err:?}");
        assert_eq!(err.exit_code(), 2);
        // A garbage frame: the server fails the decode, exit 3.
        let dir = tmpdir("cliwirecodes");
        let bogus = dir.join("bogus.9cf");
        fs::write(&bogus, b"not a frame").unwrap();
        let err = run_err(&[
            "client",
            &addr,
            "decompress",
            path_str(&bogus),
            "-o",
            path_str(&dir.join("out.trits")),
        ]);
        assert!(matches!(err, CliError::Service { code: 3, .. }), "{err:?}");
        server.shutdown();
    }

    #[test]
    fn serve_flag_validation() {
        assert!(matches!(
            run_err(&["serve", "stray-positional"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["serve", "--handler-threads", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["serve", "--tenants"]),
            CliError::Usage(_)
        ));
        // A tenants file that does not parse is an operation failure.
        let dir = tmpdir("servetenants");
        let bad = dir.join("tenants.conf");
        fs::write(&bad, "[tenant.x]\nnot-a-key = 1\n").unwrap();
        assert!(matches!(
            run_err(&["serve", "--tenants", path_str(&bad)]),
            CliError::Failed(_)
        ));
        // The flag-to-config mapping itself.
        let opts = parse_opts(&[
            "--addr".into(),
            "0.0.0.0:7777".into(),
            "--no-http".into(),
            "--max-inflight".into(),
            "3".into(),
            "--degrade-threshold".into(),
            "5".into(),
            "--handler-threads".into(),
            "2".into(),
        ])
        .unwrap();
        let config = serve_config_from_opts(&opts).unwrap();
        assert_eq!(config.addr, "0.0.0.0:7777");
        assert!(!config.http);
        assert_eq!(config.max_inflight, 3);
        assert_eq!(config.degrade_threshold, 5);
        assert_eq!(config.handler_threads, 2);
    }

    #[test]
    fn parity_flag_validation() {
        let dir = tmpdir("parityflags");
        let cubes = dir.join("p.cubes");
        run_ok(&["generate", "custom:8,32,70", "-o", path_str(&cubes)]);
        // Malformed specs and impossible geometry are usage errors (2).
        for bad in ["4", "4:", ":1", "a:b", "0:1", "200:200"] {
            let err = run_err(&[
                "compress",
                path_str(&cubes),
                "-o",
                path_str(&dir.join("p.9cf")),
                "--parity",
                bad,
            ]);
            assert!(matches!(err, CliError::Usage(_)), "--parity {bad}: {err:?}");
        }
        // Parity needs the frame container.
        assert!(matches!(
            run_err(&[
                "compress",
                path_str(&cubes),
                "-o",
                path_str(&dir.join("p.te")),
                "--parity",
                "4:1",
            ]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn repair_ladder_rebuilds_a_corrupted_v3_frame_bit_exact() {
        let dir = tmpdir("repair");
        let cubes = dir.join("r.cubes");
        let frame_path = dir.join("r.9cf");
        let clean_out = dir.join("clean.cubes");
        let back = dir.join("back.cubes");
        run_ok(&["generate", "custom:24,64,75", "-o", path_str(&cubes)]);
        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame_path),
            "--segment-bits",
            "256",
            "--parity",
            "4:1",
        ]);
        assert!(msg.contains("parity 4:1"), "{msg}");

        // `info` reports the parity geometry.
        let msg = run_ok(&["info", path_str(&frame_path)]);
        assert!(msg.contains("parity 4:1"), "{msg}");
        assert!(msg.contains("interleaved groups"), "{msg}");

        // Reference output from the intact frame.
        run_ok(&[
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&clean_out),
            "--fill",
            "keep",
        ]);

        // Corrupt one payload byte of the first data segment.
        let pristine = fs::read(&frame_path).unwrap();
        let mut bytes = pristine.clone();
        bytes[frame::HEADER_BYTES_V3 + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        fs::write(&frame_path, &bytes).unwrap();

        // Default decompress climbs to repair: exit 0, bit-exact output.
        let msg = run_ok(&[
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&back),
            "--fill",
            "keep",
        ]);
        assert!(msg.contains("rebuilt from parity"), "{msg}");
        assert_eq!(
            fs::read_to_string(&back).unwrap(),
            fs::read_to_string(&clean_out).unwrap(),
            "repair must be bit-exact"
        );

        // --no-repair without --salvage fails closed (3)...
        let err = run_err(&[
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&back),
            "--no-repair",
        ]);
        assert!(matches!(err, CliError::Failed(_)), "{err:?}");
        assert_eq!(err.exit_code(), 3);

        // ...and with --salvage keeps the erasure as partial recovery (5).
        let err = run_err(&[
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&back),
            "--no-repair",
            "--salvage",
            "--fill",
            "keep",
        ]);
        assert!(matches!(err, CliError::PartialRecovery(_)), "{err:?}");
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn stdin_decompress_rejects_salvage() {
        // The message must be the salvage-specific one: a bare `-` is a
        // positional stdin pseudo-path, not an "unknown flag".
        match run_err(&["decompress", "-", "-o", "out.cubes", "--salvage"]) {
            CliError::Usage(msg) => assert!(msg.contains("whole frame"), "{msg}"),
            other => panic!("expected Usage, got {other:?}"),
        }
    }

    #[test]
    fn bare_dash_parses_as_a_positional_input() {
        let raw: Vec<String> = ["-", "--fill", "keep"]
            .iter()
            .map(|s| (*s).into())
            .collect();
        let opts = parse_opts(&raw).unwrap();
        assert_eq!(opts.positional, vec!["-".to_owned()]);
    }

    #[test]
    fn stats_flag_rejects_unknown_format() {
        assert!(matches!(
            run_err(&["help", "--stats", "xml"]),
            CliError::Usage(_)
        ));
        assert!(matches!(run_err(&["help", "--stats"]), CliError::Usage(_)));
    }

    #[test]
    fn stats_prom_prints_prometheus_exposition() {
        let dir = tmpdir("statsprom");
        let cubes = dir.join("s.cubes");
        let te = dir.join("s.te");
        run_ok(&["generate", "custom:12,64,80", "-o", path_str(&cubes)]);
        let msg = run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&te),
            "--stats",
            "prom",
        ]);
        if ninec_obs::is_compiled() {
            assert!(msg.contains("# TYPE"), "{msg}");
            assert!(msg.contains("ninec_encode_blocks"), "{msg}");
            // Exposition-format shape: every histogram ends in +Inf.
            assert!(msg.contains("le=\"+Inf\""), "{msg}");
        } else {
            assert!(msg.contains("CR"), "{msg}");
        }
    }

    /// Builds a parity-protected v3 frame with one corrupted payload
    /// byte in `dir`, returning the frame path.
    fn corrupted_v3_frame(dir: &Path) -> PathBuf {
        let cubes = dir.join("t.cubes");
        let frame_path = dir.join("t.9cf");
        run_ok(&["generate", "custom:24,64,75", "-o", path_str(&cubes)]);
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame_path),
            "--segment-bits",
            "256",
            "--parity",
            "4:1",
        ]);
        let mut bytes = fs::read(&frame_path).unwrap();
        bytes[frame::HEADER_BYTES_V3 + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        fs::write(&frame_path, &bytes).unwrap();
        frame_path
    }

    #[test]
    fn trace_verb_prints_per_segment_audit() {
        let dir = tmpdir("traceverb");
        let frame_path = corrupted_v3_frame(&dir);

        // Repair rebuilds the damage: exit 0, audit names the rungs.
        let msg = run_ok(&["trace", path_str(&frame_path), "--threads", "2"]);
        assert!(msg.contains("segments recovered"), "{msg}");
        assert!(msg.contains("segment 0: repaired"), "{msg}");
        assert!(msg.contains("(group 0, 1 parity shard)"), "{msg}");
        assert!(msg.contains("strict"), "{msg}");

        // --no-repair: the damage is salvaged, exit code 5.
        let args: Vec<String> = ["trace", path_str(&frame_path), "--no-repair"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        let err = run(&args, &mut out).unwrap_err();
        assert!(matches!(err, CliError::PartialRecovery(_)), "{err:?}");
        assert_eq!(err.exit_code(), 5);
        let msg = String::from_utf8(out).unwrap();
        assert!(msg.contains("segment 0: salvaged"), "{msg}");

        // Not a frame: typed Failed.
        let te = dir.join("t.te");
        fs::write(&te, "junk").unwrap();
        assert!(matches!(
            run_err(&["trace", path_str(&te)]),
            CliError::Failed(_)
        ));
    }

    #[test]
    fn trace_verb_json_is_a_parseable_audit_document() {
        let dir = tmpdir("tracejson");
        let frame_path = corrupted_v3_frame(&dir);
        let msg = run_ok(&["trace", path_str(&frame_path), "--json"]);
        let doc: serde_json::Value =
            serde_json::from_str(msg.trim()).expect("trace --json must be valid JSON");
        assert_eq!(doc["repaired"].as_u64(), Some(1), "{doc:?}");
        let segs = doc["segments"].as_array().expect("segments array");
        assert!(!segs.is_empty());
        assert_eq!(segs[0]["rung"].as_str(), Some("repaired"), "{doc:?}");
        assert_eq!(segs[0]["group"].as_u64(), Some(0), "{doc:?}");
        assert_eq!(segs[1]["rung"].as_str(), Some("strict"), "{doc:?}");
    }

    #[test]
    fn trace_flag_writes_a_chrome_trace_file() {
        let dir = tmpdir("traceflag");
        let frame_path = corrupted_v3_frame(&dir);
        let back = dir.join("back.cubes");
        let trace_json = dir.join("decode.trace.json");
        run_ok(&[
            "decompress",
            path_str(&frame_path),
            "-o",
            path_str(&back),
            "--fill",
            "keep",
            "--trace",
            path_str(&trace_json),
        ]);
        let doc: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(&trace_json).unwrap())
                .expect("--trace file must be valid Chrome trace JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        if ninec_obs::is_compiled() {
            assert!(
                events
                    .iter()
                    .any(|e| e["name"].as_str() == Some("segment_decode")),
                "expected segment_decode spans in {doc:?}"
            );
        } else {
            // Compiled out: still a valid, empty document.
            assert!(doc["displayTimeUnit"].as_str() == Some("ns"));
        }

        // A .jsonl path selects the JSON-lines dump: one object per line.
        let trace_jsonl = dir.join("decode.jsonl");
        run_ok(&[
            "trace",
            path_str(&frame_path),
            "--trace",
            path_str(&trace_jsonl),
        ]);
        let text = fs::read_to_string(&trace_jsonl).unwrap();
        for line in text.lines() {
            let obj: serde_json::Value = serde_json::from_str(line).expect("jsonl line parses");
            assert!(obj["kind"].as_str().is_some(), "{obj:?}");
        }
        if ninec_obs::is_compiled() {
            assert!(!text.is_empty(), "recorder-on jsonl dump must have events");
        }
    }

    /// Generates cubes and compresses them into a parity-protected
    /// frame; returns `(frame path, frame bytes)`.
    fn small_v3_frame(dir: &Path) -> (PathBuf, Vec<u8>) {
        let cubes = dir.join("a.cubes");
        let frame = dir.join("a.9cf");
        run_ok(&["generate", "custom:12,48,70", "-o", path_str(&cubes)]);
        run_ok(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&frame),
            "--segment-bits",
            "192",
            "--parity",
            "2:1",
            "--verify",
        ]);
        let bytes = fs::read(&frame).unwrap();
        (frame, bytes)
    }

    #[test]
    fn archive_extract_scrub_roundtrip() {
        let dir = tmpdir("archive_roundtrip");
        let (frame, frame_bytes) = small_v3_frame(&dir);
        let arc = dir.join("a.9ca");
        let _ = fs::remove_file(&arc);

        // Two appends of the same frame: full dedup, both verified.
        let msg = run_ok(&[
            "archive",
            path_str(&frame),
            path_str(&frame),
            "-o",
            path_str(&arc),
            "--verify",
        ]);
        assert!(msg.contains("verified"), "{msg}");
        assert!(msg.contains("2 frames"), "{msg}");

        // `info` sniffs the archive and reports the dedup shape.
        let msg = run_ok(&["info", path_str(&arc)]);
        assert!(msg.contains("9CA archive"), "{msg}");
        assert!(msg.contains("dedup ratio"), "{msg}");
        assert!(msg.contains("parity 2:1"), "{msg}");

        // Byte-exact extraction of the second frame.
        let back = dir.join("back.9cf");
        let msg = run_ok(&[
            "extract",
            path_str(&arc),
            "--frame",
            "1",
            "-o",
            path_str(&back),
            "--verify",
        ]);
        assert!(msg.contains("verified"), "{msg}");
        assert_eq!(fs::read(&back).unwrap(), frame_bytes);

        // Random access through the seek index: text over {0,1,X}.
        let range_out = dir.join("range.txt");
        run_ok(&[
            "extract",
            path_str(&arc),
            "--range",
            "5:20",
            "-o",
            path_str(&range_out),
        ]);
        let text = fs::read_to_string(&range_out).unwrap();
        assert_eq!(text.len(), 20, "{text:?}");
        assert!(text.chars().all(|c| "01X".contains(c)), "{text:?}");

        // A clean scrub exits 0.
        let msg = run_ok(&["scrub", path_str(&arc)]);
        assert!(msg.contains("0 lost"), "{msg}");
    }

    #[test]
    fn scrub_repairs_rot_and_check_reports_it() {
        let dir = tmpdir("archive_scrub");
        let (frame, frame_bytes) = small_v3_frame(&dir);
        let arc = dir.join("s.9ca");
        let _ = fs::remove_file(&arc);
        run_ok(&["archive", path_str(&frame), "-o", path_str(&arc)]);

        // Rot one byte of the first stored blob (past the 12-byte store
        // header, inside the CRC-covered segment header).
        let mut store = fs::read(&arc).unwrap();
        store[16] ^= 0xFF;
        fs::write(&arc, &store).unwrap();

        // --check reports without repairing: exit 5.
        let err = run_err(&["scrub", path_str(&arc), "--check"]);
        assert!(matches!(err, CliError::PartialRecovery(_)), "{err:?}");
        assert_eq!(err.exit_code(), 5);

        // Repair mode rebuilds from parity and exits 0 with a report.
        let msg = run_ok(&["scrub", path_str(&arc)]);
        assert!(msg.contains("1 repaired"), "{msg}");
        assert!(msg.contains("repaired bit-exact"), "{msg}");

        // The store is healed: extraction is byte-exact again.
        let back = dir.join("healed.9cf");
        run_ok(&["extract", path_str(&arc), "-o", path_str(&back)]);
        assert_eq!(fs::read(&back).unwrap(), frame_bytes);
    }

    #[test]
    fn info_on_binary_junk_is_a_typed_usage_error() {
        let dir = tmpdir("info_junk");
        let junk = dir.join("junk.bin");
        fs::write(&junk, [0x7Fu8, 0x45, 0x4C, 0x46, 0x02, 0x01]).unwrap();
        let err = run_err(&["info", path_str(&junk)]);
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("not a 9CSF/9CA container"), "{msg}");
        assert!(msg.contains("7f"), "{msg}");
        // Pointing an archive verb at junk is the same typed rejection.
        let err = run_err(&["scrub", path_str(&junk)]);
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn decode_limit_flags_reject_over_budget_inputs_with_exit_3() {
        let dir = tmpdir("limit_flags");
        let (frame, _) = small_v3_frame(&dir);
        let arc = dir.join("l.9ca");
        let _ = fs::remove_file(&arc);
        run_ok(&["archive", path_str(&frame), "-o", path_str(&arc)]);

        // The frame has several segments; a ceiling of 1 is a typed
        // failure (exit 3) on both the frame and the archive paths.
        let err = run_err(&[
            "decompress",
            path_str(&frame),
            "-o",
            path_str(&dir.join("out.cubes")),
            "--max-segments",
            "1",
        ]);
        assert!(matches!(err, CliError::Failed(_)), "{err:?}");
        assert_eq!(err.exit_code(), 3);
        let err = run_err(&["info", path_str(&arc), "--max-segments", "1"]);
        assert!(matches!(err, CliError::Failed(_)), "{err:?}");
        assert_eq!(err.exit_code(), 3);
        let err = run_err(&[
            "extract",
            path_str(&arc),
            "-o",
            path_str(&dir.join("x.9cf")),
            "--max-total-alloc",
            "4",
        ]);
        assert!(matches!(err, CliError::Failed(_)), "{err:?}");
        // Flag validation.
        assert!(matches!(
            run_err(&["info", "x", "--max-segments", "0"]),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn verify_flag_is_frames_only() {
        let dir = tmpdir("verify_te");
        let cubes = dir.join("v.cubes");
        run_ok(&["generate", "custom:4,16,60", "-o", path_str(&cubes)]);
        let err = run_err(&[
            "compress",
            path_str(&cubes),
            "-o",
            path_str(&dir.join("v.te")),
            "--verify",
        ]);
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }
}

//! The `ninec` command-line tool. See `ninec help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match ninec_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ninec: {e}");
            ExitCode::from(2)
        }
    }
}

//! The `ninec` command-line tool. See `ninec help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match ninec_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Structured report: headline plus the full source chain,
            // and a distinct exit code per error class (usage=2,
            // failed=3, i/o=4) so scripts can tell them apart.
            eprintln!("{}", e.report());
            ExitCode::from(e.exit_code())
        }
    }
}

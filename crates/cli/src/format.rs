//! The `.te` compressed-stream file format.
//!
//! A small, self-describing text container for a 9C-compressed test set:
//!
//! ```text
//! # ninec compressed test stream
//! k: 8
//! source-len: 23754
//! pattern-len: 214
//! lengths: 1 2 5 5 5 5 5 5 4
//! data:
//! 0110100111010...
//! ```
//!
//! `lengths` records the (possibly frequency-reassigned) codeword lengths
//! so the matching decoder can be reconstructed; `data` lines may contain
//! `X` when the leftover don't-cares were kept for fill-at-the-ATE flows.

use ninec::code::CodeTable;
use ninec::encode::Encoded;
use ninec_testdata::trit::TritVec;
use std::fmt;

/// A parsed `.te` file.
#[derive(Debug, Clone, PartialEq)]
pub struct TeFile {
    /// Block size `K`.
    pub k: usize,
    /// `|T_D|` — decoded length in symbols.
    pub source_len: usize,
    /// Scan length of the original set (0 when unknown).
    pub pattern_len: usize,
    /// The code table (from its lengths).
    pub table: CodeTable,
    /// The compressed stream (may contain `X`).
    pub stream: TritVec,
}

impl TeFile {
    /// Captures an [`Encoded`] value (plus the originating pattern length)
    /// into a `.te` structure.
    pub fn from_encoded(encoded: &Encoded, pattern_len: usize) -> Self {
        Self {
            k: encoded.k(),
            source_len: encoded.source_len(),
            pattern_len,
            table: encoded.table().clone(),
            stream: encoded.stream().clone(),
        }
    }

    /// Renders the file.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# ninec compressed test stream\n");
        out.push_str(&format!("k: {}\n", self.k));
        out.push_str(&format!("source-len: {}\n", self.source_len));
        out.push_str(&format!("pattern-len: {}\n", self.pattern_len));
        let lengths: Vec<String> = self.table.lengths().iter().map(u8::to_string).collect();
        out.push_str(&format!("lengths: {}\n", lengths.join(" ")));
        out.push_str("data:\n");
        let text = self.stream.to_string();
        for chunk in text.as_bytes().chunks(72) {
            out.push_str(std::str::from_utf8(chunk).expect("ascii"));
            out.push('\n');
        }
        out
    }

    /// Parses a `.te` file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTeError`] on missing/invalid headers or bad data
    /// characters.
    pub fn parse(text: &str) -> Result<Self, ParseTeError> {
        let mut k = None;
        let mut source_len = None;
        let mut pattern_len = 0usize;
        let mut lengths: Option<[u8; 9]> = None;
        let mut lines = text.lines().enumerate();
        let mut data_start = None;
        for (no, raw) in lines.by_ref() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "data:" {
                data_start = Some(no + 1);
                break;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or(ParseTeError::Malformed { line: no + 1 })?;
            let value = value.trim();
            match key.trim() {
                "k" => k = Some(parse_usize(value, no + 1)?),
                "source-len" => source_len = Some(parse_usize(value, no + 1)?),
                "pattern-len" => pattern_len = parse_usize(value, no + 1)?,
                "lengths" => {
                    let parts: Vec<u8> = value
                        .split_whitespace()
                        .map(|p| p.parse::<u8>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| ParseTeError::Malformed { line: no + 1 })?;
                    let arr: [u8; 9] = parts
                        .try_into()
                        .map_err(|_| ParseTeError::Malformed { line: no + 1 })?;
                    lengths = Some(arr);
                }
                _ => return Err(ParseTeError::UnknownKey { line: no + 1 }),
            }
        }
        let data_line = data_start.ok_or(ParseTeError::MissingField { field: "data" })?;
        let mut stream = TritVec::new();
        for (no, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let chunk: TritVec = line
                .parse()
                .map_err(|_| ParseTeError::Malformed { line: no + 1 })?;
            stream.extend_from_tritvec(&chunk);
        }
        let _ = data_line;
        let lengths = lengths.ok_or(ParseTeError::MissingField { field: "lengths" })?;
        let table = CodeTable::from_lengths(&lengths).map_err(|_| ParseTeError::BadLengths)?;
        Ok(Self {
            k: k.ok_or(ParseTeError::MissingField { field: "k" })?,
            source_len: source_len.ok_or(ParseTeError::MissingField {
                field: "source-len",
            })?,
            pattern_len,
            table,
            stream,
        })
    }

    /// Decodes the stream back to `|T_D|` symbols.
    ///
    /// # Errors
    ///
    /// Propagates [`ninec::decode::DecodeError`].
    pub fn decode(&self) -> Result<TritVec, ninec::decode::DecodeError> {
        ninec::session::DecodeSession::new()
            .k(self.k)
            .table(self.table.clone())
            .source_len(self.source_len)
            .decode_trits(&self.stream)
    }
}

fn parse_usize(s: &str, line: usize) -> Result<usize, ParseTeError> {
    s.parse().map_err(|_| ParseTeError::Malformed { line })
}

/// Error parsing a `.te` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTeError {
    /// Line did not match the expected structure.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown header key.
    UnknownKey {
        /// 1-based line number.
        line: usize,
    },
    /// A required header was missing.
    MissingField {
        /// The missing field's name.
        field: &'static str,
    },
    /// The codeword lengths violate the Kraft inequality.
    BadLengths,
}

impl fmt::Display for ParseTeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTeError::Malformed { line } => write!(f, "line {line}: malformed"),
            ParseTeError::UnknownKey { line } => write!(f, "line {line}: unknown header key"),
            ParseTeError::MissingField { field } => write!(f, "missing required field {field:?}"),
            ParseTeError::BadLengths => write!(f, "codeword lengths are not a valid prefix code"),
        }
    }
}

impl std::error::Error for ParseTeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec::encode::Encoder;
    use ninec_testdata::gen::SyntheticProfile;

    #[test]
    fn roundtrip_through_text() {
        let ts = SyntheticProfile::new("te", 10, 60, 0.7).generate(1);
        let encoded = Encoder::new(8).unwrap().encode_set(&ts);
        let te = TeFile::from_encoded(&encoded, ts.pattern_len());
        let text = te.to_text();
        let back = TeFile::parse(&text).unwrap();
        assert_eq!(back, te);
        let decoded = back.decode().unwrap();
        assert_eq!(decoded.len(), ts.total_bits());
    }

    #[test]
    fn long_streams_wrap_lines() {
        let ts = SyntheticProfile::new("wrap", 10, 200, 0.4).generate(2);
        let encoded = Encoder::new(8).unwrap().encode_set(&ts);
        let te = TeFile::from_encoded(&encoded, ts.pattern_len());
        let text = te.to_text();
        assert!(text.lines().all(|l| l.len() <= 72));
        assert_eq!(TeFile::parse(&text).unwrap().stream, te.stream);
    }

    #[test]
    fn missing_fields_rejected() {
        assert_eq!(
            TeFile::parse("k: 8\ndata:\n0\n"),
            Err(ParseTeError::MissingField { field: "lengths" })
        );
        assert_eq!(
            TeFile::parse("k: 8\n"),
            Err(ParseTeError::MissingField { field: "data" })
        );
    }

    #[test]
    fn bad_headers_rejected() {
        assert!(matches!(
            TeFile::parse("k: eight\ndata:\n"),
            Err(ParseTeError::Malformed { line: 1 })
        ));
        assert!(matches!(
            TeFile::parse("frobnicate: 1\ndata:\n"),
            Err(ParseTeError::UnknownKey { line: 1 })
        ));
        assert_eq!(
            TeFile::parse("k: 8\nsource-len: 8\nlengths: 1 1 5 5 5 5 5 5 4\ndata:\n0\n"),
            Err(ParseTeError::BadLengths)
        );
    }

    #[test]
    fn keeps_x_in_data() {
        let te_text =
            "k: 8\nsource-len: 8\npattern-len: 8\nlengths: 1 2 5 5 5 5 5 5 4\ndata:\n1110001X\n0\n";
        // "11100" = C5, payload "01X0"? Construct consistently instead:
        let te = TeFile::parse(te_text).unwrap();
        assert_eq!(te.stream.count_x(), 1);
    }
}

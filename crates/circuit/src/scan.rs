//! Scan-chain insertion.
//!
//! Converts a sequential circuit into its testable form: every flip-flop's
//! `D` pin is fronted by a scan multiplexer so that, with `scan_en` high,
//! the flops form one serial shift register from `scan_in` to `scan_out` —
//! the structure every experiment in this workspace assumes and the 9C
//! decompressor feeds.
//!
//! The MUX is built from plain gates (`OR(AND(se, si), AND(!se, d))`), so
//! the stitched netlist stays simulatable and fault-simulatable with the
//! standard stack.

use crate::netlist::{Circuit, GateKind, NetId, NetlistError};

/// A scan-stitched circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedCircuit {
    /// The stitched netlist.
    pub circuit: Circuit,
    /// `scan_in` primary-input net.
    pub scan_in: NetId,
    /// `scan_en` primary-input net.
    pub scan_en: NetId,
    /// `scan_out` primary-output net (the last cell's `Q`).
    pub scan_out: NetId,
    /// The flops in scan order (`scan_in` feeds `chain[0]`; `chain.last()`
    /// drives `scan_out`). Net ids refer to the stitched netlist.
    pub chain: Vec<NetId>,
}

impl ScannedCircuit {
    /// Chain length (number of scan cells).
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }
}

/// Stitches all flip-flops of `circuit` into one scan chain, in their
/// declaration order.
///
/// # Errors
///
/// Returns [`InsertScanError::NoFlipFlops`] if the circuit has no
/// flip-flops, and [`InsertScanError::Netlist`] if stitching produced an
/// invalid netlist (cannot happen for valid inputs).
///
/// # Examples
///
/// ```
/// use ninec_circuit::bench::{parse_bench, S27};
/// use ninec_circuit::scan::insert_scan;
///
/// let s27 = parse_bench(S27)?;
/// let scanned = insert_scan(&s27)?;
/// assert_eq!(scanned.chain_len(), 3);
/// // 2 extra PIs (scan_in, scan_en), 1 extra PO (scan_out).
/// assert_eq!(scanned.circuit.primary_inputs().len(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn insert_scan(circuit: &Circuit) -> Result<ScannedCircuit, InsertScanError> {
    if circuit.dffs().is_empty() {
        return Err(InsertScanError::NoFlipFlops);
    }
    let mut c = circuit.clone();
    let scan_in = c.add_input("scan_in");
    let scan_en = c.add_input("scan_en");
    let n_se = c
        .add_gate("scan_en_n", GateKind::Not, vec![scan_en])
        .map_err(InsertScanError::Netlist)?;

    let chain: Vec<NetId> = circuit.dffs().to_vec();
    let mut serial_src = scan_in;
    for (pos, &ff) in chain.iter().enumerate() {
        let func_d = c.gate(ff).inputs[0];
        let shift = c
            .add_gate(
                &format!("scan_shift{pos}"),
                GateKind::And,
                vec![scan_en, serial_src],
            )
            .map_err(InsertScanError::Netlist)?;
        let hold = c
            .add_gate(
                &format!("scan_hold{pos}"),
                GateKind::And,
                vec![n_se, func_d],
            )
            .map_err(InsertScanError::Netlist)?;
        let mux = c
            .add_gate(&format!("scan_mux{pos}"), GateKind::Or, vec![shift, hold])
            .map_err(InsertScanError::Netlist)?;
        c.rewire_fanin(ff, 0, mux)
            .map_err(InsertScanError::Netlist)?;
        serial_src = ff; // next cell shifts from this cell's Q
    }
    let scan_out = *chain.last().expect("checked non-empty");
    c.mark_output(scan_out);
    let circuit = c.validate().map_err(InsertScanError::Netlist)?;
    Ok(ScannedCircuit {
        circuit,
        scan_in,
        scan_en,
        scan_out,
        chain,
    })
}

/// Error inserting a scan chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertScanError {
    /// The circuit has no flip-flops to stitch.
    NoFlipFlops,
    /// The stitched netlist failed validation (should not happen for a
    /// valid input circuit).
    Netlist(NetlistError),
}

impl std::fmt::Display for InsertScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertScanError::NoFlipFlops => write!(f, "circuit has no flip-flops to stitch"),
            InsertScanError::Netlist(e) => write!(f, "scan stitching failed: {e}"),
        }
    }
}

impl std::error::Error for InsertScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InsertScanError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, C17, S27};
    use crate::random::RandomCircuitSpec;

    #[test]
    fn s27_stitching_structure() {
        let s27 = parse_bench(S27).unwrap();
        let scanned = insert_scan(&s27).unwrap();
        // 3 flops -> 1 inverter + 3 * (2 AND + 1 OR) new gates.
        assert_eq!(
            scanned.circuit.num_logic_gates(),
            s27.num_logic_gates() + 1 + 9
        );
        assert_eq!(scanned.chain, s27.dffs().to_vec());
        // Every flop's D now comes from its scan mux.
        for (pos, &ff) in scanned.chain.iter().enumerate() {
            let d = scanned.circuit.gate(ff).inputs[0];
            assert_eq!(
                scanned.circuit.net_name(d),
                format!("scan_mux{pos}"),
                "flop {pos}"
            );
        }
        assert_eq!(scanned.circuit.net_name(scanned.scan_in), "scan_in");
        assert!(scanned
            .circuit
            .primary_outputs()
            .contains(&scanned.scan_out));
    }

    #[test]
    fn combinational_circuit_rejected() {
        let c17 = parse_bench(C17).unwrap();
        assert_eq!(insert_scan(&c17), Err(InsertScanError::NoFlipFlops));
    }

    #[test]
    fn random_circuits_stitch_cleanly() {
        for seed in 0..5 {
            let c = RandomCircuitSpec::new("sc", 4, 9, 40).generate(seed);
            let scanned = insert_scan(&c).unwrap();
            assert_eq!(scanned.chain_len(), 9);
            assert_eq!(
                scanned.circuit.topo_order().len(),
                scanned.circuit.num_gates()
            );
        }
    }

    #[test]
    fn rewire_fanin_validation() {
        let mut c = Circuit::new("rw");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate("g", GateKind::And, vec![a, a]).unwrap();
        c.rewire_fanin(g, 1, b).unwrap();
        assert_eq!(c.gate(g).inputs, vec![a, b]);
        assert!(c.rewire_fanin(g, 2, b).is_err());
        assert!(c.rewire_fanin(g, 0, 99).is_err());
    }
}

//! ISCAS `.bench` netlist parser and bundled benchmark circuits.
//!
//! The `.bench` format is the lingua franca of the ISCAS'85/'89 benchmark
//! suites:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = NAND(G0, G1)
//! G5  = DFF(G10)
//! ```
//!
//! Two genuine circuits ship with the crate ([`S27`], [`C17`]); larger
//! paper circuits are substituted by the generators in
//! [`random`](crate::random) (see `DESIGN.md` §4).

use crate::netlist::{Circuit, GateKind, NetlistError};
use std::fmt;

/// The ISCAS'89 `s27` benchmark (4 PIs, 1 PO, 3 DFFs, 10 logic gates).
pub const S27: &str = include_str!("data/s27.bench");

/// The ISCAS'85 `c17` benchmark (5 PIs, 2 POs, 6 NAND gates).
pub const C17: &str = include_str!("data/c17.bench");

/// Parses a `.bench` netlist.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate kinds, or
/// netlist-level inconsistencies.
///
/// # Examples
///
/// ```
/// use ninec_circuit::bench::{parse_bench, S27};
///
/// let s27 = parse_bench(S27)?;
/// assert_eq!(s27.primary_inputs().len(), 4);
/// assert_eq!(s27.dffs().len(), 3);
/// assert_eq!(s27.scan_view().cube_width(), 7);
/// # Ok::<(), ninec_circuit::bench::ParseBenchError>(())
/// ```
pub fn parse_bench(text: &str) -> Result<Circuit, ParseBenchError> {
    let mut gates: Vec<(String, GateKind, Vec<String>)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut name = "bench".to_owned();
    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        // Allow "# name" style headers to name the circuit.
        if let Some(rest) = raw.trim_start().strip_prefix('#') {
            let rest = rest.trim();
            if !rest.is_empty() && name == "bench" {
                name = rest.split_whitespace().next().unwrap_or("bench").to_owned();
            }
            continue;
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(arg) = directive(line, "INPUT") {
            gates.push((arg.to_owned(), GateKind::Input, vec![]));
        } else if let Some(arg) = directive(line, "OUTPUT") {
            outputs.push(arg.to_owned());
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let lhs = lhs.trim().to_owned();
            let rhs = rhs.trim();
            let (kind_str, args) = rhs
                .split_once('(')
                .ok_or(ParseBenchError::Malformed { line: line_no })?;
            let args = args
                .strip_suffix(')')
                .ok_or(ParseBenchError::Malformed { line: line_no })?;
            let kind = parse_kind(kind_str.trim()).ok_or_else(|| ParseBenchError::UnknownKind {
                line: line_no,
                kind: kind_str.trim().to_owned(),
            })?;
            let fanins: Vec<String> = args
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            gates.push((lhs, kind, fanins));
        } else {
            return Err(ParseBenchError::Malformed { line: line_no });
        }
    }
    Circuit::from_named_gates(&name, gates, &outputs).map_err(ParseBenchError::Netlist)
}

fn directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    rest.strip_prefix('(')?
        .trim_end()
        .strip_suffix(')')
        .map(str::trim)
}

fn parse_kind(s: &str) -> Option<GateKind> {
    match s.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "NAND" => Some(GateKind::Nand),
        "OR" => Some(GateKind::Or),
        "NOR" => Some(GateKind::Nor),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "DFF" => Some(GateKind::Dff),
        _ => None,
    }
}

/// Error parsing a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line matched no known construct.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown gate kind was used.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The unknown kind string.
        kind: String,
    },
    /// The parsed gates did not form a valid netlist.
    Netlist(NetlistError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Malformed { line } => write!(f, "line {line}: malformed"),
            ParseBenchError::UnknownKind { line, kind } => {
                write!(f, "line {line}: unknown gate kind {kind:?}")
            }
            ParseBenchError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_s27() {
        let c = parse_bench(S27).unwrap();
        assert_eq!(c.primary_inputs().len(), 4);
        assert_eq!(c.primary_outputs().len(), 1);
        assert_eq!(c.dffs().len(), 3);
        assert_eq!(c.num_logic_gates(), 10);
        assert_eq!(c.name(), "s27");
    }

    #[test]
    fn parses_c17() {
        let c = parse_bench(C17).unwrap();
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.dffs().len(), 0);
        assert_eq!(c.num_logic_gates(), 6);
    }

    #[test]
    fn dff_forward_reference_ok() {
        let text = "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = NOR(a, q)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.dffs().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# demo circuit\n\nINPUT(a)  # trailing comment\nOUTPUT(b)\nb = NOT(a)\n";
        let c = parse_bench(text).unwrap();
        assert_eq!(c.name(), "demo");
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn malformed_line_reported() {
        let err = parse_bench("INPUT(a)\nwat\n").unwrap_err();
        assert_eq!(err, ParseBenchError::Malformed { line: 2 });
    }

    #[test]
    fn unknown_kind_reported() {
        let err = parse_bench("INPUT(a)\nb = FROB(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::UnknownKind { line: 2, .. }));
    }

    #[test]
    fn unknown_fanin_reported() {
        let err = parse_bench("INPUT(a)\nb = NOT(zz)\nOUTPUT(b)\n").unwrap_err();
        assert!(matches!(
            err,
            ParseBenchError::Netlist(NetlistError::UnknownNet { .. })
        ));
    }

    #[test]
    fn combinational_cycle_reported() {
        let text = "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(y)\n";
        let err = parse_bench(text).unwrap_err();
        assert_eq!(
            err,
            ParseBenchError::Netlist(NetlistError::CombinationalCycle)
        );
    }
}

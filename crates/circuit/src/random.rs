//! Random sequential circuit generation.
//!
//! Stands in for the larger ISCAS'89 circuits that cannot be bundled:
//! generates structurally plausible gate-level netlists (bounded fanin,
//! locality-biased connectivity, DFF feedback) on which the ATPG and fault
//! simulator produce genuine test cubes.

use crate::netlist::{Circuit, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a random circuit.
///
/// # Examples
///
/// ```
/// use ninec_circuit::random::RandomCircuitSpec;
///
/// let spec = RandomCircuitSpec::new("r100", 8, 16, 100);
/// let c = spec.generate(1);
/// assert_eq!(c.primary_inputs().len(), 8);
/// assert_eq!(c.dffs().len(), 16);
/// assert_eq!(c.num_logic_gates(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomCircuitSpec {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs (≥ 1).
    pub num_inputs: usize,
    /// Number of D flip-flops (scan cells).
    pub num_ffs: usize,
    /// Number of combinational gates (≥ 1).
    pub num_gates: usize,
    /// Number of primary outputs carved from the last gates (≥ 1).
    pub num_outputs: usize,
}

impl RandomCircuitSpec {
    /// Creates a spec with `max(1, num_gates / 20)` primary outputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs` or `num_gates` is zero.
    pub fn new(name: &str, num_inputs: usize, num_ffs: usize, num_gates: usize) -> Self {
        assert!(
            num_inputs > 0 && num_gates > 0,
            "inputs and gates must be positive"
        );
        Self {
            name: name.to_owned(),
            num_inputs,
            num_ffs,
            num_gates,
            num_outputs: (num_gates / 20).max(1),
        }
    }

    /// Scan-view cube width of the generated circuits.
    pub fn cube_width(&self) -> usize {
        self.num_inputs + self.num_ffs
    }

    /// Generates the circuit. Deterministic for a given `seed`.
    pub fn generate(&self, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gates: Vec<(String, GateKind, Vec<String>)> = Vec::new();
        for i in 0..self.num_inputs {
            gates.push((format!("pi{i}"), GateKind::Input, vec![]));
        }
        // DFFs reference gates declared later (feedback); resolve names now.
        for i in 0..self.num_ffs {
            let src = format!("g{}", rng.gen_range(self.num_gates / 2..self.num_gates));
            gates.push((format!("ff{i}"), GateKind::Dff, vec![src]));
        }
        // Combinational gates draw fanins from PIs, FF outputs and earlier
        // gates, biased toward recent nets so depth grows realistically.
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Not,
        ];
        for j in 0..self.num_gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let arity = match kind {
                GateKind::Not => 1,
                GateKind::Xor => 2,
                _ => rng.gen_range(2..=3),
            };
            let mut fanins = Vec::with_capacity(arity);
            for _ in 0..arity {
                fanins.push(self.pick_fanin(j, &mut rng));
            }
            gates.push((format!("g{j}"), kind, fanins));
        }
        let outputs: Vec<String> = (0..self.num_outputs)
            .map(|i| format!("g{}", self.num_gates - 1 - i))
            .collect();
        Circuit::from_named_gates(&self.name, gates, &outputs)
            .expect("generator emits structurally valid netlists")
    }

    /// Picks a fanin name for gate `j` from the available earlier nets.
    fn pick_fanin(&self, j: usize, rng: &mut StdRng) -> String {
        let sources = self.num_inputs + self.num_ffs;
        let pool = sources + j;
        // 60%: one of the 16 most recent nets (locality); else uniform.
        let idx = if j > 0 && rng.gen_bool(0.6) {
            let lo = pool.saturating_sub(16);
            rng.gen_range(lo..pool)
        } else {
            rng.gen_range(0..pool)
        };
        if idx < self.num_inputs {
            format!("pi{idx}")
        } else if idx < sources {
            format!("ff{}", idx - self.num_inputs)
        } else {
            format!("g{}", idx - sources)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let spec = RandomCircuitSpec::new("d", 6, 8, 60);
        assert_eq!(spec.generate(3), spec.generate(3));
        assert_ne!(spec.generate(3), spec.generate(4));
    }

    #[test]
    fn dimensions_respected() {
        let spec = RandomCircuitSpec::new("dim", 10, 20, 200);
        let c = spec.generate(1);
        assert_eq!(c.primary_inputs().len(), 10);
        assert_eq!(c.dffs().len(), 20);
        assert_eq!(c.num_logic_gates(), 200);
        assert_eq!(c.primary_outputs().len(), 10);
        assert_eq!(c.scan_view().cube_width(), spec.cube_width());
    }

    #[test]
    fn no_ffs_is_combinational() {
        let spec = RandomCircuitSpec::new("comb", 5, 0, 30);
        let c = spec.generate(7);
        assert!(c.dffs().is_empty());
        let v = c.scan_view();
        assert_eq!(v.cube_width(), 5);
        assert_eq!(v.outputs.len(), v.num_pos);
    }

    #[test]
    fn many_seeds_validate() {
        let spec = RandomCircuitSpec::new("fuzz", 4, 6, 50);
        for seed in 0..20 {
            let c = spec.generate(seed);
            // validate() ran inside generate(); topo order covers all nets.
            assert_eq!(c.topo_order().len(), c.num_gates());
        }
    }
}

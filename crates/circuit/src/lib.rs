//! Gate-level circuit substrate for the `ninec` suite.
//!
//! Provides the netlist model the fault simulator and ATPG operate on:
//!
//! - [`netlist`] — gates, nets, validation, topological order, and the
//!   full-scan combinational [`ScanView`];
//! - [`mod@bench`] — ISCAS `.bench` parser plus the bundled genuine
//!   benchmarks [`S27`](bench::S27) and [`C17`](bench::C17);
//! - [`random`] — random sequential circuit generation standing in for
//!   the larger ISCAS'89 circuits (see `DESIGN.md` §4).
//!
//! # Example
//!
//! ```
//! use ninec_circuit::bench::{parse_bench, S27};
//!
//! let s27 = parse_bench(S27)?;
//! println!("{s27}");
//! let view = s27.scan_view();
//! assert_eq!(view.cube_width(), 4 + 3); // PIs + scan cells
//! # Ok::<(), ninec_circuit::bench::ParseBenchError>(())
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod netlist;
pub mod random;
pub mod scan;

pub use netlist::{Circuit, Gate, GateKind, NetId, ScanView};

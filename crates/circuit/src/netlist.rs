//! Gate-level netlists.
//!
//! A [`Circuit`] is a set of *nets*, each driven by exactly one [`Gate`].
//! Primary inputs are gates of kind [`GateKind::Input`]; D flip-flops are
//! single-input gates whose output net is the FF's `Q`. For scan testing
//! the circuit is viewed combinationally ([`Circuit::scan_view`]): FF
//! outputs become pseudo-primary inputs and FF `D` nets pseudo-primary
//! outputs.

use std::collections::HashMap;
use std::fmt;

/// Index of a net (equivalently, of the gate driving it).
pub type NetId = usize;

/// The logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// AND with ≥ 1 fanins.
    And,
    /// NAND with ≥ 1 fanins.
    Nand,
    /// OR with ≥ 1 fanins.
    Or,
    /// NOR with ≥ 1 fanins.
    Nor,
    /// XOR with ≥ 1 fanins.
    Xor,
    /// XNOR with ≥ 1 fanins.
    Xnor,
    /// D flip-flop (one fanin, the `D` pin); the gate's net is `Q`.
    Dff,
}

impl GateKind {
    /// `true` for sequential elements.
    pub fn is_dff(self) -> bool {
        self == GateKind::Dff
    }

    /// Expected fanin arity: `None` means "one or more".
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Input => Some(0),
            GateKind::Buf | GateKind::Not | GateKind::Dff => Some(1),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// One gate: a kind plus its fanin nets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Fanin net ids.
    pub inputs: Vec<NetId>,
}

/// A gate-level netlist.
///
/// # Examples
///
/// Build `y = a NAND b` and inspect it:
///
/// ```
/// use ninec_circuit::netlist::{Circuit, GateKind};
///
/// let mut c = Circuit::new("tiny");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let y = c.add_gate("y", GateKind::Nand, vec![a, b])?;
/// c.mark_output(y);
/// let c = c.validate()?;
/// assert_eq!(c.num_gates(), 3);
/// assert_eq!(c.primary_inputs(), &[a, b]);
/// # Ok::<(), ninec_circuit::netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    gates: Vec<Gate>,
    net_names: Vec<String>,
    by_name: HashMap<String, NetId>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    dffs: Vec<NetId>,
    topo: Vec<NetId>,
    validated: bool,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            gates: Vec::new(),
            net_names: Vec::new(),
            by_name: HashMap::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            dffs: Vec::new(),
            topo: Vec::new(),
            validated: false,
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input, returning its net.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_input(&mut self, name: &str) -> NetId {
        self.insert(
            name,
            Gate {
                kind: GateKind::Input,
                inputs: vec![],
            },
        )
        .expect("input names must be unique")
    }

    /// Adds a gate, returning its net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] on duplicate names, arity violations, or
    /// dangling fanins.
    pub fn add_gate(
        &mut self,
        name: &str,
        kind: GateKind,
        inputs: Vec<NetId>,
    ) -> Result<NetId, NetlistError> {
        if kind == GateKind::Input {
            return Err(NetlistError::UseAddInput {
                name: name.to_owned(),
            });
        }
        match kind.arity() {
            Some(n) if inputs.len() != n => {
                return Err(NetlistError::Arity {
                    name: name.to_owned(),
                    kind,
                    found: inputs.len(),
                })
            }
            None if inputs.is_empty() => {
                return Err(NetlistError::Arity {
                    name: name.to_owned(),
                    kind,
                    found: 0,
                })
            }
            _ => {}
        }
        for &i in &inputs {
            if i >= self.gates.len() {
                return Err(NetlistError::DanglingFanin {
                    name: name.to_owned(),
                    fanin: i,
                });
            }
        }
        self.insert(name, Gate { kind, inputs })
    }

    fn insert(&mut self, name: &str, gate: Gate) -> Result<NetId, NetlistError> {
        if self.by_name.contains_key(name) {
            return Err(NetlistError::DuplicateName {
                name: name.to_owned(),
            });
        }
        let id = self.gates.len();
        if gate.kind == GateKind::Input {
            self.primary_inputs.push(id);
        }
        if gate.kind == GateKind::Dff {
            self.dffs.push(id);
        }
        self.gates.push(gate);
        self.net_names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.validated = false;
        Ok(id)
    }

    /// Builds a circuit from named gates, resolving fanins by name — this
    /// allows forward references (e.g. a DFF fed by a gate declared later),
    /// which `.bench` files rely on.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] on duplicate names, unknown fanin names,
    /// arity violations, unknown output names, or combinational cycles.
    pub fn from_named_gates<I>(
        name: &str,
        gates: I,
        outputs: &[String],
    ) -> Result<Self, NetlistError>
    where
        I: IntoIterator<Item = (String, GateKind, Vec<String>)>,
    {
        let gates: Vec<(String, GateKind, Vec<String>)> = gates.into_iter().collect();
        let mut c = Circuit::new(name);
        // Pass 1: allocate every net id.
        for (gname, kind, _) in &gates {
            if c.by_name.contains_key(gname) {
                return Err(NetlistError::DuplicateName {
                    name: gname.clone(),
                });
            }
            let id = c.gates.len();
            if *kind == GateKind::Input {
                c.primary_inputs.push(id);
            }
            if *kind == GateKind::Dff {
                c.dffs.push(id);
            }
            c.gates.push(Gate {
                kind: *kind,
                inputs: vec![],
            });
            c.net_names.push(gname.clone());
            c.by_name.insert(gname.clone(), id);
        }
        // Pass 2: resolve fanins.
        for (id, (gname, kind, fanins)) in gates.iter().enumerate() {
            match kind.arity() {
                Some(n) if fanins.len() != n => {
                    return Err(NetlistError::Arity {
                        name: gname.clone(),
                        kind: *kind,
                        found: fanins.len(),
                    })
                }
                None if fanins.is_empty() => {
                    return Err(NetlistError::Arity {
                        name: gname.clone(),
                        kind: *kind,
                        found: 0,
                    })
                }
                _ => {}
            }
            let mut resolved = Vec::with_capacity(fanins.len());
            for f in fanins {
                let fid = *c.by_name.get(f).ok_or_else(|| NetlistError::UnknownNet {
                    name: gname.clone(),
                    fanin: f.clone(),
                })?;
                resolved.push(fid);
            }
            c.gates[id].inputs = resolved;
        }
        for out in outputs {
            let id = *c.by_name.get(out).ok_or_else(|| NetlistError::UnknownNet {
                name: "<output list>".to_owned(),
                fanin: out.clone(),
            })?;
            c.primary_outputs.push(id);
        }
        c.validate()
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
        self.validated = false;
    }

    /// Checks structural sanity and computes the topological order; must be
    /// called before simulation-facing accessors.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// core is cyclic (paths through DFFs are fine).
    pub fn validate(mut self) -> Result<Self, NetlistError> {
        // Kahn's algorithm over combinational edges; Input and Dff gates
        // are sources (a DFF's Q is available at cycle start).
        let n = self.gates.len();
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<NetId>> = vec![Vec::new(); n];
        for (id, gate) in self.gates.iter().enumerate() {
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            indegree[id] = gate.inputs.len();
            for &src in &gate.inputs {
                fanout[src].push(id);
            }
        }
        let mut queue: Vec<NetId> = (0..n)
            .filter(|&i| matches!(self.gates[i].kind, GateKind::Input | GateKind::Dff))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(id) = queue.pop() {
            topo.push(id);
            for &next in &fanout[id] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    queue.push(next);
                }
            }
        }
        if topo.len() != n {
            return Err(NetlistError::CombinationalCycle);
        }
        self.topo = topo;
        self.validated = true;
        Ok(self)
    }

    /// Total number of gates (including inputs and DFFs).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of combinational logic gates (excluding inputs and DFFs).
    pub fn num_logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Input | GateKind::Dff))
            .count()
    }

    /// The gate driving `net`.
    pub fn gate(&self, net: NetId) -> &Gate {
        &self.gates[net]
    }

    /// Rewires one fanin pin of a gate to a different source net —
    /// the primitive behind ECO-style edits such as scan stitching.
    /// Invalidates the topological order; call
    /// [`validate`](Self::validate) again before simulating.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingFanin`] if `src` does not exist,
    /// or [`NetlistError::Arity`] if `pin` is out of range for the gate.
    pub fn rewire_fanin(
        &mut self,
        gate: NetId,
        pin: usize,
        src: NetId,
    ) -> Result<(), NetlistError> {
        if src >= self.gates.len() {
            return Err(NetlistError::DanglingFanin {
                name: self.net_names[gate].clone(),
                fanin: src,
            });
        }
        let g = &mut self.gates[gate];
        if pin >= g.inputs.len() {
            return Err(NetlistError::Arity {
                name: self.net_names[gate].clone(),
                kind: g.kind,
                found: pin,
            });
        }
        g.inputs[pin] = src;
        self.validated = false;
        Ok(())
    }

    /// The name of `net`.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net]
    }

    /// Looks a net up by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Primary inputs, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// D flip-flops, in declaration order.
    pub fn dffs(&self) -> &[NetId] {
        &self.dffs
    }

    /// Topological order of all nets (sources first).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been [`validate`](Self::validate)d.
    pub fn topo_order(&self) -> &[NetId] {
        assert!(self.validated, "call validate() before topo_order()");
        &self.topo
    }

    /// The full-scan combinational view: inputs are PIs then FF outputs
    /// (PPIs); outputs are POs then FF `D` nets (PPOs).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has not been [`validate`](Self::validate)d.
    pub fn scan_view(&self) -> ScanView {
        assert!(self.validated, "call validate() before scan_view()");
        let mut inputs = self.primary_inputs.clone();
        inputs.extend(self.dffs.iter().copied());
        let mut outputs = self.primary_outputs.clone();
        outputs.extend(self.dffs.iter().map(|&ff| self.gates[ff].inputs[0]));
        ScanView {
            inputs,
            outputs,
            num_pis: self.primary_inputs.len(),
            num_pos: self.primary_outputs.len(),
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} logic), {} PIs, {} POs, {} DFFs",
            self.name,
            self.num_gates(),
            self.num_logic_gates(),
            self.primary_inputs.len(),
            self.primary_outputs.len(),
            self.dffs.len()
        )
    }
}

/// The full-scan combinational test view of a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanView {
    /// PIs followed by PPIs (FF `Q` nets) — one test-cube position each.
    pub inputs: Vec<NetId>,
    /// POs followed by PPOs (FF `D` nets) — observation points.
    pub outputs: Vec<NetId>,
    /// How many of `inputs` are true PIs.
    pub num_pis: usize,
    /// How many of `outputs` are true POs.
    pub num_pos: usize,
}

impl ScanView {
    /// Width of a test cube for this view.
    pub fn cube_width(&self) -> usize {
        self.inputs.len()
    }
}

/// Errors constructing or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net name was declared twice.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// `add_gate` was called with [`GateKind::Input`].
    UseAddInput {
        /// The gate's name.
        name: String,
    },
    /// Wrong number of fanins for the gate kind.
    Arity {
        /// The gate's name.
        name: String,
        /// The gate's kind.
        kind: GateKind,
        /// Fanins supplied.
        found: usize,
    },
    /// A fanin referenced a net that does not exist yet.
    DanglingFanin {
        /// The gate's name.
        name: String,
        /// The unknown fanin id.
        fanin: NetId,
    },
    /// A fanin or output name did not resolve.
    UnknownNet {
        /// The referencing gate (or `"<output list>"`).
        name: String,
        /// The unresolved net name.
        fanin: String,
    },
    /// The combinational core contains a cycle.
    CombinationalCycle,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { name } => write!(f, "duplicate net name {name:?}"),
            NetlistError::UseAddInput { name } => {
                write!(f, "gate {name:?}: use add_input for primary inputs")
            }
            NetlistError::Arity { name, kind, found } => {
                write!(f, "gate {name:?}: {kind} cannot take {found} fanins")
            }
            NetlistError::DanglingFanin { name, fanin } => {
                write!(f, "gate {name:?}: fanin net {fanin} does not exist")
            }
            NetlistError::UnknownNet { name, fanin } => {
                write!(f, "gate {name:?}: unknown net name {fanin:?}")
            }
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let n = c.add_gate("n", GateKind::Nand, vec![a, b]).unwrap();
        let q = c.add_gate("q", GateKind::Dff, vec![n]).unwrap();
        let y = c.add_gate("y", GateKind::Xor, vec![n, q]).unwrap();
        c.mark_output(y);
        c.validate().unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let c = tiny();
        assert_eq!(c.num_gates(), 5);
        assert_eq!(c.num_logic_gates(), 2);
        assert_eq!(c.net_by_name("n"), Some(2));
        assert_eq!(c.net_name(2), "n");
        assert_eq!(c.dffs(), &[3]);
        assert!(c.to_string().contains("tiny"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Circuit::new("d");
        c.add_input("a");
        assert!(matches!(
            c.add_gate("a", GateKind::Buf, vec![0]),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn arity_enforced() {
        let mut c = Circuit::new("a");
        let a = c.add_input("a");
        assert!(matches!(
            c.add_gate("n", GateKind::Not, vec![a, a]),
            Err(NetlistError::Arity { .. })
        ));
        assert!(matches!(
            c.add_gate("g", GateKind::And, vec![]),
            Err(NetlistError::Arity { .. })
        ));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let mut c = Circuit::new("d");
        let a = c.add_input("a");
        assert!(matches!(
            c.add_gate("g", GateKind::And, vec![a, 99]),
            Err(NetlistError::DanglingFanin { fanin: 99, .. })
        ));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = tiny();
        let order = c.topo_order();
        let pos = |net: NetId| order.iter().position(|&x| x == net).unwrap();
        // n after a and b; y after n and q.
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
        assert!(pos(4) > pos(2) && pos(4) > pos(3));
    }

    #[test]
    fn dff_breaks_cycles() {
        // q = DFF(y); y = XOR(a, q): combinationally acyclic.
        let mut c = Circuit::new("loop");
        let a = c.add_input("a");
        // Build with a forward reference via two steps: declare XOR after
        // DFF by adding DFF on a placeholder first is impossible in this
        // API, so model the equivalent: y = XOR(a, q), q = DFF(y) requires
        // q first. Instead: q = DFF(n), n = ... already covered by tiny();
        // here check a true combinational cycle is caught.
        let b = c.add_gate("b", GateKind::Buf, vec![a]).unwrap();
        let mut gates = c;
        // Manually create a cycle by editing is not exposed; a self-loop:
        let r = gates.add_gate("s", GateKind::And, vec![b, 3]);
        assert!(matches!(r, Err(NetlistError::DanglingFanin { .. })));
    }

    #[test]
    fn scan_view_layout() {
        let c = tiny();
        let v = c.scan_view();
        assert_eq!(v.cube_width(), 3); // a, b, q
        assert_eq!(v.inputs, vec![0, 1, 3]);
        // Outputs: PO y, then PPO = DFF's D net (n).
        assert_eq!(v.outputs, vec![4, 2]);
        assert_eq!(v.num_pis, 2);
        assert_eq!(v.num_pos, 1);
    }
}

//! Hardware-level verification of the decoder FSM: the Quine–McCluskey
//! synthesis result is lowered to a gate-level netlist and proven
//! equivalent to the behavioral machine by exhaustive simulation — and
//! the resulting netlist is itself put through the workspace's fault
//! simulator, closing the loop between the synthesis, netlist, and test
//! crates.

use ninec_circuit::netlist::Circuit;
use ninec_decompressor::area::decoder_fsm;
use ninec_fsim::fault::collapsed_faults;
use ninec_fsim::fsim::fault_simulate;
use ninec_synth::netlist::report_to_circuit;
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::TritVec;

/// Evaluates the exported combinational block on (state, input).
fn eval(circuit: &Circuit, vector: u32) -> Vec<bool> {
    use ninec_circuit::GateKind;
    let mut values = vec![None::<bool>; circuit.num_gates()];
    for (i, &net) in circuit.primary_inputs().iter().enumerate() {
        values[net] = Some(vector >> i & 1 == 1);
    }
    for &net in circuit.topo_order() {
        if values[net].is_some() {
            continue;
        }
        let gate = circuit.gate(net);
        let ins: Vec<bool> = gate.inputs.iter().map(|&i| values[i].unwrap()).collect();
        values[net] = Some(match gate.kind {
            GateKind::And => ins.iter().all(|&b| b),
            GateKind::Or => ins.iter().any(|&b| b),
            GateKind::Not => !ins[0],
            GateKind::Buf => ins[0],
            other => panic!("unexpected {other}"),
        });
    }
    circuit
        .primary_outputs()
        .iter()
        .map(|&net| values[net].unwrap())
        .collect()
}

#[test]
fn synthesized_decoder_fsm_equals_behavioral_table() {
    let fsm = decoder_fsm();
    let report = fsm.synthesize();
    let circuit = report_to_circuit(&report).unwrap();
    let sbits = report.state_bits;
    let ibits = report.input_bits;
    assert_eq!(circuit.primary_inputs().len(), sbits + ibits);

    for state in 0..fsm.num_states() {
        for input in 0..1u32 << ibits {
            let vector = (state << ibits) as u32 | input;
            let outs = eval(&circuit, vector);
            // Next-state bits.
            let mut next = 0usize;
            for (bit, &out) in outs.iter().enumerate().take(sbits) {
                if out {
                    next |= 1 << bit;
                }
            }
            assert_eq!(
                next,
                fsm.next_state(state, input),
                "state {state} input {input:02b}: next-state mismatch"
            );
            // Output bits (sel0, sel1, cnt_en, ack).
            for bit in 0..4 {
                assert_eq!(
                    outs[sbits + bit],
                    fsm.outputs(state, input) >> bit & 1 == 1,
                    "state {state} input {input:02b}: out[{bit}] mismatch"
                );
            }
        }
    }
}

#[test]
fn decoder_logic_is_highly_testable() {
    // The decoder's own combinational block should be testable hardware:
    // exhaustive patterns over its 7 inputs detect nearly every collapsed
    // stuck-at fault (a handful are untestable because unreachable state
    // codes are don't-cares the minimizer exploits).
    let circuit = report_to_circuit(&decoder_fsm().synthesize()).unwrap();
    let width = circuit.scan_view().cube_width();
    assert_eq!(width, 7);
    let mut ts = TestSet::new(width);
    for v in 0..1u32 << width {
        let cube: TritVec = (0..width).map(|b| (v >> b & 1 == 1).into()).collect();
        ts.push_pattern(&cube).unwrap();
    }
    let faults = collapsed_faults(&circuit);
    let result = fault_simulate(&circuit, &ts, &faults);
    assert!(
        result.coverage_percent() > 90.0,
        "decoder logic coverage only {:.1}%",
        result.coverage_percent()
    );
}

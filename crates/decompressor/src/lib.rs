//! Cycle-accurate models of the 9C on-chip decompression architectures
//! (Figures 1–4 of the paper).
//!
//! - [`ate`] — the ATE as a bit-serial channel with Ack handshake;
//! - [`single`] — single-scan-chain decoder (Fig. 1): FSM + counter +
//!   `K/2`-bit shifter, ticked at the SoC scan clock with `f_scan = p·f`;
//! - [`multi`] — single-pin, `m`-chain decoder (Fig. 3 / 4b): same test
//!   time as single-scan, pin count 1;
//! - [`parallel`] — `m/K` decoders with `m/K` pins (Fig. 4c): test time
//!   divided by `m/K`;
//! - [`area`] — the decoder control FSM (Fig. 2) tabulated and synthesized
//!   via [`ninec_synth`], plus structural counter/shifter costs.
//!
//! The cycle counts these models produce are asserted (in tests) to match
//! the paper's analytic test-application-time formulas exactly.
//!
//! # Example
//!
//! ```
//! use ninec::encode::Encoder;
//! use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
//! use ninec_testdata::fill::FillStrategy;
//! use ninec_testdata::gen::SyntheticProfile;
//!
//! let ts = SyntheticProfile::new("demo", 10, 80, 0.8).generate(1);
//! let encoded = Encoder::new(8)?.encode_set(&ts);
//! let decoder = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(8));
//! let trace = decoder.run(&encoded.to_bitvec(FillStrategy::Zero), ts.total_bits())?;
//! println!("decompressed in {} SoC ticks", trace.soc_ticks);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod ate;
pub mod multi;
pub mod parallel;
pub mod single;
pub mod verilog;

pub use area::{decoder_area, decoder_fsm, DecoderArea};
pub use multi::MultiScanDecoder;
pub use parallel::ParallelDecoders;
pub use single::{ClockRatio, DecompressError, DecompressionTrace, SingleScanDecoder};
pub use verilog::{decoder_verilog, fsm_verilog};

//! Cycle-accurate model of the single-scan-chain 9C decoder (paper Fig. 1).
//!
//! The model ticks at the SoC scan clock (`f_scan = p · f_ate`): an ATE
//! bit takes `p` SoC ticks to arrive; one scan shift takes one tick. The
//! sequencing follows the paper's architecture — the FSM parses a codeword
//! bit-serially, then for each half either streams constants into the scan
//! chain or first fills the `K/2`-bit shifter from `Data_in` and then
//! drains it — so a block of case `i` costs exactly
//! `p · size_i + K` SoC ticks, matching the analytic model in
//! [`ninec::analysis::TatModel`].

use crate::ate::AteChannel;
use ninec::code::{CodeTable, HalfSpec};
use ninec_testdata::bits::BitVec;
use std::collections::VecDeque;
use std::fmt;

/// Clock configuration: the SoC scan clock runs `p` times faster than the
/// ATE clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockRatio {
    /// `f_scan / f_ate`, at least 1.
    pub p: u32,
}

impl ClockRatio {
    /// Creates a ratio.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: u32) -> Self {
        assert!(p > 0, "clock ratio must be positive");
        Self { p }
    }
}

/// What went wrong during decompression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The ATE buffer ran out mid-codeword or mid-payload.
    AteUnderrun {
        /// Scan bits produced so far.
        produced: usize,
    },
    /// The bits received match no codeword.
    BadCodeword {
        /// ATE bit offset of the failure.
        offset: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::AteUnderrun { produced } => {
                write!(f, "ATE buffer underrun after {produced} scan bits")
            }
            DecompressError::BadCodeword { offset } => {
                write!(f, "unrecognized codeword at ATE bit {offset}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Trace of one decompression run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressionTrace {
    /// The bits scanned into the chain, in scan order.
    pub scan_out: BitVec,
    /// Total SoC scan-clock ticks consumed.
    pub soc_ticks: u64,
    /// ATE data bits consumed (= ATE cycles spent on transfer).
    pub ate_bits: u64,
    /// Number of codewords (blocks) processed.
    pub blocks: u64,
    /// Per-case codeword counts observed by the FSM.
    pub case_counts: [u64; 9],
}

impl DecompressionTrace {
    /// Equivalent time in ATE clock periods: `soc_ticks / p`.
    pub fn ate_cycles(&self, clocks: ClockRatio) -> f64 {
        self.soc_ticks as f64 / clocks.p as f64
    }
}

/// The single-scan-chain decoder of Figure 1: FSM + `log2(K/2)`-bit
/// counter + `K/2`-bit shifter + 3-way MUX.
///
/// # Examples
///
/// ```
/// use ninec::encode::Encoder;
/// use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
/// use ninec_testdata::fill::FillStrategy;
///
/// let encoder = Encoder::new(8)?;
/// let source: ninec_testdata::TritVec = "0000000011111111".parse()?;
/// let encoded = encoder.encode_stream(&source);
/// let ate_bits = encoded.to_bitvec(FillStrategy::Zero);
///
/// let decoder = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(8));
/// let trace = decoder.run(&ate_bits, source.len())?;
/// assert_eq!(trace.scan_out.to_string(), "0000000011111111");
/// // Two blocks: (1 + 2 codeword bits) * p + 2 * K scan ticks.
/// assert_eq!(trace.soc_ticks, 8 * 3 + 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SingleScanDecoder {
    k: usize,
    table: CodeTable,
    clocks: ClockRatio,
}

impl SingleScanDecoder {
    /// Creates a decoder for block size `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even and at least 4.
    pub fn new(k: usize, table: CodeTable, clocks: ClockRatio) -> Self {
        assert!(
            k >= 4 && k.is_multiple_of(2),
            "block size must be even and >= 4, got {k}"
        );
        Self { k, table, clocks }
    }

    /// Block size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Runs the decoder until `out_len` scan bits have been produced.
    ///
    /// # Errors
    ///
    /// See [`DecompressError`].
    pub fn run(
        &self,
        ate_bits: &BitVec,
        out_len: usize,
    ) -> Result<DecompressionTrace, DecompressError> {
        let _span = ninec_obs::span("decomp_single_run");
        let mut ate = AteChannel::new(ate_bits.clone());
        let mut trace = DecompressionTrace {
            scan_out: BitVec::with_capacity(out_len + self.k),
            soc_ticks: 0,
            ate_bits: 0,
            blocks: 0,
            case_counts: [0; 9],
        };
        let p = self.clocks.p as u64;
        let half = self.k / 2;
        let mut shifter: VecDeque<bool> = VecDeque::with_capacity(half);

        while trace.scan_out.len() < out_len {
            // --- FSM: parse one codeword bit-serially (p ticks per bit).
            let start_offset = ate.bits_served();
            let mut acc: Vec<bool> = Vec::with_capacity(5);
            let case = loop {
                let bit = ate.next_bit().ok_or(DecompressError::AteUnderrun {
                    produced: trace.scan_out.len(),
                })?;
                trace.soc_ticks += p;
                trace.ate_bits += 1;
                acc.push(bit);
                if acc.len() > 16 {
                    return Err(DecompressError::BadCodeword {
                        offset: start_offset,
                    });
                }
                if let Some((case, used)) = self.table.match_at(|i| acc.get(i).copied()) {
                    debug_assert_eq!(used, acc.len());
                    break case;
                }
                // `match_at` returns None both for "need more bits" and
                // "dead prefix"; a dead prefix can never extend to a match,
                // which the length cap above catches.
            };
            trace.case_counts[case.index()] += 1;
            trace.blocks += 1;

            // --- Per half: constants from the MUX or data via the shifter.
            let (left, right) = case.halves();
            for spec in [left, right] {
                match spec {
                    HalfSpec::Zero | HalfSpec::One => {
                        let bit = spec == HalfSpec::One;
                        for _ in 0..half {
                            trace.scan_out.push(bit);
                            trace.soc_ticks += 1; // one scan shift
                        }
                    }
                    HalfSpec::Mismatch => {
                        // Fill the K/2-bit shifter from Data_in at ATE rate…
                        for _ in 0..half {
                            let bit = ate.next_bit().ok_or(DecompressError::AteUnderrun {
                                produced: trace.scan_out.len(),
                            })?;
                            trace.soc_ticks += p;
                            trace.ate_bits += 1;
                            shifter.push_back(bit);
                        }
                        // …then drain it into the scan chain at SoC rate.
                        while let Some(bit) = shifter.pop_front() {
                            trace.scan_out.push(bit);
                            trace.soc_ticks += 1;
                        }
                    }
                }
            }
            // Ack: the FSM releases the ATE for the next codeword (free —
            // overlapped with the last shift, as in the paper's timing).
        }

        // Drop pad bits beyond the requested length.
        if trace.scan_out.len() > out_len {
            trace.scan_out = trace.scan_out.iter().take(out_len).collect();
        }
        // Batched telemetry flush: the per-tick FSM loop above never
        // touches an atomic. No-op with `obs` off or runtime-disabled.
        if ninec_obs::runtime_enabled() {
            let reg = ninec_obs::global();
            reg.counter("ninec.decomp.single.runs").inc();
            reg.counter("ninec.decomp.single.blocks").add(trace.blocks);
            reg.counter("ninec.decomp.single.soc_ticks")
                .add(trace.soc_ticks);
            reg.counter("ninec.decomp.single.ate_bits")
                .add(trace.ate_bits);
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec::analysis::TatModel;
    use ninec::encode::Encoder;
    use ninec_testdata::fill::FillStrategy;
    use ninec_testdata::gen::SyntheticProfile;
    use ninec_testdata::trit::TritVec;

    fn run_roundtrip(k: usize, p: u32, src: &TritVec) -> DecompressionTrace {
        let encoder = Encoder::new(k).unwrap();
        let encoded = encoder.encode_stream(src);
        let ate_bits = encoded.to_bitvec(FillStrategy::Random { seed: 42 });
        let decoder = SingleScanDecoder::new(k, encoded.table().clone(), ClockRatio::new(p));
        let trace = decoder.run(&ate_bits, src.len()).unwrap();
        // Output must cover the source cubes.
        assert_eq!(trace.scan_out.len(), src.len());
        for i in 0..src.len() {
            if let Some(v) = src.get(i).unwrap().value() {
                assert_eq!(trace.scan_out.get(i), Some(v), "care bit {i}");
            }
        }
        // The decoder consumed the whole ATE stream.
        assert_eq!(trace.ate_bits as usize, ate_bits.len());
        trace
    }

    #[test]
    fn decodes_synthetic_sets() {
        for k in [4, 8, 16] {
            let ts = SyntheticProfile::new("dec", 20, 96, 0.75).generate(k as u64);
            run_roundtrip(k, 8, ts.as_stream());
        }
    }

    #[test]
    fn cycle_count_matches_analytic_model() {
        for (k, p) in [(8usize, 8u32), (8, 16), (16, 4), (12, 24)] {
            let ts = SyntheticProfile::new("cyc", 15, 120, 0.7).generate(3);
            let src = ts.as_stream();
            let encoder = Encoder::new(k).unwrap();
            let encoded = encoder.encode_stream(src);
            let trace = run_roundtrip(k, p, src);
            let model = TatModel::new(p as f64);
            let analytic_ate = model.compressed_cycles(encoded.stats(), encoded.table(), k);
            // soc_ticks = p * analytic ATE cycles (the model counts in ATE
            // periods; K scan ticks = K/p ATE periods).
            assert_eq!(
                trace.soc_ticks as f64,
                analytic_ate * p as f64,
                "k={k} p={p}"
            );
            assert_eq!(trace.case_counts, encoded.stats().case_counts);
        }
    }

    #[test]
    fn underrun_detected() {
        let decoder = SingleScanDecoder::new(8, CodeTable::paper(), ClockRatio::new(2));
        // "1100" promises a K-bit payload that never arrives.
        let bits = BitVec::from_str_radix2("1100").unwrap();
        assert!(matches!(
            decoder.run(&bits, 8),
            Err(DecompressError::AteUnderrun { .. })
        ));
    }

    #[test]
    fn truncated_codeword_is_underrun() {
        let decoder = SingleScanDecoder::new(8, CodeTable::paper(), ClockRatio::new(2));
        let bits = BitVec::from_str_radix2("11").unwrap();
        assert!(matches!(
            decoder.run(&bits, 8),
            Err(DecompressError::AteUnderrun { .. })
        ));
    }

    #[test]
    fn matches_software_decoder() {
        use ninec::session::DecodeSession;
        let ts = SyntheticProfile::new("swhw", 25, 104, 0.8).generate(17);
        let src = ts.as_stream();
        let encoder = Encoder::new(8).unwrap();
        let encoded = encoder.encode_stream(src);
        let ate_bits = encoded.to_bitvec(FillStrategy::Zero);
        let sw = DecodeSession::new()
            .k(8)
            .table(encoded.table().clone())
            .source_len(src.len())
            .decode_bits(&ate_bits)
            .unwrap();
        let hw = SingleScanDecoder::new(8, encoded.table().clone(), ClockRatio::new(8))
            .run(&ate_bits, src.len())
            .unwrap();
        assert_eq!(hw.scan_out, sw);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        let _ = SingleScanDecoder::new(7, CodeTable::paper(), ClockRatio::new(1));
    }
}

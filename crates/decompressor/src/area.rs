//! Decoder hardware-cost estimation (the paper's "very small decoder,
//! independent of K and of the test set" claim, §III / §IV).
//!
//! The control FSM is tabulated explicitly and synthesized with
//! [`ninec_synth`]; the `log2(K/2)`-bit counter and `K/2`-bit shifter are
//! costed structurally. Only the counter/shifter depend on `K` — the FSM
//! is byte-for-byte identical for every block size, which is the paper's
//! design-reuse argument.

use ninec::code::{Case, HalfSpec, ALL_CASES};
use ninec_synth::fsm::{Fsm, SynthReport};
use std::fmt;

/// FSM input bit 0: the serial data bit from the ATE.
pub const IN_DATA: u32 = 0b01;
/// FSM input bit 1: the counter's `Done` pulse.
pub const IN_DONE: u32 = 0b10;

/// FSM output bits: `sel0`, `sel1` (MUX select: 00 = constant 0,
/// 01 = constant 1, 10 = shifter data), `cnt_en`, `ack`.
pub const OUT_SEL0: u64 = 0b0001;
/// See [`OUT_SEL0`].
pub const OUT_SEL1: u64 = 0b0010;
/// Counter/scan enable.
pub const OUT_CNT_EN: u64 = 0b0100;
/// Handshake back to the ATE.
pub const OUT_ACK: u64 = 0b1000;

// State numbering: 0..=7 parse the prefix code bit-serially, 8..=16 drive
// the left half of case C1..C9, 17..=19 drive the right half (by spec),
// 20 raises Ack.
const ROOT: usize = 0;
const P1: usize = 1;
const P11: usize = 2;
const P110: usize = 3;
const P1101: usize = 4;
const P111: usize = 5;
const P1110: usize = 6;
const P1111: usize = 7;
const LEFT_BASE: usize = 8;
const RIGHT_BASE: usize = 17;
const ACK: usize = 20;
const NUM_STATES: usize = 21;

fn sel_bits(spec: HalfSpec) -> u64 {
    match spec {
        HalfSpec::Zero => 0,
        HalfSpec::One => OUT_SEL0,
        HalfSpec::Mismatch => OUT_SEL1,
    }
}

fn right_state(spec: HalfSpec) -> usize {
    RIGHT_BASE
        + match spec {
            HalfSpec::Zero => 0,
            HalfSpec::One => 1,
            HalfSpec::Mismatch => 2,
        }
}

/// Builds the 9C decoder control FSM (Fig. 2 of the paper, elaborated to
/// one state per prefix-tree node plus per-half execution states).
///
/// The machine is independent of `K` and of the test set: `K` only sizes
/// the counter the `Done` input comes from.
///
/// # Examples
///
/// ```
/// use ninec_decompressor::area::{decoder_fsm, IN_DATA};
///
/// let fsm = decoder_fsm();
/// assert_eq!(fsm.num_states(), 21);
/// // Codeword "0" (C1) jumps straight to execution.
/// assert_eq!(fsm.next_state(0, 0), 8);
/// // Codeword "10" (C2): root --1--> parse, --0--> execute.
/// assert_eq!(fsm.next_state(0, IN_DATA), 1);
/// assert_eq!(fsm.next_state(1, 0), 9);
/// ```
pub fn decoder_fsm() -> Fsm {
    Fsm::from_fn("ninec-decoder", NUM_STATES, 2, 4, |state, input| {
        let data = input & IN_DATA != 0;
        let done = input & IN_DONE != 0;
        match state {
            // --- Prefix-tree walk (outputs all low).
            ROOT => (if data { P1 } else { left_state(Case::ZZ) }, 0),
            P1 => (if data { P11 } else { left_state(Case::OO) }, 0),
            P11 => (if data { P111 } else { P110 }, 0),
            P110 => (if data { P1101 } else { left_state(Case::MM) }, 0),
            P1101 => (
                if data {
                    left_state(Case::OZ)
                } else {
                    left_state(Case::ZO)
                },
                0,
            ),
            P111 => (if data { P1111 } else { P1110 }, 0),
            P1110 => (
                if data {
                    left_state(Case::MZ)
                } else {
                    left_state(Case::ZM)
                },
                0,
            ),
            P1111 => (
                if data {
                    left_state(Case::MO)
                } else {
                    left_state(Case::OM)
                },
                0,
            ),
            // --- Left-half execution: hold until the counter says Done.
            s if (LEFT_BASE..LEFT_BASE + 9).contains(&s) => {
                let case = ALL_CASES[s - LEFT_BASE];
                let (left, right) = case.halves();
                let outputs = sel_bits(left) | OUT_CNT_EN;
                (if done { right_state(right) } else { s }, outputs)
            }
            // --- Right-half execution.
            s if (RIGHT_BASE..RIGHT_BASE + 3).contains(&s) => {
                let spec = [HalfSpec::Zero, HalfSpec::One, HalfSpec::Mismatch][s - RIGHT_BASE];
                let outputs = sel_bits(spec) | OUT_CNT_EN;
                (if done { ACK } else { s }, outputs)
            }
            // --- Ack pulse, then await the next codeword.
            _ => (ROOT, OUT_ACK),
        }
    })
}

fn left_state(case: Case) -> usize {
    LEFT_BASE + case.index()
}

/// Structural area estimate of one complete single-scan decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderArea {
    /// Block size the counter/shifter are sized for.
    pub k: usize,
    /// Synthesized FSM report (K-independent).
    pub fsm: SynthReport,
    /// Gate equivalents of the `log2(K/2)`-bit counter.
    pub counter_ge: f64,
    /// Gate equivalents of the `K/2`-bit shifter.
    pub shifter_ge: f64,
}

impl DecoderArea {
    /// FSM gate equivalents.
    pub fn fsm_ge(&self) -> f64 {
        self.fsm.gate_equivalents()
    }

    /// Total decoder gate equivalents.
    pub fn total_ge(&self) -> f64 {
        self.fsm_ge() + self.counter_ge + self.shifter_ge
    }
}

impl fmt::Display for DecoderArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={}: FSM ~{:.0} GE + counter ~{:.0} GE + shifter ~{:.0} GE = ~{:.0} GE",
            self.k,
            self.fsm_ge(),
            self.counter_ge,
            self.shifter_ge,
            self.total_ge()
        )
    }
}

/// Estimates the area of a complete decoder for block size `k`.
///
/// Counter: `⌈log2(K/2)⌉` flip-flops (4 GE each) plus ~2.5 GE of
/// increment/compare logic per bit. Shifter: `K/2` flip-flops plus a MUX
/// (~1 GE) per bit.
///
/// # Panics
///
/// Panics unless `k` is even and at least 4.
pub fn decoder_area(k: usize) -> DecoderArea {
    assert!(
        k >= 4 && k.is_multiple_of(2),
        "block size must be even and >= 4, got {k}"
    );
    let counter_bits = (usize::BITS - (k / 2 - 1).leading_zeros()).max(1) as f64;
    DecoderArea {
        k,
        fsm: decoder_fsm().synthesize(),
        counter_ge: counter_bits * (4.0 + 2.5),
        shifter_ge: (k as f64 / 2.0) * (4.0 + 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec::code::CodeTable;

    /// Walks the FSM over a codeword's bits, returning the reached state.
    fn walk(fsm: &Fsm, bits: &str) -> usize {
        let mut state = ROOT;
        for c in bits.chars() {
            let input = if c == '1' { IN_DATA } else { 0 };
            state = fsm.next_state(state, input);
        }
        state
    }

    #[test]
    fn prefix_walk_reaches_the_right_case_for_all_nine_codewords() {
        let fsm = decoder_fsm();
        let table = CodeTable::paper();
        for case in ALL_CASES {
            let bits = table.codeword(case).to_string();
            assert_eq!(
                walk(&fsm, &bits),
                LEFT_BASE + case.index(),
                "codeword {bits} for {case}"
            );
        }
    }

    #[test]
    fn execution_sequence_for_c5() {
        // C5 = ZM: left half constants (sel=00), right half data (sel=10).
        let fsm = decoder_fsm();
        let s = walk(&fsm, "11100");
        assert_eq!(s, LEFT_BASE + Case::ZM.index());
        assert_eq!(fsm.outputs(s, 0) & (OUT_SEL0 | OUT_SEL1), 0);
        assert_ne!(fsm.outputs(s, 0) & OUT_CNT_EN, 0);
        // Stay until done.
        assert_eq!(fsm.next_state(s, 0), s);
        let r = fsm.next_state(s, IN_DONE);
        assert_eq!(r, right_state(HalfSpec::Mismatch));
        assert_eq!(fsm.outputs(r, 0) & (OUT_SEL0 | OUT_SEL1), OUT_SEL1);
        // Then Ack, then back to parsing.
        let a = fsm.next_state(r, IN_DONE);
        assert_eq!(a, ACK);
        assert_ne!(fsm.outputs(a, 0) & OUT_ACK, 0);
        assert_eq!(fsm.next_state(a, 0), ROOT);
    }

    #[test]
    fn fsm_synthesis_is_small() {
        let report = decoder_fsm().synthesize();
        // 21 states -> 5 state bits; the whole controller stays well under
        // 300 gate equivalents ("very small" in the paper's terms).
        assert_eq!(report.state_bits, 5);
        let ge = report.gate_equivalents();
        assert!(ge > 10.0 && ge < 300.0, "FSM GE = {ge}");
    }

    #[test]
    fn fsm_is_k_independent_and_only_datapath_grows() {
        let a4 = decoder_area(4);
        let a32 = decoder_area(32);
        let a128 = decoder_area(128);
        assert_eq!(a4.fsm, a32.fsm);
        assert_eq!(a32.fsm, a128.fsm);
        assert!(a4.shifter_ge < a32.shifter_ge && a32.shifter_ge < a128.shifter_ge);
        assert!(a128.total_ge() > a4.total_ge());
    }

    #[test]
    fn area_display() {
        let a = decoder_area(8);
        assert!(a.to_string().contains("FSM"));
        assert!(a.total_ge() > 0.0);
    }
}

//! Multiple-scan-chain decoder with a single input pin (paper Fig. 3 /
//! Fig. 4b).
//!
//! One decoder drives an `m`-bit shifter; every `m` decoded bits, `Load`
//! transfers the word into all `m` chains in parallel (overlapped with the
//! next shift, so it costs no extra cycles — which is exactly why the
//! paper's multi-scan architecture keeps single-scan test time while using
//! one pin for `m` chains).

use crate::single::{ClockRatio, DecompressError, DecompressionTrace, SingleScanDecoder};
use ninec::code::CodeTable;
use ninec::multiscan::ScanChains;
use ninec_testdata::bits::BitVec;
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::TritVec;

/// Trace of a multi-scan decompression run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiScanTrace {
    /// The reconstructed test set as loaded into the chains.
    pub loaded: TestSet,
    /// The underlying decoder trace (ticks, ATE bits, codeword counts).
    pub decoder: DecompressionTrace,
    /// Number of `Load` pulses issued (vertical words transferred).
    pub loads: u64,
    /// ATE input pins used (always 1 for this architecture).
    pub pins: usize,
}

/// The single-pin multiple-scan-chain decompressor.
///
/// # Examples
///
/// ```
/// use ninec::multiscan::encode_multiscan;
/// use ninec_decompressor::multi::MultiScanDecoder;
/// use ninec_decompressor::single::ClockRatio;
/// use ninec_testdata::fill::FillStrategy;
/// use ninec_testdata::gen::SyntheticProfile;
///
/// let ts = SyntheticProfile::new("ms", 10, 64, 0.8).generate(1);
/// let encoded = encode_multiscan(&ts, 16, 8)?;
/// let decoder = MultiScanDecoder::new(8, 16, encoded.table().clone(), ClockRatio::new(8));
/// let ate_bits = encoded.to_bitvec(FillStrategy::Zero);
/// let trace = decoder.run(&ate_bits, &ts)?;
/// assert!(trace.loaded.covers(&ts));
/// assert_eq!(trace.pins, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiScanDecoder {
    k: usize,
    m: usize,
    inner: SingleScanDecoder,
}

impl MultiScanDecoder {
    /// Creates a decoder for `m` chains at block size `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is valid for 9C and divides `m`.
    pub fn new(k: usize, m: usize, table: CodeTable, clocks: ClockRatio) -> Self {
        assert!(
            m > 0 && m.is_multiple_of(k),
            "block size {k} must divide chain count {m}"
        );
        Self {
            k,
            m,
            inner: SingleScanDecoder::new(k, table, clocks),
        }
    }

    /// Number of chains `m`.
    pub fn chains(&self) -> usize {
        self.m
    }

    /// Block size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Runs the decoder against the compressed stream for `reference`
    /// (used for its dimensions: pattern count and length).
    ///
    /// # Errors
    ///
    /// See [`DecompressError`].
    pub fn run(
        &self,
        ate_bits: &BitVec,
        reference: &TestSet,
    ) -> Result<MultiScanTrace, DecompressError> {
        let chains = ScanChains::new(reference.pattern_len(), self.m)
            .expect("chain count validated against the reference set");
        let vertical_len = reference.num_patterns() * chains.padded_len();
        let decoder_trace = self.inner.run(ate_bits, vertical_len)?;

        // Regroup the decoded vertical stream into m-bit Load words and
        // un-rearrange into test patterns.
        let vertical = TritVec::from(&decoder_trace.scan_out);
        let loaded = chains.horizontal_set(&vertical);
        let loads = (vertical_len / self.m) as u64;
        // Live FSM cycle/load metrics for the multi-chain architecture;
        // the inner single-scan run already published its own counters.
        if ninec_obs::runtime_enabled() {
            let reg = ninec_obs::global();
            reg.counter("ninec.decomp.multi.runs").inc();
            reg.counter("ninec.decomp.multi.loads").add(loads);
            reg.counter("ninec.decomp.multi.soc_ticks")
                .add(decoder_trace.soc_ticks);
        }
        Ok(MultiScanTrace {
            loaded,
            decoder: decoder_trace,
            loads,
            pins: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec::encode::Encoder;
    use ninec::multiscan::encode_multiscan;
    use ninec_testdata::fill::FillStrategy;
    use ninec_testdata::gen::SyntheticProfile;

    fn setup(m: usize, k: usize) -> (TestSet, BitVec, MultiScanDecoder) {
        let ts = SyntheticProfile::new("mst", 12, 80, 0.75).generate(9);
        let encoded = encode_multiscan(&ts, m, k).unwrap();
        let bits = encoded.to_bitvec(FillStrategy::Random { seed: 1 });
        let dec = MultiScanDecoder::new(k, m, encoded.table().clone(), ClockRatio::new(8));
        (ts, bits, dec)
    }

    #[test]
    fn reconstructs_all_care_bits() {
        let (ts, bits, dec) = setup(16, 8);
        let trace = dec.run(&bits, &ts).unwrap();
        assert!(trace.loaded.covers(&ts));
        assert_eq!(trace.loaded.num_patterns(), ts.num_patterns());
    }

    #[test]
    fn load_count_is_chain_length_times_patterns() {
        let (ts, bits, dec) = setup(16, 8);
        let trace = dec.run(&bits, &ts).unwrap();
        // 80 cells over 16 chains -> l = 5 loads per pattern.
        assert_eq!(trace.loads, (ts.num_patterns() * 5) as u64);
    }

    #[test]
    fn same_test_time_as_single_scan_on_same_stream() {
        // The paper's claim: 1 pin, m chains, test time unchanged relative
        // to scanning the same (vertical) stream through one chain.
        let ts = SyntheticProfile::new("time", 10, 96, 0.8).generate(4);
        let k = 8;
        let m = 16;
        let encoded = encode_multiscan(&ts, m, k).unwrap();
        let bits = encoded.to_bitvec(FillStrategy::Zero);
        let multi = MultiScanDecoder::new(k, m, encoded.table().clone(), ClockRatio::new(8));
        let mtrace = multi.run(&bits, &ts).unwrap();

        let single = SingleScanDecoder::new(k, encoded.table().clone(), ClockRatio::new(8));
        let chains = ScanChains::new(ts.pattern_len(), m).unwrap();
        let vertical_len = ts.num_patterns() * chains.padded_len();
        let strace = single.run(&bits, vertical_len).unwrap();
        assert_eq!(mtrace.decoder.soc_ticks, strace.soc_ticks);
        assert_eq!(mtrace.pins, 1);
    }

    #[test]
    fn multiscan_encoding_differs_from_horizontal_but_decodes_back() {
        // Sanity: vertical arrangement is a genuinely different stream.
        let ts = SyntheticProfile::new("diff", 8, 64, 0.7).generate(2);
        let horizontal = Encoder::new(8).unwrap().encode_set(&ts);
        let vertical = encode_multiscan(&ts, 16, 8).unwrap();
        assert_ne!(horizontal.stream(), vertical.stream());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn k_must_divide_m() {
        let _ = MultiScanDecoder::new(8, 12, CodeTable::paper(), ClockRatio::new(1));
    }
}

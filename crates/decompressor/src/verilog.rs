//! Synthesizable Verilog export of the 9C decoder.
//!
//! Emits the decoder of Figure 1 as RTL: the control FSM (generated
//! directly from the verified behavioral table of [`crate::area`]), the
//! `log2(K/2)`-bit counter, the `K/2`-bit shifter and the 3-way output
//! MUX. The design runs in the SoC scan-clock domain; ATE bits arrive on
//! a `ate_strobe`-qualified `data_in`, which is how dual-clock test
//! interfaces are typically modelled before CDC hardening.

use crate::area::{decoder_fsm, IN_DATA, IN_DONE};
use std::fmt::Write as _;

/// Emits the decoder control FSM as a behavioral Verilog module
/// (`ninec_decoder_fsm`).
///
/// One always-block case over `{state, done, data}` generated from the
/// tabulated machine — the same table the cycle-accurate model and the
/// gate-level equivalence test use, so the three views cannot drift
/// apart.
///
/// # Examples
///
/// ```
/// use ninec_decompressor::verilog::fsm_verilog;
///
/// let rtl = fsm_verilog();
/// assert!(rtl.contains("module ninec_decoder_fsm"));
/// assert!(rtl.contains("endmodule"));
/// ```
pub fn fsm_verilog() -> String {
    let fsm = decoder_fsm();
    let sbits = fsm.state_bits();
    let mut v = String::new();
    writeln!(
        v,
        "// 9C decoder control FSM — generated from the verified table."
    )
    .unwrap();
    writeln!(
        v,
        "// {} states, inputs: data_in (serial codeword/payload), done (counter).",
        fsm.num_states()
    )
    .unwrap();
    writeln!(v, "module ninec_decoder_fsm (").unwrap();
    writeln!(v, "    input  wire clk,").unwrap();
    writeln!(v, "    input  wire rst_n,").unwrap();
    writeln!(
        v,
        "    input  wire step,      // advance on codeword-bit arrival or count tick"
    )
    .unwrap();
    writeln!(v, "    input  wire data_in,").unwrap();
    writeln!(v, "    input  wire done,").unwrap();
    writeln!(
        v,
        "    output wire [1:0] sel, // 00: const 0, 01: const 1, 10: shifter data"
    )
    .unwrap();
    writeln!(v, "    output wire cnt_en,").unwrap();
    writeln!(v, "    output wire ack").unwrap();
    writeln!(v, ");").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    reg [{}:0] state;", sbits - 1).unwrap();
    writeln!(v, "    reg [{}:0] state_next;", sbits - 1).unwrap();
    writeln!(v, "    reg [3:0]  outs;").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    always @(posedge clk or negedge rst_n) begin").unwrap();
    writeln!(v, "        if (!rst_n) state <= {sbits}'d0;").unwrap();
    writeln!(v, "        else if (step) state <= state_next;").unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    always @(*) begin").unwrap();
    writeln!(v, "        case ({{state, done, data_in}})").unwrap();
    for state in 0..fsm.num_states() {
        for input in 0..4u32 {
            let next = fsm.next_state(state, input);
            let outs = fsm.outputs(state, input);
            writeln!(
                v,
                "            {{{sbits}'d{state}, 1'b{}, 1'b{}}}: begin state_next = {sbits}'d{next}; outs = 4'b{outs:04b}; end",
                (input & IN_DONE != 0) as u8,
                (input & IN_DATA != 0) as u8,
            )
            .unwrap();
        }
    }
    writeln!(
        v,
        "            default: begin state_next = {sbits}'d0; outs = 4'b0000; end"
    )
    .unwrap();
    writeln!(v, "        endcase").unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    assign sel    = outs[1:0];").unwrap();
    writeln!(v, "    assign cnt_en = outs[2];").unwrap();
    writeln!(v, "    assign ack    = outs[3];").unwrap();
    writeln!(v, "endmodule").unwrap();
    v
}

/// Emits the complete single-scan decoder (Figure 1) for block size `k`
/// as module `ninec_decoder_k{K}`: the FSM plus counter, shifter and MUX.
///
/// # Panics
///
/// Panics unless `k` is even and at least 4.
///
/// # Examples
///
/// ```
/// use ninec_decompressor::verilog::decoder_verilog;
///
/// let rtl = decoder_verilog(8);
/// assert!(rtl.contains("module ninec_decoder_k8"));
/// assert!(rtl.contains("ninec_decoder_fsm"));
/// ```
pub fn decoder_verilog(k: usize) -> String {
    assert!(
        k >= 4 && k.is_multiple_of(2),
        "block size must be even and >= 4, got {k}"
    );
    let half = k / 2;
    let cbits = (usize::BITS - (half - 1).leading_zeros()).max(1) as usize;
    let mut v = fsm_verilog();
    writeln!(v).unwrap();
    writeln!(
        v,
        "// 9C single-scan decoder for K = {k} (Figure 1 of the paper)."
    )
    .unwrap();
    writeln!(
        v,
        "// data_in carries codeword bits and verbatim payload; scan_out feeds"
    )
    .unwrap();
    writeln!(v, "// the scan chain at the SoC scan clock.").unwrap();
    writeln!(v, "module ninec_decoder_k{k} (").unwrap();
    writeln!(v, "    input  wire clk,          // SoC scan clock").unwrap();
    writeln!(v, "    input  wire rst_n,").unwrap();
    writeln!(
        v,
        "    input  wire ate_strobe,   // pulses when an ATE bit is valid"
    )
    .unwrap();
    writeln!(v, "    input  wire data_in,").unwrap();
    writeln!(
        v,
        "    output wire ack,          // request the next codeword"
    )
    .unwrap();
    writeln!(v, "    output wire scan_en,").unwrap();
    writeln!(v, "    output wire scan_out").unwrap();
    writeln!(v, ");").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    wire [1:0] sel;").unwrap();
    writeln!(v, "    wire cnt_en;").unwrap();
    writeln!(v, "    reg  [{}:0] cnt;", cbits - 1).unwrap();
    writeln!(v, "    wire done = cnt == {cbits}'d{};", half - 1).unwrap();
    writeln!(v, "    reg  [{}:0] shifter;", half - 1).unwrap();
    writeln!(v).unwrap();
    writeln!(
        v,
        "    // Control: steps on ATE bits while parsing/receiving, on every"
    )
    .unwrap();
    writeln!(v, "    // scan tick while emitting.").unwrap();
    writeln!(v, "    wire step = cnt_en | ate_strobe;").unwrap();
    writeln!(v, "    ninec_decoder_fsm fsm (").unwrap();
    writeln!(v, "        .clk(clk), .rst_n(rst_n), .step(step),").unwrap();
    writeln!(v, "        .data_in(data_in), .done(done),").unwrap();
    writeln!(v, "        .sel(sel), .cnt_en(cnt_en), .ack(ack)").unwrap();
    writeln!(v, "    );").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    // log2(K/2)-bit half counter.").unwrap();
    writeln!(v, "    always @(posedge clk or negedge rst_n) begin").unwrap();
    writeln!(v, "        if (!rst_n)      cnt <= {cbits}'d0;").unwrap();
    writeln!(v, "        else if (!cnt_en) cnt <= {cbits}'d0;").unwrap();
    writeln!(v, "        else if (done)   cnt <= {cbits}'d0;").unwrap();
    writeln!(v, "        else             cnt <= cnt + {cbits}'d1;").unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v).unwrap();
    writeln!(
        v,
        "    // K/2-bit payload shifter: fills from the ATE, drains to the chain."
    )
    .unwrap();
    writeln!(v, "    always @(posedge clk) begin").unwrap();
    writeln!(v, "        if (ate_strobe)").unwrap();
    writeln!(
        v,
        "            shifter <= {{shifter[{}:0], data_in}};",
        half - 2
    )
    .unwrap();
    writeln!(v, "        else if (cnt_en && sel == 2'b10)").unwrap();
    writeln!(
        v,
        "            shifter <= {{shifter[{}:0], 1'b0}};",
        half - 2
    )
    .unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v).unwrap();
    writeln!(
        v,
        "    // Output MUX (constant 0 / constant 1 / shifter MSB)."
    )
    .unwrap();
    writeln!(v, "    assign scan_out = sel == 2'b01 ? 1'b1").unwrap();
    writeln!(
        v,
        "                    : sel == 2'b10 ? shifter[{}]",
        half - 1
    )
    .unwrap();
    writeln!(v, "                    : 1'b0;").unwrap();
    writeln!(v, "    assign scan_en  = cnt_en;").unwrap();
    writeln!(v, "endmodule").unwrap();
    v
}

/// Emits a self-checking Verilog testbench for [`decoder_verilog`]`(k)`:
/// it streams `ate_bits` into the decoder (one bit per `p` clocks) and
/// compares `scan_out` against `expected` — which callers obtain from the
/// cycle-accurate model ([`crate::single::SingleScanDecoder`]), so RTL
/// simulation cross-checks this workspace's reference implementation.
///
/// # Panics
///
/// Panics on an invalid `k` or `p == 0`.
pub fn testbench_verilog(
    k: usize,
    p: u32,
    ate_bits: &ninec_testdata::bits::BitVec,
    expected: &ninec_testdata::bits::BitVec,
) -> String {
    assert!(
        k >= 4 && k.is_multiple_of(2),
        "block size must be even and >= 4, got {k}"
    );
    assert!(p > 0, "clock ratio must be positive");
    let mut v = String::new();
    writeln!(
        v,
        "// Self-checking testbench for ninec_decoder_k{k} (p = {p})."
    )
    .unwrap();
    writeln!(v, "// Generated from the cycle-accurate reference model.").unwrap();
    writeln!(v, "`timescale 1ns/1ps").unwrap();
    writeln!(v, "module ninec_decoder_k{k}_tb;").unwrap();
    writeln!(v, "    reg clk = 0;").unwrap();
    writeln!(v, "    reg rst_n = 0;").unwrap();
    writeln!(v, "    reg ate_strobe = 0;").unwrap();
    writeln!(v, "    reg data_in = 0;").unwrap();
    writeln!(v, "    wire ack, scan_en, scan_out;").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    localparam ATE_BITS = {};", ate_bits.len()).unwrap();
    writeln!(v, "    localparam SCAN_BITS = {};", expected.len()).unwrap();
    writeln!(
        v,
        "    reg [0:ATE_BITS-1] stimulus = {}'b{};",
        ate_bits.len(),
        ate_bits
    )
    .unwrap();
    writeln!(
        v,
        "    reg [0:SCAN_BITS-1] expected = {}'b{};",
        expected.len(),
        expected
    )
    .unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    ninec_decoder_k{k} dut (").unwrap();
    writeln!(
        v,
        "        .clk(clk), .rst_n(rst_n), .ate_strobe(ate_strobe),"
    )
    .unwrap();
    writeln!(
        v,
        "        .data_in(data_in), .ack(ack), .scan_en(scan_en),"
    )
    .unwrap();
    writeln!(v, "        .scan_out(scan_out)").unwrap();
    writeln!(v, "    );").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    always #5 clk = ~clk;").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    integer ate_pos = 0;").unwrap();
    writeln!(v, "    integer scan_pos = 0;").unwrap();
    writeln!(v, "    integer errors = 0;").unwrap();
    writeln!(v).unwrap();
    writeln!(
        v,
        "    // Serve one ATE bit every {p} SoC clocks while the decoder wants data."
    )
    .unwrap();
    writeln!(v, "    integer phase = 0;").unwrap();
    writeln!(v, "    always @(negedge clk) begin").unwrap();
    writeln!(
        v,
        "        if (rst_n && !scan_en && ate_pos < ATE_BITS) begin"
    )
    .unwrap();
    writeln!(v, "            phase = phase + 1;").unwrap();
    writeln!(v, "            if (phase >= {p}) begin").unwrap();
    writeln!(v, "                phase = 0;").unwrap();
    writeln!(v, "                data_in <= stimulus[ate_pos];").unwrap();
    writeln!(v, "                ate_strobe <= 1;").unwrap();
    writeln!(v, "                ate_pos = ate_pos + 1;").unwrap();
    writeln!(v, "            end else ate_strobe <= 0;").unwrap();
    writeln!(v, "        end else ate_strobe <= 0;").unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v).unwrap();
    writeln!(
        v,
        "    // Check every scanned bit against the reference model."
    )
    .unwrap();
    writeln!(v, "    always @(posedge clk) begin").unwrap();
    writeln!(
        v,
        "        if (rst_n && scan_en && scan_pos < SCAN_BITS) begin"
    )
    .unwrap();
    writeln!(v, "            if (scan_out !== expected[scan_pos]) begin").unwrap();
    writeln!(
        v,
        "                $display(\"MISMATCH at scan bit %0d: got %b want %b\","
    )
    .unwrap();
    writeln!(
        v,
        "                         scan_pos, scan_out, expected[scan_pos]);"
    )
    .unwrap();
    writeln!(v, "                errors = errors + 1;").unwrap();
    writeln!(v, "            end").unwrap();
    writeln!(v, "            scan_pos = scan_pos + 1;").unwrap();
    writeln!(v, "        end").unwrap();
    writeln!(v, "        if (scan_pos == SCAN_BITS) begin").unwrap();
    writeln!(
        v,
        "            if (errors == 0) $display(\"PASS: %0d scan bits verified\", scan_pos);"
    )
    .unwrap();
    writeln!(
        v,
        "            else $display(\"FAIL: %0d mismatches\", errors);"
    )
    .unwrap();
    writeln!(v, "            $finish;").unwrap();
    writeln!(v, "        end").unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v).unwrap();
    writeln!(v, "    initial begin").unwrap();
    writeln!(v, "        repeat (4) @(posedge clk);").unwrap();
    writeln!(v, "        rst_n = 1;").unwrap();
    writeln!(v, "    end").unwrap();
    writeln!(v, "endmodule").unwrap();
    v
}

/// Quick structural sanity of emitted RTL: balanced module/endmodule and
/// begin/end, and non-empty case coverage. Used by the tests and handy
/// for callers writing the RTL to disk.
pub fn lint(rtl: &str) -> Result<(), String> {
    let m_open = rtl
        .lines()
        .filter(|l| l.trim_start().starts_with("module "))
        .count();
    let m_close = rtl.matches("endmodule").count();
    if m_open != m_close {
        return Err(format!(
            "unbalanced modules: {m_open} module vs {m_close} endmodule"
        ));
    }
    let begins = rtl.matches("begin").count();
    let ends = rtl
        .lines()
        .map(|l| {
            l.matches("end").count() - l.matches("endcase").count() - l.matches("endmodule").count()
        })
        .sum::<usize>();
    if begins != ends {
        return Err(format!("unbalanced begin/end: {begins} vs {ends}"));
    }
    let cases = rtl.matches("case (").count();
    let endcases = rtl.matches("endcase").count();
    if cases != endcases {
        return Err(format!("unbalanced case/endcase: {cases} vs {endcases}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_rtl_covers_every_state_input_pair() {
        let rtl = fsm_verilog();
        let fsm = decoder_fsm();
        let arms = rtl.matches("state_next = ").count();
        // 21 states x 4 inputs + default.
        assert_eq!(arms, fsm.num_states() * 4 + 1);
        lint(&rtl).unwrap();
    }

    #[test]
    fn fsm_rtl_outputs_match_table_encoding() {
        let rtl = fsm_verilog();
        // Spot-check a known arm: ACK state (20) always returns to 0 with
        // outs = 1000 (ack).
        assert!(
            rtl.contains("{5'd20, 1'b0, 1'b0}: begin state_next = 5'd0; outs = 4'b1000; end"),
            "ack arm missing:\n{rtl}"
        );
        // Parse root on data=1 goes to state 1 with all-low outputs.
        assert!(rtl.contains("{5'd0, 1'b0, 1'b1}: begin state_next = 5'd1; outs = 4'b0000; end"));
    }

    #[test]
    fn decoder_rtl_sizes_follow_k() {
        for (k, cnt_msb, shift_msb) in [(8usize, 1usize, 3usize), (32, 3, 15), (128, 5, 63)] {
            let rtl = decoder_verilog(k);
            assert!(rtl.contains(&format!("module ninec_decoder_k{k}")));
            assert!(rtl.contains(&format!("reg  [{cnt_msb}:0] cnt;")), "k={k}");
            assert!(
                rtl.contains(&format!("reg  [{shift_msb}:0] shifter;")),
                "k={k}"
            );
            lint(&rtl).unwrap();
        }
    }

    #[test]
    fn testbench_embeds_reference_vectors() {
        use crate::single::{ClockRatio, SingleScanDecoder};
        use ninec::encode::Encoder;
        use ninec_testdata::fill::FillStrategy;
        let src: ninec_testdata::TritVec = "0000000011111111".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let bits = enc.to_bitvec(FillStrategy::Zero);
        let decoder = SingleScanDecoder::new(8, enc.table().clone(), ClockRatio::new(4));
        let trace = decoder.run(&bits, src.len()).unwrap();
        let tb = testbench_verilog(8, 4, &bits, &trace.scan_out);
        assert!(tb.contains("module ninec_decoder_k8_tb"));
        assert!(tb.contains(&format!("{}'b{}", bits.len(), bits)));
        assert!(tb.contains(&format!("{}'b{}", trace.scan_out.len(), trace.scan_out)));
        assert!(tb.contains("PASS"));
        lint(&tb).unwrap();
    }

    #[test]
    fn lint_catches_imbalance() {
        assert!(lint("module m (\n);\n").is_err());
        assert!(lint("module m;\nalways begin\nendmodule\n").is_err());
        assert!(lint("module m;\nendmodule\n").is_ok());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn bad_k_panics() {
        let _ = decoder_verilog(6 + 1);
    }
}

//! ATE-side model: a bit-serial channel with the paper's Ack handshake.

use ninec_testdata::bits::BitVec;

/// The automatic test equipment as the decoder sees it: a stream of
/// compressed bits served one per ATE clock cycle.
///
/// The decoder asserts `Ack` after finishing a codeword; the channel
/// simply tracks how many bits have been drawn and how many ATE cycles
/// that consumed (one per bit, per the paper's timing model).
///
/// # Examples
///
/// ```
/// use ninec_decompressor::ate::AteChannel;
/// use ninec_testdata::bits::BitVec;
///
/// let mut ate = AteChannel::new(BitVec::from_str_radix2("101")?);
/// assert_eq!(ate.next_bit(), Some(true));
/// assert_eq!(ate.next_bit(), Some(false));
/// assert_eq!(ate.bits_served(), 2);
/// assert!(!ate.is_exhausted());
/// # Ok::<(), ninec_testdata::bits::ParseBitsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AteChannel {
    bits: BitVec,
    pos: usize,
}

impl AteChannel {
    /// Creates a channel serving `bits`.
    pub fn new(bits: BitVec) -> Self {
        Self { bits, pos: 0 }
    }

    /// Serves the next compressed bit (one ATE cycle), or `None` when the
    /// buffer is exhausted.
    pub fn next_bit(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.pos)?;
        self.pos += 1;
        Some(bit)
    }

    /// Bits served so far (= ATE cycles spent on data transfer).
    pub fn bits_served(&self) -> usize {
        self.pos
    }

    /// Total bits loaded into the channel.
    pub fn total_bits(&self) -> usize {
        self.bits.len()
    }

    /// `true` once every bit has been served.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_order_then_none() {
        let mut ate = AteChannel::new(BitVec::from_str_radix2("1100").unwrap());
        let got: Vec<bool> = std::iter::from_fn(|| ate.next_bit()).collect();
        assert_eq!(got, vec![true, true, false, false]);
        assert!(ate.is_exhausted());
        assert_eq!(ate.next_bit(), None);
        assert_eq!(ate.bits_served(), 4);
    }

    #[test]
    fn empty_channel() {
        let mut ate = AteChannel::new(BitVec::new());
        assert!(ate.is_exhausted());
        assert_eq!(ate.next_bit(), None);
        assert_eq!(ate.total_bits(), 0);
    }
}

//! Parallel decoders for pin-count / test-time trade-off (paper Fig. 4c).
//!
//! Instead of one decoder feeding an `m`-bit shifter, `m/K` decoders each
//! own a `K`-bit slice of the shifter and an ATE pin. All decoders run
//! concurrently, so test time drops by a factor of `m/K` at the cost of
//! `m/K` pins and decoders — the end point of the paper's reduced
//! pin-count spectrum (Fig. 4a: 1 pin / 1 chain; 4b: 1 pin / m chains;
//! 4c: m/K pins / m chains).

use crate::single::{ClockRatio, DecompressError, SingleScanDecoder};
use ninec::encode::{Encoded, Encoder};
use ninec::multiscan::ScanChains;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// Result of a parallel-decoder run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelTrace {
    /// The reconstructed test set.
    pub loaded: TestSet,
    /// Per-decoder SoC tick counts.
    pub per_decoder_ticks: Vec<u64>,
    /// Wall-clock SoC ticks (the slowest decoder; they run concurrently).
    pub soc_ticks: u64,
    /// ATE pins used (= number of decoders).
    pub pins: usize,
    /// Total compressed bits across all pins.
    pub total_ate_bits: u64,
}

impl fmt::Display for ParallelTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pins, {} SoC ticks (slowest decoder), {} compressed bits",
            self.pins, self.soc_ticks, self.total_ate_bits
        )
    }
}

/// The Fig. 4c architecture: `m / K` decoders, each with its own pin.
///
/// # Examples
///
/// ```
/// use ninec_decompressor::parallel::ParallelDecoders;
/// use ninec_decompressor::single::ClockRatio;
/// use ninec_testdata::gen::SyntheticProfile;
///
/// let ts = SyntheticProfile::new("par", 10, 64, 0.8).generate(1);
/// let arch = ParallelDecoders::new(8, 32, ClockRatio::new(8))?;
/// let trace = arch.compress_and_run(&ts, ninec_testdata::fill::FillStrategy::Zero)?;
/// assert_eq!(trace.pins, 4);
/// assert!(trace.loaded.covers(&ts));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelDecoders {
    k: usize,
    m: usize,
    clocks: ClockRatio,
}

/// Error: invalid parallel-decoder geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGeometry {
    /// Block size requested.
    pub k: usize,
    /// Chain count requested.
    pub m: usize,
}

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "need even k >= 4 dividing m (got k={}, m={})",
            self.k, self.m
        )
    }
}

impl std::error::Error for InvalidGeometry {}

impl ParallelDecoders {
    /// Creates the architecture: `m` chains served by `m / k` decoders.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] unless `k` is a valid 9C block size
    /// dividing `m`.
    pub fn new(k: usize, m: usize, clocks: ClockRatio) -> Result<Self, InvalidGeometry> {
        if k < 4 || !k.is_multiple_of(2) || m == 0 || !m.is_multiple_of(k) {
            return Err(InvalidGeometry { k, m });
        }
        Ok(Self { k, m, clocks })
    }

    /// Number of decoders / pins (`m / K`).
    pub fn pins(&self) -> usize {
        self.m / self.k
    }

    /// Splits the vertical stream of `set` into one sub-stream per
    /// decoder: decoder `d` owns bit positions `[d·K, (d+1)·K)` of every
    /// `m`-bit load word.
    pub fn slice_streams(&self, set: &TestSet) -> (ScanChains, Vec<TritVec>) {
        let chains = ScanChains::new(set.pattern_len(), self.m)
            .expect("m validated against pattern length by caller");
        let vertical = chains.vertical_stream(set);
        let words = vertical.len() / self.m;
        let mut slices = vec![TritVec::with_capacity(words * self.k); self.pins()];
        for w in 0..words {
            for (d, slice) in slices.iter_mut().enumerate() {
                for b in 0..self.k {
                    slice.push(
                        vertical
                            .get(w * self.m + d * self.k + b)
                            .expect("within vertical stream"),
                    );
                }
            }
        }
        (chains, slices)
    }

    /// Compresses `set` per decoder, runs all decoders, and reassembles
    /// the loaded test set.
    ///
    /// # Errors
    ///
    /// See [`DecompressError`].
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the set's pattern length.
    pub fn compress_and_run(
        &self,
        set: &TestSet,
        fill: FillStrategy,
    ) -> Result<ParallelTrace, DecompressError> {
        let (chains, slices) = self.slice_streams(set);
        let encoder = Encoder::new(self.k).expect("geometry validated");
        let encoded: Vec<Encoded> = slices.iter().map(|s| encoder.encode_stream(s)).collect();

        let mut per_decoder_ticks = Vec::with_capacity(self.pins());
        let mut outputs: Vec<TritVec> = Vec::with_capacity(self.pins());
        let mut total_ate_bits = 0u64;
        for (slice, enc) in slices.iter().zip(&encoded) {
            let decoder = SingleScanDecoder::new(self.k, enc.table().clone(), self.clocks);
            let bits = enc.to_bitvec(fill);
            let trace = decoder.run(&bits, slice.len())?;
            per_decoder_ticks.push(trace.soc_ticks);
            total_ate_bits += trace.ate_bits;
            outputs.push(TritVec::from(&trace.scan_out));
        }

        // Interleave decoder outputs back into the vertical stream.
        let words = outputs[0].len() / self.k;
        let mut vertical = TritVec::with_capacity(words * self.m);
        for w in 0..words {
            for output in &outputs {
                for b in 0..self.k {
                    vertical.push(output.get(w * self.k + b).unwrap_or(Trit::X));
                }
            }
        }
        let loaded = chains.horizontal_set(&vertical);
        let soc_ticks = per_decoder_ticks.iter().copied().max().unwrap_or(0);
        // Live metrics for the parallel architecture: aggregate cycle
        // counts plus a per-decoder tick histogram exposing the load
        // imbalance that determines the critical path.
        if ninec_obs::runtime_enabled() {
            let reg = ninec_obs::global();
            reg.counter("ninec.decomp.parallel.runs").inc();
            reg.counter("ninec.decomp.parallel.soc_ticks")
                .add(soc_ticks);
            reg.counter("ninec.decomp.parallel.ate_bits")
                .add(total_ate_bits);
            reg.gauge("ninec.decomp.parallel.pins")
                .set(self.pins() as f64);
            let ticks = reg.histogram("ninec.decomp.parallel.decoder_ticks");
            for &t in &per_decoder_ticks {
                ticks.record(t);
            }
        }
        Ok(ParallelTrace {
            loaded,
            per_decoder_ticks,
            soc_ticks,
            pins: self.pins(),
            total_ate_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::MultiScanDecoder;
    use ninec::multiscan::encode_multiscan;
    use ninec_testdata::gen::SyntheticProfile;

    #[test]
    fn geometry_validation() {
        assert!(ParallelDecoders::new(8, 32, ClockRatio::new(1)).is_ok());
        assert!(ParallelDecoders::new(8, 12, ClockRatio::new(1)).is_err());
        assert!(ParallelDecoders::new(3, 12, ClockRatio::new(1)).is_err());
        assert!(ParallelDecoders::new(8, 0, ClockRatio::new(1)).is_err());
    }

    #[test]
    fn reconstruction_covers_source() {
        let ts = SyntheticProfile::new("pc", 14, 96, 0.8).generate(3);
        let arch = ParallelDecoders::new(8, 32, ClockRatio::new(8)).unwrap();
        let trace = arch
            .compress_and_run(&ts, FillStrategy::Random { seed: 7 })
            .unwrap();
        assert!(trace.loaded.covers(&ts));
        assert_eq!(trace.pins, 4);
        assert_eq!(trace.per_decoder_ticks.len(), 4);
    }

    #[test]
    fn parallelism_cuts_test_time_vs_single_pin() {
        let ts = SyntheticProfile::new("speed", 12, 128, 0.8).generate(5);
        let k = 8;
        let m = 32;
        // Single-pin multi-scan baseline.
        let encoded = encode_multiscan(&ts, m, k).unwrap();
        let bits = encoded.to_bitvec(FillStrategy::Zero);
        let single_pin = MultiScanDecoder::new(k, m, encoded.table().clone(), ClockRatio::new(8));
        let baseline = single_pin.run(&bits, &ts).unwrap().decoder.soc_ticks;
        // Fig 4c with m/K = 4 decoders.
        let arch = ParallelDecoders::new(k, m, ClockRatio::new(8)).unwrap();
        let par = arch.compress_and_run(&ts, FillStrategy::Zero).unwrap();
        let speedup = baseline as f64 / par.soc_ticks as f64;
        assert!(
            speedup > 2.0 && speedup <= 4.5,
            "expected ~4x speedup, got {speedup:.2} ({baseline} vs {})",
            par.soc_ticks
        );
    }

    #[test]
    fn slices_partition_the_vertical_stream() {
        let ts = SyntheticProfile::new("slice", 6, 64, 0.7).generate(8);
        let arch = ParallelDecoders::new(8, 16, ClockRatio::new(1)).unwrap();
        let (chains, slices) = arch.slice_streams(&ts);
        let total: usize = slices.iter().map(TritVec::len).sum();
        assert_eq!(total, ts.num_patterns() * chains.padded_len());
        assert_eq!(slices.len(), 2);
    }
}

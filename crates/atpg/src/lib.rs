//! Automatic test pattern generation (ATPG) for full-scan circuits.
//!
//! Produces exactly the artifact the 9C paper starts from: a precomputed
//! test-cube set `T_D` with abundant don't-cares.
//!
//! - [`values`] — the five-valued D-calculus (good/faulty trit pairs);
//! - [`mod@podem`] — the PODEM algorithm with backtracking;
//! - [`generate`] — the full flow: collapsed fault list → PODEM →
//!   fault-dropping → reverse-order compaction.
//!
//! # Example
//!
//! ```
//! use ninec_atpg::generate::{generate_tests, AtpgConfig};
//! use ninec_circuit::bench::{parse_bench, S27};
//!
//! let s27 = parse_bench(S27)?;
//! let result = generate_tests(&s27, AtpgConfig::default());
//! println!("{result}");
//! // The cube set feeds straight into the 9C encoder.
//! let cubes = &result.tests;
//! assert!(cubes.x_density() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod generate;
pub mod podem;
pub mod values;

pub use generate::{compact_reverse_order, generate_tests, AtpgConfig, AtpgResult, FaultStatus};
pub use podem::{podem, PodemConfig, PodemOutcome};

//! Full ATPG flow: fault list → PODEM → fault-simulation fault dropping →
//! optional reverse-order compaction, producing a [`TestSet`] of cubes with
//! don't-cares — exactly the `T_D` the 9C paper compresses.

use crate::podem::{podem, PodemConfig, PodemOutcome};
use ninec_circuit::Circuit;
use ninec_fsim::fault::{collapsed_faults, StuckFault};
use ninec_fsim::fsim::fault_simulate;
use ninec_testdata::cube::TestSet;
use std::fmt;

/// Options for [`generate_tests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Per-fault PODEM limits.
    pub podem: PodemConfig,
    /// Run a reverse-order compaction pass at the end.
    pub compact: bool,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        Self {
            podem: PodemConfig::default(),
            compact: true,
        }
    }
}

/// Per-fault verdict of an ATPG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// Detected (possibly by a cube targeting another fault).
    Detected,
    /// Proven untestable.
    Untestable,
    /// Given up at the backtrack limit.
    Aborted,
}

/// Result of an ATPG run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgResult {
    /// The generated test cubes.
    pub tests: TestSet,
    /// The collapsed fault list that was targeted.
    pub faults: Vec<StuckFault>,
    /// Verdict per fault, parallel to `faults`.
    pub status: Vec<FaultStatus>,
}

impl AtpgResult {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == FaultStatus::Detected)
            .count()
    }

    /// Number of proven-untestable faults.
    pub fn untestable(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == FaultStatus::Untestable)
            .count()
    }

    /// Number of aborted faults.
    pub fn aborted(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == FaultStatus::Aborted)
            .count()
    }

    /// Fault coverage over all targeted faults, percent.
    pub fn coverage_percent(&self) -> f64 {
        if self.faults.is_empty() {
            return 100.0;
        }
        self.detected() as f64 / self.faults.len() as f64 * 100.0
    }

    /// Fault *efficiency*: detected plus proven untestable, percent.
    pub fn efficiency_percent(&self) -> f64 {
        if self.faults.is_empty() {
            return 100.0;
        }
        (self.detected() + self.untestable()) as f64 / self.faults.len() as f64 * 100.0
    }
}

impl fmt::Display for AtpgResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cubes, {}/{} detected ({:.1}% coverage, {:.1}% efficiency, {} untestable, {} aborted)",
            self.tests.num_patterns(),
            self.detected(),
            self.faults.len(),
            self.coverage_percent(),
            self.efficiency_percent(),
            self.untestable(),
            self.aborted()
        )
    }
}

/// Generates a test-cube set for all collapsed stuck-at faults of
/// `circuit`.
///
/// For each undetected fault, PODEM produces a cube; the cube is then
/// fault-simulated against all remaining faults so fortuitous detections
/// drop them from the target list (cubes stay as generated — don't-cares
/// are *not* filled, they are the raw material 9C compresses).
///
/// # Examples
///
/// ```
/// use ninec_atpg::generate::{generate_tests, AtpgConfig};
/// use ninec_circuit::bench::{parse_bench, S27};
///
/// let s27 = parse_bench(S27)?;
/// let result = generate_tests(&s27, AtpgConfig::default());
/// assert_eq!(result.coverage_percent(), 100.0);
/// assert!(result.tests.as_stream().count_x() > 0, "cubes keep their don't-cares");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_tests(circuit: &Circuit, config: AtpgConfig) -> AtpgResult {
    let faults = collapsed_faults(circuit);
    let width = circuit.scan_view().cube_width();
    let mut status = vec![None; faults.len()];
    let mut tests = TestSet::new(width);

    for target in 0..faults.len() {
        if status[target].is_some() {
            continue;
        }
        match podem(circuit, faults[target], config.podem) {
            PodemOutcome::Detected(cube) => {
                let mut single = TestSet::new(width);
                single
                    .push_pattern(&cube)
                    .expect("PODEM cube has scan width");
                // Drop every remaining fault this cube detects.
                let remaining: Vec<usize> =
                    (0..faults.len()).filter(|&i| status[i].is_none()).collect();
                let subset: Vec<StuckFault> = remaining.iter().map(|&i| faults[i]).collect();
                let sim = fault_simulate(circuit, &single, &subset);
                for (slot, det) in remaining.iter().zip(&sim.first_detection) {
                    if det.is_some() {
                        status[*slot] = Some(FaultStatus::Detected);
                    }
                }
                debug_assert_eq!(status[target], Some(FaultStatus::Detected));
                status[target].get_or_insert(FaultStatus::Detected);
                tests
                    .push_pattern(&cube)
                    .expect("PODEM cube has scan width");
            }
            PodemOutcome::Untestable => status[target] = Some(FaultStatus::Untestable),
            PodemOutcome::Aborted => status[target] = Some(FaultStatus::Aborted),
        }
    }

    let status: Vec<FaultStatus> = status
        .into_iter()
        .map(|s| s.unwrap_or(FaultStatus::Aborted))
        .collect();
    let tests = if config.compact {
        compact_reverse_order(circuit, &tests, &faults)
    } else {
        tests
    };
    AtpgResult {
        tests,
        faults,
        status,
    }
}

/// Static merge compaction: greedily merges *compatible* cubes (no
/// position where one holds 0 and the other 1) into single cubes carrying
/// the union of their care bits.
///
/// Merging compatible cubes can never lose single-stuck-at coverage —
/// every merged cube covers each original cube's care bits, so any
/// definite detection of an original cube is preserved (possibly moved to
/// an earlier pattern). The resulting set is denser in care bits, which
/// is exactly the profile compacted industrial sets (e.g. Mintest) show.
///
/// # Examples
///
/// ```
/// use ninec_atpg::generate::compact_merge;
/// use ninec_testdata::cube::TestSet;
///
/// let cubes = TestSet::from_patterns(4, ["1XX0", "X1X0", "0XXX"])?;
/// let merged = compact_merge(&cubes);
/// // The first two are compatible and merge to "11X0"; the third clashes.
/// assert_eq!(merged.num_patterns(), 2);
/// assert_eq!(merged.pattern(0).to_string(), "11X0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compact_merge(tests: &TestSet) -> TestSet {
    let mut merged: Vec<ninec_testdata::trit::TritVec> = Vec::new();
    for cube in tests.patterns() {
        match merged.iter_mut().find(|m| m.compatible_with(&cube)) {
            Some(slot) => {
                // Union of care bits.
                for i in 0..slot.len() {
                    let c = cube.get(i).expect("in range");
                    if c.is_care() {
                        slot.set(i, c);
                    }
                }
            }
            None => merged.push(cube),
        }
    }
    let mut out = TestSet::new(tests.pattern_len());
    for m in merged {
        out.push_pattern(&m).expect("merge preserves length");
    }
    out
}

/// Reverse-order compaction: replays the cubes last-to-first and keeps
/// only those that detect a fault no later-kept cube detects.
///
/// Later ATPG cubes tend to be the hard, specific ones; replaying them
/// first lets them absorb the fortuitous coverage of early cubes.
pub fn compact_reverse_order(circuit: &Circuit, tests: &TestSet, faults: &[StuckFault]) -> TestSet {
    let mut undetected: Vec<StuckFault> = faults.to_vec();
    let mut keep: Vec<usize> = Vec::new();
    for idx in (0..tests.num_patterns()).rev() {
        if undetected.is_empty() {
            break;
        }
        let mut single = TestSet::new(tests.pattern_len());
        single
            .push_pattern(&tests.pattern(idx))
            .expect("same width");
        let sim = fault_simulate(circuit, &single, &undetected);
        let detected_any = sim.first_detection.iter().any(Option::is_some);
        if detected_any {
            keep.push(idx);
            undetected = sim
                .first_detection
                .iter()
                .zip(&undetected)
                .filter_map(|(d, f)| d.is_none().then_some(*f))
                .collect();
        }
    }
    keep.sort_unstable();
    let mut out = TestSet::new(tests.pattern_len());
    for idx in keep {
        out.push_pattern(&tests.pattern(idx)).expect("same width");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_circuit::bench::{parse_bench, C17, S27};
    use ninec_circuit::random::RandomCircuitSpec;
    use ninec_fsim::fsim::fault_simulate as fsim;

    #[test]
    fn c17_full_coverage() {
        let c17 = parse_bench(C17).unwrap();
        let r = generate_tests(&c17, AtpgConfig::default());
        assert_eq!(r.coverage_percent(), 100.0);
        assert!(r.tests.num_patterns() >= 4, "c17 needs at least 4 tests");
        // The kept set still covers everything.
        let sim = fsim(&c17, &r.tests, &r.faults);
        assert_eq!(sim.detected(), r.faults.len());
    }

    #[test]
    fn s27_full_coverage_with_x() {
        let s27 = parse_bench(S27).unwrap();
        let r = generate_tests(&s27, AtpgConfig::default());
        assert_eq!(r.coverage_percent(), 100.0);
        assert!(r.tests.as_stream().x_density() > 0.05);
    }

    #[test]
    fn merge_compaction_reduces_patterns_and_keeps_coverage() {
        let c = RandomCircuitSpec::new("mg", 6, 8, 90).generate(4);
        let r = generate_tests(
            &c,
            AtpgConfig {
                compact: false,
                ..Default::default()
            },
        );
        let merged = compact_merge(&r.tests);
        assert!(merged.num_patterns() <= r.tests.num_patterns());
        let before = fsim(&c, &r.tests, &r.faults).detected();
        let after = fsim(&c, &merged, &r.faults).detected();
        assert!(
            after >= before,
            "merge compaction lost coverage: {after} < {before}"
        );
        // Merged cubes are denser in care bits per pattern.
        if merged.num_patterns() < r.tests.num_patterns() {
            assert!(merged.x_density() <= r.tests.x_density());
        }
    }

    #[test]
    fn merge_respects_incompatibility() {
        let ts = TestSet::from_patterns(3, ["1XX", "0XX", "X1X", "X0X"]).unwrap();
        let merged = compact_merge(&ts);
        // "1XX"+"X1X" -> "11X"; "0XX"+"X0X" -> "00X".
        assert_eq!(merged.num_patterns(), 2);
        assert_eq!(merged.pattern(0).to_string(), "11X");
        assert_eq!(merged.pattern(1).to_string(), "00X");
    }

    #[test]
    fn merge_then_reverse_order_stack() {
        // The two compaction passes compose.
        let c = RandomCircuitSpec::new("stack", 6, 8, 90).generate(8);
        let r = generate_tests(
            &c,
            AtpgConfig {
                compact: false,
                ..Default::default()
            },
        );
        let merged = compact_merge(&r.tests);
        let final_set = compact_reverse_order(&c, &merged, &r.faults);
        assert!(final_set.num_patterns() <= merged.num_patterns());
        let before = fsim(&c, &r.tests, &r.faults).detected();
        let after = fsim(&c, &final_set, &r.faults).detected();
        assert!(after >= before);
    }

    #[test]
    fn compaction_never_loses_coverage() {
        let c = RandomCircuitSpec::new("cz", 6, 8, 80).generate(5);
        let full = generate_tests(
            &c,
            AtpgConfig {
                compact: false,
                ..Default::default()
            },
        );
        let compacted = compact_reverse_order(&c, &full.tests, &full.faults);
        assert!(compacted.num_patterns() <= full.tests.num_patterns());
        let before = fsim(&c, &full.tests, &full.faults).detected();
        let after = fsim(&c, &compacted, &full.faults).detected();
        assert_eq!(before, after);
    }

    #[test]
    fn random_circuit_efficiency() {
        let c = RandomCircuitSpec::new("rz", 8, 8, 120).generate(9);
        let r = generate_tests(&c, AtpgConfig::default());
        // Every fault should be resolved one way or another on a circuit
        // this small.
        assert!(r.efficiency_percent() > 95.0, "{r}");
    }

    #[test]
    fn untestable_faults_do_not_block() {
        // Redundant logic: y = OR(a, NOT(a)) AND b.
        use ninec_circuit::{Circuit, GateKind};
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let na = c.add_gate("na", GateKind::Not, vec![a]).unwrap();
        let t = c.add_gate("t", GateKind::Or, vec![a, na]).unwrap();
        let y = c.add_gate("y", GateKind::And, vec![t, b]).unwrap();
        c.mark_output(y);
        let c = c.validate().unwrap();
        let r = generate_tests(&c, AtpgConfig::default());
        assert!(r.untestable() >= 1, "{r}");
        assert!(r.detected() >= 2);
        assert_eq!(r.efficiency_percent(), 100.0);
    }

    #[test]
    fn display_summarizes() {
        let c17 = parse_bench(C17).unwrap();
        let r = generate_tests(&c17, AtpgConfig::default());
        let s = r.to_string();
        assert!(s.contains("coverage") && s.contains("cubes"));
    }
}

//! The PODEM test-generation algorithm (Goel, 1981).
//!
//! PODEM searches over primary-input assignments only: an *objective*
//! (excite the fault, then advance the D-frontier) is backtraced to an
//! unassigned input, the assignment is implied forward in the five-valued
//! D-calculus, and conflicts are undone by flipping the most recent
//! unflipped decision.

use crate::values::{controlling_value, eval_gate5, inverts, DValue};
use ninec_circuit::{Circuit, GateKind, NetId};
use ninec_fsim::fault::StuckFault;
use ninec_testdata::trit::{Trit, TritVec};

/// Search limits for one PODEM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Maximum number of backtracks before giving up on the fault.
    pub backtrack_limit: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        Self {
            backtrack_limit: 4096,
        }
    }
}

/// Result of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube (over the scan view's inputs, with don't-cares) that
    /// definitely detects the fault.
    Detected(TritVec),
    /// The decision space was exhausted: the fault is untestable.
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// Runs PODEM for one stuck-at fault on the full-scan view of `circuit`.
///
/// # Examples
///
/// ```
/// use ninec_atpg::podem::{podem, PodemConfig, PodemOutcome};
/// use ninec_circuit::bench::{parse_bench, C17};
/// use ninec_fsim::fault::StuckFault;
///
/// let c17 = parse_bench(C17)?;
/// let n10 = c17.net_by_name("N10").unwrap();
/// match podem(&c17, StuckFault::sa1(n10), PodemConfig::default()) {
///     PodemOutcome::Detected(cube) => assert_eq!(cube.len(), 5),
///     other => panic!("expected detection, got {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn podem(circuit: &Circuit, fault: StuckFault, config: PodemConfig) -> PodemOutcome {
    Podem::new(circuit, fault, config).run()
}

struct Podem<'a> {
    circuit: &'a Circuit,
    fault: StuckFault,
    config: PodemConfig,
    /// Scan-view input nets and the reverse map net -> cube position.
    inputs: Vec<NetId>,
    input_pos: Vec<Option<usize>>,
    outputs: Vec<NetId>,
    /// Current cube (assignments to scan-view inputs).
    cube: Vec<Trit>,
    /// Current implied net values.
    values: Vec<DValue>,
    /// Decision stack: (cube position, value, flipped yet?).
    decisions: Vec<(usize, bool, bool)>,
    backtracks: usize,
}

impl<'a> Podem<'a> {
    fn new(circuit: &'a Circuit, fault: StuckFault, config: PodemConfig) -> Self {
        let view = circuit.scan_view();
        let mut input_pos = vec![None; circuit.num_gates()];
        for (pos, &net) in view.inputs.iter().enumerate() {
            input_pos[net] = Some(pos);
        }
        Self {
            circuit,
            fault,
            config,
            cube: vec![Trit::X; view.inputs.len()],
            inputs: view.inputs,
            input_pos,
            outputs: view.outputs,
            values: vec![DValue::X; circuit.num_gates()],
            decisions: Vec::new(),
            backtracks: 0,
        }
    }

    fn run(&mut self) -> PodemOutcome {
        loop {
            self.imply();
            if self.detected() {
                let cube: TritVec = self.cube.iter().copied().collect();
                return PodemOutcome::Detected(cube);
            }
            if self.conflict() {
                match self.backtrack() {
                    Backtrack::Continue => continue,
                    Backtrack::Exhausted => return PodemOutcome::Untestable,
                    Backtrack::LimitHit => return PodemOutcome::Aborted,
                }
            }
            match self.objective() {
                Some((net, val)) => {
                    let (pos, bit) = self.backtrace(net, val);
                    self.cube[pos] = Trit::from(bit);
                    self.decisions.push((pos, bit, false));
                }
                None => {
                    // No classic objective: reconvergence can leave the
                    // fault effect pending on half-known values. Keep the
                    // search complete by assigning any free input; if none
                    // is left, this branch is dead.
                    match self.cube.iter().position(|t| t.is_x()) {
                        Some(pos) => {
                            self.cube[pos] = Trit::Zero;
                            self.decisions.push((pos, false, false));
                        }
                        None => match self.backtrack() {
                            Backtrack::Continue => continue,
                            Backtrack::Exhausted => return PodemOutcome::Untestable,
                            Backtrack::LimitHit => return PodemOutcome::Aborted,
                        },
                    }
                }
            }
        }
    }

    /// Forward-implies the current cube through both machines.
    fn imply(&mut self) {
        for v in self.values.iter_mut() {
            *v = DValue::X;
        }
        for (pos, &net) in self.inputs.iter().enumerate() {
            let t = self.cube[pos];
            self.values[net] = DValue::new(t, t);
        }
        let stuck = Trit::from(self.fault.stuck_at_one);
        // The faulty machine holds the stuck value at the fault site.
        if self.input_pos[self.fault.net].is_some() {
            self.values[self.fault.net].faulty = stuck;
        }
        for &net in self.circuit.topo_order() {
            let gate = self.circuit.gate(net);
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let fanins: Vec<DValue> = gate.inputs.iter().map(|&i| self.values[i]).collect();
            let mut out = eval_gate5(gate.kind, &fanins);
            if net == self.fault.net {
                out.faulty = stuck;
            }
            self.values[net] = out;
        }
    }

    fn detected(&self) -> bool {
        self.outputs.iter().any(|&net| self.values[net].is_error())
    }

    /// The good value at the fault site needed to excite the fault.
    fn excitation_value(&self) -> bool {
        !self.fault.stuck_at_one
    }

    fn conflict(&self) -> bool {
        let site = self.values[self.fault.net].good;
        match site.value() {
            // Fault cannot be excited any more.
            Some(v) if v == self.fault.stuck_at_one => true,
            // Excited: conflict when the error can no longer reach an
            // output (D-frontier empty and not detected).
            Some(_) => self.d_frontier().is_empty() && !self.detected(),
            None => false,
        }
    }

    /// Gates whose output is still unknown in at least one machine but
    /// which have a fault effect on an input.
    fn d_frontier(&self) -> Vec<NetId> {
        let mut frontier = Vec::new();
        for &net in self.circuit.topo_order() {
            let gate = self.circuit.gate(net);
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let out = self.values[net];
            if out.is_error() {
                continue;
            }
            if out.good.is_care() && out.faulty.is_care() {
                continue; // fully resolved, no error
            }
            if gate.inputs.iter().any(|&i| self.values[i].is_error()) {
                frontier.push(net);
            }
        }
        frontier
    }

    /// Chooses the next objective `(net, value)`.
    fn objective(&self) -> Option<(NetId, bool)> {
        let site = self.values[self.fault.net].good;
        if site.is_x() {
            return Some((self.fault.net, self.excitation_value()));
        }
        // Advance the first D-frontier gate: set an unknown input to the
        // gate's non-controlling value.
        for gate_net in self.d_frontier() {
            let gate = self.circuit.gate(gate_net);
            let non_controlling = controlling_value(gate.kind).map(|c| !c).unwrap_or(false);
            for &input in &gate.inputs {
                if self.values[input].good.is_x() {
                    return Some((input, non_controlling));
                }
            }
        }
        None
    }

    /// Walks an objective back to an unassigned scan-view input.
    fn backtrace(&self, mut net: NetId, mut val: bool) -> (usize, bool) {
        loop {
            if let Some(pos) = self.input_pos[net] {
                return (pos, val);
            }
            let gate = self.circuit.gate(net);
            let v_in = val ^ inverts(gate.kind);
            // Pick the first input whose good value is still unknown.
            let input = gate
                .inputs
                .iter()
                .copied()
                .find(|&i| self.values[i].good.is_x())
                .unwrap_or(gate.inputs[0]);
            net = input;
            val = v_in;
        }
    }

    fn backtrack(&mut self) -> Backtrack {
        self.backtracks += 1;
        if self.backtracks > self.config.backtrack_limit {
            return Backtrack::LimitHit;
        }
        while let Some((pos, bit, flipped)) = self.decisions.pop() {
            self.cube[pos] = Trit::X;
            if !flipped {
                let nb = !bit;
                self.cube[pos] = Trit::from(nb);
                self.decisions.push((pos, nb, true));
                return Backtrack::Continue;
            }
        }
        Backtrack::Exhausted
    }
}

enum Backtrack {
    Continue,
    Exhausted,
    LimitHit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_circuit::bench::{parse_bench, C17, S27};
    use ninec_fsim::fault::collapsed_faults;
    use ninec_fsim::fsim::fault_simulate;
    use ninec_testdata::cube::TestSet;

    fn check_detects(circuit: &Circuit, fault: StuckFault, cube: &TritVec) {
        let mut ts = TestSet::new(cube.len());
        ts.push_pattern(cube).unwrap();
        let r = fault_simulate(circuit, &ts, &[fault]);
        assert_eq!(
            r.first_detection[0],
            Some(0),
            "cube {cube} does not detect {fault}"
        );
    }

    #[test]
    fn every_c17_fault_gets_a_verified_cube() {
        let c17 = parse_bench(C17).unwrap();
        for fault in collapsed_faults(&c17) {
            match podem(&c17, fault, PodemConfig::default()) {
                PodemOutcome::Detected(cube) => check_detects(&c17, fault, &cube),
                other => panic!("{fault}: expected detection, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_s27_fault_gets_a_verified_cube() {
        let s27 = parse_bench(S27).unwrap();
        for fault in collapsed_faults(&s27) {
            match podem(&s27, fault, PodemConfig::default()) {
                PodemOutcome::Detected(cube) => check_detects(&s27, fault, &cube),
                other => panic!("{fault}: expected detection, got {other:?}"),
            }
        }
    }

    #[test]
    fn cubes_leave_dont_cares() {
        let c17 = parse_bench(C17).unwrap();
        let n10 = c17.net_by_name("N10").unwrap();
        match podem(&c17, StuckFault::sa1(n10), PodemConfig::default()) {
            PodemOutcome::Detected(cube) => {
                assert!(
                    cube.count_x() > 0,
                    "PODEM cubes should keep unassigned PIs as X"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn untestable_fault_reported() {
        // y = OR(a, NOT(a)) is constant 1: y/sa1 is untestable.
        let mut c = Circuit::new("const1");
        let a = c.add_input("a");
        let na = c.add_gate("na", GateKind::Not, vec![a]).unwrap();
        let y = c.add_gate("y", GateKind::Or, vec![a, na]).unwrap();
        c.mark_output(y);
        let c = c.validate().unwrap();
        let out = podem(&c, StuckFault::sa1(y), PodemConfig::default());
        assert_eq!(out, PodemOutcome::Untestable);
        // And y/sa0 is detected by any input value.
        assert!(matches!(
            podem(&c, StuckFault::sa0(y), PodemConfig::default()),
            PodemOutcome::Detected(_)
        ));
    }

    #[test]
    fn fault_on_primary_input_handled() {
        let c17 = parse_bench(C17).unwrap();
        let n1 = c17.net_by_name("N1").unwrap();
        for fault in [StuckFault::sa0(n1), StuckFault::sa1(n1)] {
            match podem(&c17, fault, PodemConfig::default()) {
                PodemOutcome::Detected(cube) => check_detects(&c17, fault, &cube),
                other => panic!("{fault}: {other:?}"),
            }
        }
    }

    #[test]
    fn random_circuits_mostly_testable() {
        use ninec_circuit::random::RandomCircuitSpec;
        let c = RandomCircuitSpec::new("pz", 5, 5, 60).generate(3);
        let faults = collapsed_faults(&c);
        let mut detected = 0;
        for fault in &faults {
            if let PodemOutcome::Detected(cube) = podem(&c, *fault, PodemConfig::default()) {
                check_detects(&c, *fault, &cube);
                detected += 1;
            }
        }
        assert!(
            detected * 2 > faults.len(),
            "only {detected}/{} faults testable",
            faults.len()
        );
    }
}

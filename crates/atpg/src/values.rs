//! Scalar five-valued D-calculus for ATPG.
//!
//! A [`DValue`] tracks the good-machine and faulty-machine values of a net
//! as a pair of trits: `D` is `(1, 0)`, `D̄` is `(0, 1)`, and partially
//! implied states like `(1, X)` arise naturally mid-implication.

use ninec_circuit::GateKind;
use ninec_testdata::trit::Trit;

/// Good/faulty value pair of one net.
///
/// # Examples
///
/// ```
/// use ninec_atpg::values::DValue;
/// use ninec_testdata::trit::Trit;
///
/// assert!(DValue::D.is_error());
/// assert!(!DValue::new(Trit::One, Trit::One).is_error());
/// assert_eq!(DValue::D.good, Trit::One);
/// assert_eq!(DValue::D.faulty, Trit::Zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DValue {
    /// Good-machine value.
    pub good: Trit,
    /// Faulty-machine value.
    pub faulty: Trit,
}

impl DValue {
    /// Fully unknown.
    pub const X: DValue = DValue {
        good: Trit::X,
        faulty: Trit::X,
    };
    /// Good 1 / faulty 0.
    pub const D: DValue = DValue {
        good: Trit::One,
        faulty: Trit::Zero,
    };
    /// Good 0 / faulty 1.
    pub const DBAR: DValue = DValue {
        good: Trit::Zero,
        faulty: Trit::One,
    };
    /// Constant 0 in both machines.
    pub const ZERO: DValue = DValue {
        good: Trit::Zero,
        faulty: Trit::Zero,
    };
    /// Constant 1 in both machines.
    pub const ONE: DValue = DValue {
        good: Trit::One,
        faulty: Trit::One,
    };

    /// Creates a pair.
    pub fn new(good: Trit, faulty: Trit) -> Self {
        Self { good, faulty }
    }

    /// Both machines hold the same specified value.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Self::ONE
        } else {
            Self::ZERO
        }
    }

    /// `true` when the fault effect is visible here (both values specified
    /// and different).
    pub fn is_error(self) -> bool {
        matches!(
            (self.good.value(), self.faulty.value()),
            (Some(a), Some(b)) if a != b
        )
    }
}

/// Scalar three-valued AND.
pub fn and3(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::Zero, _) | (_, Trit::Zero) => Trit::Zero,
        (Trit::One, Trit::One) => Trit::One,
        _ => Trit::X,
    }
}

/// Scalar three-valued OR.
pub fn or3(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::One, _) | (_, Trit::One) => Trit::One,
        (Trit::Zero, Trit::Zero) => Trit::Zero,
        _ => Trit::X,
    }
}

/// Scalar three-valued XOR.
pub fn xor3(a: Trit, b: Trit) -> Trit {
    match (a.value(), b.value()) {
        (Some(x), Some(y)) => Trit::from(x ^ y),
        _ => Trit::X,
    }
}

/// Scalar three-valued NOT.
pub fn not3(a: Trit) -> Trit {
    match a {
        Trit::Zero => Trit::One,
        Trit::One => Trit::Zero,
        Trit::X => Trit::X,
    }
}

fn fold3(kind: GateKind, vals: impl Iterator<Item = Trit>) -> Trit {
    match kind {
        GateKind::And => vals.fold(Trit::One, and3),
        GateKind::Nand => not3(fold3(GateKind::And, vals)),
        GateKind::Or => vals.fold(Trit::Zero, or3),
        GateKind::Nor => not3(fold3(GateKind::Or, vals)),
        GateKind::Xor => vals.reduce(xor3).unwrap_or(Trit::X),
        GateKind::Xnor => not3(fold3(GateKind::Xor, vals)),
        GateKind::Buf => vals.reduce(|a, _| a).unwrap_or(Trit::X),
        GateKind::Not => not3(fold3(GateKind::Buf, vals)),
        GateKind::Input | GateKind::Dff => unreachable!("sources are not evaluated"),
    }
}

/// Evaluates one gate in both machines.
///
/// # Panics
///
/// Panics (in debug builds, via `unreachable!`) on source gate kinds.
pub fn eval_gate5(kind: GateKind, fanins: &[DValue]) -> DValue {
    DValue {
        good: fold3(kind, fanins.iter().map(|v| v.good)),
        faulty: fold3(kind, fanins.iter().map(|v| v.faulty)),
    }
}

/// The controlling input value of a gate kind, if it has one
/// (0 for AND/NAND, 1 for OR/NOR).
pub fn controlling_value(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(false),
        GateKind::Or | GateKind::Nor => Some(true),
        _ => None,
    }
}

/// Whether the gate inverts (output = f(inputs) negated).
pub fn inverts(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_value_errors() {
        assert!(DValue::D.is_error());
        assert!(DValue::DBAR.is_error());
        assert!(!DValue::X.is_error());
        assert!(!DValue::ZERO.is_error());
        assert!(!DValue::new(Trit::One, Trit::X).is_error());
    }

    #[test]
    fn d_propagates_through_and_with_noncontrolling_side() {
        let out = eval_gate5(GateKind::And, &[DValue::D, DValue::ONE]);
        assert_eq!(out, DValue::D);
        let blocked = eval_gate5(GateKind::And, &[DValue::D, DValue::ZERO]);
        assert_eq!(blocked, DValue::ZERO);
        let masked = eval_gate5(GateKind::And, &[DValue::D, DValue::X]);
        assert_eq!(masked.good, Trit::X); // X AND 1 = X
        assert_eq!(masked.faulty, Trit::Zero);
    }

    #[test]
    fn d_inverts_through_nor() {
        let out = eval_gate5(GateKind::Nor, &[DValue::D, DValue::ZERO]);
        assert_eq!(out, DValue::DBAR);
    }

    #[test]
    fn xor_combines_errors() {
        // D XOR D = 0 in both machines (error cancels).
        let out = eval_gate5(GateKind::Xor, &[DValue::D, DValue::D]);
        assert_eq!(out, DValue::ZERO);
        // D XOR 0 = D.
        let out = eval_gate5(GateKind::Xor, &[DValue::D, DValue::ZERO]);
        assert_eq!(out, DValue::D);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(controlling_value(GateKind::And), Some(false));
        assert_eq!(controlling_value(GateKind::Nor), Some(true));
        assert_eq!(controlling_value(GateKind::Xor), None);
        assert!(inverts(GateKind::Nand));
        assert!(!inverts(GateKind::Or));
    }

    #[test]
    fn trit_op_tables() {
        use Trit::{One as I, Zero as O, X};
        assert_eq!(and3(O, X), O);
        assert_eq!(and3(I, X), X);
        assert_eq!(or3(I, X), I);
        assert_eq!(or3(O, X), X);
        assert_eq!(xor3(I, O), I);
        assert_eq!(xor3(I, X), X);
        assert_eq!(not3(X), X);
    }
}

//! Generators for every table and figure of the paper's evaluation.
//!
//! Each `tableN` function computes structured results over the shared
//! [`datasets`](crate::datasets); each `render_*` turns them into the
//! aligned text the `tables` binary prints. `EXPERIMENTS.md` records the
//! measured output against the paper's claims.

use crate::datasets::{Dataset, K_SWEEP, P_SWEEP};
use crate::format::{pct, TextTable};
use ninec::analysis::TatModel;
use ninec::code::{CodeTable, ALL_CASES};
use ninec::encode::{Encoded, Encoder};
use ninec::freqdir::encode_frequency_directed;
use ninec_baselines::registry::table4_registry;
use ninec_decompressor::area::decoder_area;
use ninec_decompressor::multi::MultiScanDecoder;
use ninec_decompressor::parallel::ParallelDecoders;
use ninec_decompressor::single::{ClockRatio, SingleScanDecoder};
use ninec_testdata::fill::FillStrategy;

/// Renders Table I: the 9C coding table for a given `K`.
pub fn render_table1(k: usize) -> String {
    let table = CodeTable::paper();
    let mut t = TextTable::new(["case", "halves", "codeword", "payload", "size (bits)"]);
    for case in ALL_CASES {
        let (l, r) = case.halves();
        t.row([
            case.label().to_owned(),
            format!("{l:?}/{r:?}"),
            table.codeword(case).to_string(),
            case.payload_bits(k).to_string(),
            table.block_bits(case, k).to_string(),
        ]);
    }
    format!("Table I — 9C coding for K={k}\n{}", t.render())
}

/// One circuit's K-sweep of encodings (the engine behind Tables II/III/VI).
#[derive(Debug, Clone)]
pub struct KSweep {
    /// Circuit name.
    pub circuit: String,
    /// `|T_D|`.
    pub t_d: usize,
    /// `(K, encoding)` pairs across [`K_SWEEP`].
    pub encodings: Vec<(usize, Encoded)>,
}

impl KSweep {
    /// Runs the sweep for one dataset.
    pub fn run(dataset: &Dataset) -> Self {
        let encodings = K_SWEEP
            .iter()
            .map(|&k| {
                let enc = Encoder::new(k)
                    .expect("sweep uses valid K")
                    .encode_set(&dataset.cubes);
                (k, enc)
            })
            .collect();
        Self {
            circuit: dataset.name.clone(),
            t_d: dataset.cubes.total_bits(),
            encodings,
        }
    }

    /// The `(K, encoding)` with the highest compression ratio.
    pub fn best(&self) -> &(usize, Encoded) {
        self.encodings
            .iter()
            .max_by(|a, b| {
                a.1.compression_ratio()
                    .partial_cmp(&b.1.compression_ratio())
                    .expect("CR is finite")
            })
            .expect("sweep is non-empty")
    }
}

/// Table II engine: K-sweeps for every dataset.
pub fn table2(datasets: &[Dataset]) -> Vec<KSweep> {
    datasets.iter().map(KSweep::run).collect()
}

/// Renders Table II (compression ratio for different K).
pub fn render_table2(sweeps: &[KSweep]) -> String {
    let mut header = vec!["circuit".to_owned(), "|T_D|".to_owned()];
    header.extend(K_SWEEP.iter().map(|k| format!("K={k}")));
    let mut t = TextTable::new(header);
    let mut avg = vec![0.0f64; K_SWEEP.len()];
    for sweep in sweeps {
        let mut row = vec![sweep.circuit.clone(), sweep.t_d.to_string()];
        for (i, (_, enc)) in sweep.encodings.iter().enumerate() {
            let cr = enc.compression_ratio();
            avg[i] += cr;
            row.push(pct(cr));
        }
        t.row(row);
    }
    let n = sweeps.len().max(1) as f64;
    let mut avg_row = vec!["Avg".to_owned(), String::new()];
    avg_row.extend(avg.iter().map(|a| pct(a / n)));
    t.row(avg_row);
    format!(
        "Table II — compression ratio CR% for different K\n{}",
        t.render()
    )
}

/// Renders Table III (leftover don't-cares for different K).
pub fn render_table3(sweeps: &[KSweep], datasets: &[Dataset]) -> String {
    let mut header = vec!["circuit".to_owned(), "X%".to_owned()];
    header.extend(K_SWEEP.iter().map(|k| format!("K={k}")));
    let mut t = TextTable::new(header);
    let mut avg = vec![0.0f64; K_SWEEP.len()];
    for (sweep, ds) in sweeps.iter().zip(datasets) {
        let mut row = vec![sweep.circuit.clone(), pct(ds.cubes.x_density() * 100.0)];
        for (i, (_, enc)) in sweep.encodings.iter().enumerate() {
            let lx = enc.leftover_x_percent();
            avg[i] += lx;
            row.push(pct(lx));
        }
        t.row(row);
    }
    let n = sweeps.len().max(1) as f64;
    let mut avg_row = vec!["Avg".to_owned(), String::new()];
    avg_row.extend(avg.iter().map(|a| pct(a / n)));
    t.row(avg_row);
    format!(
        "Table III — leftover don't-cares LX% (of |T_D|) for different K\n{}",
        t.render()
    )
}

/// One row of the Table IV baseline comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Circuit name.
    pub circuit: String,
    /// The K at which 9C performed best.
    pub best_k: usize,
    /// 9C compression ratio at `best_k`.
    pub ninec: f64,
    /// FDR compression ratio.
    pub fdr: f64,
    /// VIHC compression ratio (best group size of {4, 8, 16, 32}).
    pub vihc: f64,
    /// EFDR compression ratio — substituted for the paper's MTC column
    /// (see `DESIGN.md` §4).
    pub efdr_mtc: f64,
    /// Selective Huffman (8-bit blocks, 16 coded patterns).
    pub selhuff: f64,
    /// Golomb (best group size of {2, 4, 8, 16, 32}) — extra column.
    pub golomb: f64,
    /// Alternating run-length — extra column.
    pub arl: f64,
    /// Fixed-index dictionary (best of 16/32-bit blocks, 256 entries) —
    /// extra column.
    pub dict: f64,
}

/// Table IV engine: 9C at its best K vs the baseline codes.
///
/// Every column — 9C included — is computed through the unified
/// [`table4_registry`] of `Box<dyn TestDataCodec>` trait objects, so
/// adding a code to the comparison means adding a registry entry, not a
/// new hand-dispatched arm here.
pub fn table4(datasets: &[Dataset], sweeps: &[KSweep]) -> Vec<ComparisonRow> {
    datasets
        .iter()
        .zip(sweeps)
        .map(|(ds, sweep)| {
            let stream = ds.cubes.as_stream();
            let (best_k, _) = sweep.best();
            let mut row = ComparisonRow {
                circuit: ds.name.clone(),
                best_k: *best_k,
                ninec: 0.0,
                fdr: 0.0,
                vihc: 0.0,
                efdr_mtc: 0.0,
                selhuff: 0.0,
                golomb: 0.0,
                arl: 0.0,
                dict: 0.0,
            };
            for codec in table4_registry(*best_k).expect("sweep K is valid") {
                let cr = codec.compression_ratio(stream);
                match codec.name() {
                    "9C" => row.ninec = cr,
                    "FDR" => row.fdr = cr,
                    "VIHC" => row.vihc = cr,
                    "EFDR" => row.efdr_mtc = cr,
                    "SelHuff" => row.selhuff = cr,
                    "Golomb" => row.golomb = cr,
                    "ARL" => row.arl = cr,
                    "Dict" => row.dict = cr,
                    other => unreachable!("unknown registry codec {other}"),
                }
            }
            row
        })
        .collect()
}

/// Renders Table IV.
pub fn render_table4(rows: &[ComparisonRow]) -> String {
    let mut t = TextTable::new([
        "circuit", "K", "9C", "FDR", "VIHC", "MTC~EFDR", "SelHuff", "Golomb", "ARL", "Dict",
    ]);
    let mut sums = [0.0f64; 8];
    for r in rows {
        for (s, v) in sums.iter_mut().zip([
            r.ninec, r.fdr, r.vihc, r.efdr_mtc, r.selhuff, r.golomb, r.arl, r.dict,
        ]) {
            *s += v;
        }
        t.row([
            r.circuit.clone(),
            r.best_k.to_string(),
            pct(r.ninec),
            pct(r.fdr),
            pct(r.vihc),
            pct(r.efdr_mtc),
            pct(r.selhuff),
            pct(r.golomb),
            pct(r.arl),
            pct(r.dict),
        ]);
    }
    let n = rows.len().max(1) as f64;
    let mut avg = vec!["Avg".to_owned(), String::new()];
    avg.extend(sums.iter().map(|s| pct(s / n)));
    t.row(avg);
    format!(
        "Table IV — CR% of 9C (at its best K) vs baseline codes\n\
         (MTC column substituted by EFDR; Golomb/ARL are extra baselines)\n{}",
        t.render()
    )
}

/// Renders Table V (test-application-time reduction for p = 8, 16, 24).
///
/// The analytic columns come from [`TatModel`]; the final column re-runs
/// the cycle-accurate decoder at `p = 8` and reports the *measured*
/// reduction, which must agree with the model to the printed precision.
pub fn render_table5(sweeps: &[KSweep]) -> String {
    let mut header = vec!["circuit".to_owned(), "K".to_owned(), "CR%".to_owned()];
    header.extend(P_SWEEP.iter().map(|p| format!("TAT% p={p}")));
    header.push("meas p=8".to_owned());
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0f64; P_SWEEP.len() + 2];
    for sweep in sweeps {
        let (k, enc) = sweep.best();
        let mut row = vec![
            sweep.circuit.clone(),
            k.to_string(),
            pct(enc.compression_ratio()),
        ];
        sums[0] += enc.compression_ratio();
        for (i, &p) in P_SWEEP.iter().enumerate() {
            let tat = TatModel::new(p as f64).tat_percent(enc);
            sums[i + 1] += tat;
            row.push(pct(tat));
        }
        // Measured through the cycle-accurate hardware model.
        let decoder = SingleScanDecoder::new(*k, enc.table().clone(), ClockRatio::new(8));
        let bits = enc.to_bitvec(FillStrategy::Zero);
        let trace = decoder
            .run(&bits, enc.source_len())
            .expect("own encoding decompresses");
        let t_comp_ate = trace.soc_ticks as f64 / 8.0;
        let t_nocomp = enc.source_len() as f64;
        let measured = (t_nocomp - t_comp_ate) / t_nocomp * 100.0;
        sums[P_SWEEP.len() + 1] += measured;
        row.push(pct(measured));
        t.row(row);
    }
    let n = sweeps.len().max(1) as f64;
    let mut avg = vec!["Avg".to_owned(), String::new()];
    avg.extend(sums.iter().map(|s| pct(s / n)));
    t.row(avg);
    format!(
        "Table V — test application time reduction TAT% (f_scan = p * f_ate)\n\
         (\"meas\" replays the compressed stream through the cycle-accurate decoder)\n{}",
        t.render()
    )
}

/// Renders Table VI (codeword occurrence statistics at a fixed K).
pub fn render_table6(sweeps: &[KSweep], k: usize) -> String {
    let mut header = vec!["circuit".to_owned(), "K".to_owned()];
    header.extend(ALL_CASES.iter().map(|c| format!("N{}", c.index() + 1)));
    let mut t = TextTable::new(header);
    let mut sums = [0u64; 9];
    for sweep in sweeps {
        let enc = sweep
            .encodings
            .iter()
            .find(|(kk, _)| *kk == k)
            .map(|(_, e)| e)
            .expect("requested K is in the sweep");
        let mut row = vec![sweep.circuit.clone(), k.to_string()];
        for case in ALL_CASES {
            let n = enc.stats().count(case);
            sums[case.index()] += n;
            row.push(n.to_string());
        }
        t.row(row);
    }
    let mut avg = vec!["Sum".to_owned(), String::new()];
    avg.extend(sums.iter().map(|s| s.to_string()));
    t.row(avg);
    format!(
        "Table VI — codeword statistics N1..N9 at K={k}\n{}",
        t.render()
    )
}

/// One circuit's frequency-directed reassignment sweep (Table VII).
#[derive(Debug, Clone)]
pub struct FreqDirSweep {
    /// Circuit name.
    pub circuit: String,
    /// `(K, baseline CR, reassigned CR)` across [`K_SWEEP`].
    pub rows: Vec<(usize, f64, f64)>,
}

/// Table VII engine.
pub fn table7(datasets: &[Dataset]) -> Vec<FreqDirSweep> {
    datasets
        .iter()
        .map(|ds| {
            let rows = K_SWEEP
                .iter()
                .map(|&k| {
                    let out = encode_frequency_directed(k, ds.cubes.as_stream())
                        .expect("sweep uses valid K");
                    (
                        k,
                        out.baseline.compression_ratio(),
                        out.reassigned.compression_ratio(),
                    )
                })
                .collect();
            FreqDirSweep {
                circuit: ds.name.clone(),
                rows,
            }
        })
        .collect()
}

/// Renders Table VII (CR after frequency-directed reassignment).
pub fn render_table7(sweeps: &[FreqDirSweep]) -> String {
    let mut header = vec!["circuit".to_owned()];
    header.extend(K_SWEEP.iter().map(|k| format!("K={k}")));
    let mut t = TextTable::new(header);
    for s in sweeps {
        let mut row = vec![s.circuit.clone()];
        for (_, _, re) in &s.rows {
            row.push(pct(*re));
        }
        t.row(row);
        let mut delta = vec![format!("  (gain)")];
        for (_, base, re) in &s.rows {
            delta.push(format!("+{:.2}", re - base));
        }
        t.row(delta);
    }
    format!(
        "Table VII — CR% after frequency-directed codeword reassignment\n\
         (gain rows show percentage points over the default assignment)\n{}",
        t.render()
    )
}

/// One Table VIII row: `(circuit, |T_D| bits, per-K (K, CR%) sweep)`.
pub type Table8Row = (String, usize, Vec<(usize, f64)>);

/// Table VIII engine: large-circuit K sweep.
pub fn table8(datasets: &[Dataset], ks: &[usize]) -> Vec<Table8Row> {
    datasets
        .iter()
        .map(|ds| {
            let rows = ks
                .iter()
                .map(|&k| {
                    let enc = Encoder::new(k).expect("valid K").encode_set(&ds.cubes);
                    (k, enc.compression_ratio())
                })
                .collect();
            (ds.name.clone(), ds.cubes.total_bits(), rows)
        })
        .collect()
}

/// Renders Table VIII.
pub fn render_table8(rows: &[Table8Row]) -> String {
    let ks: Vec<usize> = rows
        .first()
        .map(|(_, _, r)| r.iter().map(|(k, _)| *k).collect())
        .unwrap_or_default();
    let mut header = vec!["circuit".to_owned(), "|T_D|".to_owned()];
    header.extend(ks.iter().map(|k| format!("K={k}")));
    let mut t = TextTable::new(header);
    for (name, td, sweep) in rows {
        let mut row = vec![name.clone(), td.to_string()];
        for (_, cr) in sweep {
            row.push(pct(*cr));
        }
        t.row(row);
    }
    format!(
        "Table VIII — CR% on large IBM-profile circuits (synthetic substitutes)\n{}",
        t.render()
    )
}

/// Renders the Figure 2 experiment: decoder FSM synthesis and total
/// decoder area across K (the FSM column must be constant).
pub fn render_fig2(ks: &[usize]) -> String {
    let mut t = TextTable::new(["K", "FSM GE", "counter GE", "shifter GE", "total GE"]);
    for &k in ks {
        let a = decoder_area(k);
        t.row([
            k.to_string(),
            format!("{:.0}", a.fsm_ge()),
            format!("{:.0}", a.counter_ge),
            format!("{:.0}", a.shifter_ge),
            format!("{:.0}", a.total_ge()),
        ]);
    }
    let fsm = decoder_area(8).fsm;
    format!(
        "Figure 1/2 — decoder area (gate equivalents); the FSM is K-independent\n{}\n\
         FSM synthesis detail:\n{}\n",
        t.render(),
        fsm
    )
}

/// Figure 3 engine: single-pin multi-scan runs across chain counts.
pub fn fig3(dataset: &Dataset, k: usize, ms: &[usize], p: u32) -> Vec<(usize, u64, u64, f64)> {
    ms.iter()
        .map(|&m| {
            let enc = ninec::multiscan::encode_multiscan(&dataset.cubes, m, k)
                .expect("valid multiscan config");
            let bits = enc.to_bitvec(FillStrategy::Zero);
            let dec = MultiScanDecoder::new(k, m, enc.table().clone(), ClockRatio::new(p));
            let trace = dec.run(&bits, &dataset.cubes).expect("stream decodes");
            assert!(trace.loaded.covers(&dataset.cubes), "m={m}: coverage lost");
            (
                m,
                trace.decoder.soc_ticks,
                trace.loads,
                enc.compression_ratio(),
            )
        })
        .collect()
}

/// Renders Figure 3.
pub fn render_fig3(dataset: &Dataset, rows: &[(usize, u64, u64, f64)]) -> String {
    let mut t = TextTable::new(["chains m", "pins", "SoC ticks", "loads", "CR%"]);
    for (m, ticks, loads, cr) in rows {
        t.row([
            m.to_string(),
            "1".to_owned(),
            ticks.to_string(),
            loads.to_string(),
            pct(*cr),
        ]);
    }
    format!(
        "Figure 3 — single-pin multiple-scan decompression on {} (test time is m-independent)\n{}",
        dataset.name,
        t.render()
    )
}

/// Figure 4 engine: the three architectures on one circuit.
pub fn fig4(dataset: &Dataset, k: usize, m: usize, p: u32) -> [(String, usize, u64); 3] {
    let cubes = &dataset.cubes;
    // (a) single scan chain, one pin.
    let enc_a = Encoder::new(k).expect("valid K").encode_set(cubes);
    let bits_a = enc_a.to_bitvec(FillStrategy::Zero);
    let dec_a = SingleScanDecoder::new(k, enc_a.table().clone(), ClockRatio::new(p));
    let a = dec_a
        .run(&bits_a, cubes.total_bits())
        .expect("stream decodes");

    // (b) m chains, one pin.
    let enc_b = ninec::multiscan::encode_multiscan(cubes, m, k).expect("valid config");
    let bits_b = enc_b.to_bitvec(FillStrategy::Zero);
    let dec_b = MultiScanDecoder::new(k, m, enc_b.table().clone(), ClockRatio::new(p));
    let b = dec_b.run(&bits_b, cubes).expect("stream decodes");

    // (c) m chains, m/K pins.
    let arch = ParallelDecoders::new(k, m, ClockRatio::new(p)).expect("valid geometry");
    let c = arch
        .compress_and_run(cubes, FillStrategy::Zero)
        .expect("stream decodes");

    [
        ("4a: 1 chain, 1 pin".to_owned(), 1, a.soc_ticks),
        (format!("4b: {m} chains, 1 pin"), 1, b.decoder.soc_ticks),
        (
            format!("4c: {m} chains, {} pins", arch.pins()),
            arch.pins(),
            c.soc_ticks,
        ),
    ]
}

/// Renders Figure 4.
pub fn render_fig4(dataset: &Dataset, rows: &[(String, usize, u64)]) -> String {
    let mut t = TextTable::new(["architecture", "pins", "SoC ticks", "speedup vs 4a"]);
    let base = rows[0].2 as f64;
    for (name, pins, ticks) in rows {
        t.row([
            name.clone(),
            pins.to_string(),
            ticks.to_string(),
            format!("{:.2}x", base / *ticks as f64),
        ]);
    }
    format!(
        "Figure 4 — pin count vs test time on {} (K and p fixed)\n\
         (4b trades a few points of CR for a 32x pin reduction: vertical\n\
          blocking breaks up some horizontal runs; see Figure 3's CR column)\n{}",
        dataset.name,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{ibm_datasets_scaled, mintest_datasets_scaled};

    fn small() -> Vec<Dataset> {
        mintest_datasets_scaled(8)
    }

    #[test]
    fn table1_lists_all_nine_cases() {
        let s = render_table1(8);
        for i in 1..=9 {
            assert!(s.contains(&format!("C{i}")), "missing C{i} in\n{s}");
        }
        assert!(s.contains("12")); // C9 size at K=8
    }

    #[test]
    fn table2_shapes_hold_on_scaled_sets() {
        let ds = small();
        let sweeps = table2(&ds);
        assert_eq!(sweeps.len(), 6);
        for sweep in &sweeps {
            // Compression is positive at the best K for every profile.
            assert!(
                sweep.best().1.compression_ratio() > 20.0,
                "{}: {:.1}",
                sweep.circuit,
                sweep.best().1.compression_ratio()
            );
        }
        let s = render_table2(&sweeps);
        assert!(s.contains("Avg"));
    }

    #[test]
    fn table3_lx_zero_at_k4_and_grows() {
        let ds = small();
        let sweeps = table2(&ds);
        for sweep in &sweeps {
            let lx: Vec<f64> = sweep
                .encodings
                .iter()
                .map(|(_, e)| e.leftover_x_percent())
                .collect();
            assert_eq!(lx[0], 0.0, "{}: LX at K=4 must be 0", sweep.circuit);
            let last = *lx.last().unwrap();
            assert!(last >= lx[1], "{}: LX should grow with K", sweep.circuit);
        }
        let s = render_table3(&sweeps, &ds);
        assert!(s.contains("X%"));
    }

    #[test]
    fn table4_has_all_columns() {
        let ds = small();
        let sweeps = table2(&ds);
        let rows = table4(&ds, &sweeps);
        let s = render_table4(&rows);
        for col in ["9C", "FDR", "VIHC", "SelHuff", "Golomb", "ARL"] {
            assert!(s.contains(col));
        }
    }

    #[test]
    fn table5_tat_below_cr_and_grows_with_p() {
        let ds = small();
        let sweeps = table2(&ds);
        for sweep in &sweeps {
            let (_, enc) = sweep.best();
            let cr = enc.compression_ratio();
            let mut last = f64::NEG_INFINITY;
            for &p in &P_SWEEP {
                let tat = TatModel::new(p as f64).tat_percent(enc);
                assert!(tat <= cr + 1e-9);
                assert!(tat >= last);
                last = tat;
            }
        }
        let s = render_table5(&sweeps);
        assert!(s.contains("TAT% p=8"));
    }

    #[test]
    fn table6_c1_dominates_on_average() {
        let ds = small();
        let sweeps = table2(&ds);
        let mut sums = [0u64; 9];
        for sweep in &sweeps {
            let enc = &sweep.encodings.iter().find(|(k, _)| *k == 8).unwrap().1;
            for case in ALL_CASES {
                sums[case.index()] += enc.stats().count(case);
            }
        }
        // Paper claim: N1 > N2 on aggregate for 0-biased test sets.
        assert!(sums[0] > sums[1], "N1 {} vs N2 {}", sums[0], sums[1]);
        let s = render_table6(&sweeps, 8);
        assert!(s.contains("N9"));
    }

    #[test]
    fn table7_gains_are_nonnegative() {
        let ds = small();
        for sweep in table7(&ds) {
            for (k, base, re) in sweep.rows {
                assert!(re >= base - 1e-9, "{} K={k}: {re} < {base}", sweep.circuit);
            }
        }
    }

    #[test]
    fn table8_runs_on_scaled_ibm() {
        let ds = ibm_datasets_scaled(16);
        let rows = table8(&ds, &[8, 16, 32]);
        assert_eq!(rows.len(), 2);
        for (name, _, sweep) in &rows {
            for (k, cr) in sweep {
                assert!(*cr > 30.0, "{name} K={k}: CR {cr}");
            }
        }
        let s = render_table8(&rows);
        assert!(s.contains("CKT1"));
    }

    #[test]
    fn fig2_fsm_column_constant() {
        let s = render_fig2(&[4, 8, 16, 32]);
        assert!(s.contains("K-independent"));
    }

    #[test]
    fn fig3_time_independent_of_m() {
        let ds = small();
        let rows = fig3(&ds[0], 8, &[8, 16], 8);
        // Same K, same cube set, but different padding per m means ticks
        // are close, not identical; the pins column is the claim.
        assert_eq!(rows.len(), 2);
        let s = render_fig3(&ds[0], &rows);
        assert!(s.contains("pins"));
    }

    #[test]
    fn fig4_parallel_fastest() {
        let ds = small();
        let rows = fig4(&ds[0], 8, 16, 8);
        let s = render_fig4(&ds[0], &rows);
        assert!(s.contains("4c"));
        // 4c is at least as fast as 4b.
        assert!(rows[2].2 <= rows[1].2);
    }
}

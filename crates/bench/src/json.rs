//! Machine-readable experiment output.
//!
//! `tables --json` emits one JSON document per experiment so downstream
//! tooling (plotting, regression tracking) can consume the results without
//! scraping the text tables.

use crate::datasets::{Dataset, K_SWEEP, P_SWEEP};
use crate::tables::{ComparisonRow, FreqDirSweep, KSweep};
use ninec::analysis::TatModel;
use ninec::code::ALL_CASES;
use serde_json::{json, Value};

/// Table II/III as JSON: per circuit, the K sweep with CR and LX.
pub fn sweeps_json(sweeps: &[KSweep]) -> Value {
    let circuits: Vec<Value> = sweeps
        .iter()
        .map(|s| {
            let points: Vec<Value> = s
                .encodings
                .iter()
                .map(|(k, e)| {
                    json!({
                        "k": k,
                        "cr_percent": e.compression_ratio(),
                        "lx_percent": e.leftover_x_percent(),
                        "compressed_bits": e.compressed_len(),
                    })
                })
                .collect();
            json!({
                "circuit": s.circuit,
                "t_d_bits": s.t_d,
                "sweep": points,
                "best_k": s.best().0,
            })
        })
        .collect();
    json!({ "experiment": "table2_table3", "k_values": K_SWEEP, "circuits": circuits })
}

/// Table IV as JSON.
pub fn comparison_json(rows: &[ComparisonRow]) -> Value {
    let entries: Vec<Value> = rows
        .iter()
        .map(|r| {
            json!({
                "circuit": r.circuit,
                "best_k": r.best_k,
                "ninec": r.ninec,
                "fdr": r.fdr,
                "vihc": r.vihc,
                "efdr_mtc": r.efdr_mtc,
                "selhuff": r.selhuff,
                "golomb": r.golomb,
                "arl": r.arl,
                "dict": r.dict,
            })
        })
        .collect();
    json!({ "experiment": "table4", "rows": entries })
}

/// Table V as JSON.
pub fn tat_json(sweeps: &[KSweep]) -> Value {
    let rows: Vec<Value> = sweeps
        .iter()
        .map(|s| {
            let (k, enc) = s.best();
            let tats: Vec<Value> = P_SWEEP
                .iter()
                .map(
                    |&p| json!({ "p": p, "tat_percent": TatModel::new(p as f64).tat_percent(enc) }),
                )
                .collect();
            json!({
                "circuit": s.circuit,
                "k": k,
                "cr_percent": enc.compression_ratio(),
                "tat": tats,
            })
        })
        .collect();
    json!({ "experiment": "table5", "rows": rows })
}

/// Table VI as JSON.
pub fn codeword_stats_json(sweeps: &[KSweep], k: usize) -> Value {
    let rows: Vec<Value> = sweeps
        .iter()
        .map(|s| {
            let enc = &s
                .encodings
                .iter()
                .find(|(kk, _)| *kk == k)
                .expect("requested K is in the sweep")
                .1;
            let counts: Vec<u64> = ALL_CASES.iter().map(|c| enc.stats().count(*c)).collect();
            json!({ "circuit": s.circuit, "k": k, "counts": counts })
        })
        .collect();
    json!({ "experiment": "table6", "rows": rows })
}

/// Table VII as JSON.
pub fn freqdir_json(sweeps: &[FreqDirSweep]) -> Value {
    let rows: Vec<Value> = sweeps
        .iter()
        .map(|s| {
            let points: Vec<Value> = s
                .rows
                .iter()
                .map(|(k, base, re)| json!({ "k": k, "baseline": base, "reassigned": re }))
                .collect();
            json!({ "circuit": s.circuit, "sweep": points })
        })
        .collect();
    json!({ "experiment": "table7", "rows": rows })
}

/// Table VIII as JSON.
pub fn large_json(rows: &[crate::tables::Table8Row]) -> Value {
    let entries: Vec<Value> = rows
        .iter()
        .map(|(name, td, sweep)| {
            let points: Vec<Value> = sweep
                .iter()
                .map(|(k, cr)| json!({ "k": k, "cr_percent": cr }))
                .collect();
            json!({ "circuit": name, "t_d_bits": td, "sweep": points })
        })
        .collect();
    json!({ "experiment": "table8", "rows": entries })
}

/// Dataset descriptions (provenance block for every JSON dump).
pub fn datasets_json(datasets: &[Dataset]) -> Value {
    let rows: Vec<Value> = datasets
        .iter()
        .map(|d| {
            json!({
                "circuit": d.name,
                "patterns": d.cubes.num_patterns(),
                "pattern_len": d.cubes.pattern_len(),
                "t_d_bits": d.cubes.total_bits(),
                "x_density": d.cubes.x_density(),
            })
        })
        .collect();
    json!({ "datasets": rows, "seed": crate::datasets::SEED })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::mintest_datasets_scaled;
    use crate::tables::{table2, table4, table7};

    #[test]
    fn sweeps_json_shape() {
        let ds = mintest_datasets_scaled(12);
        let v = sweeps_json(&table2(&ds));
        assert_eq!(v["circuits"].as_array().unwrap().len(), 6);
        assert_eq!(
            v["circuits"][0]["sweep"].as_array().unwrap().len(),
            K_SWEEP.len()
        );
        assert!(v["circuits"][0]["sweep"][0]["cr_percent"].is_number());
    }

    #[test]
    fn comparison_json_shape() {
        let ds = mintest_datasets_scaled(12);
        let sweeps = table2(&ds);
        let v = comparison_json(&table4(&ds, &sweeps));
        assert!(v["rows"][0]["ninec"].is_number());
        assert!(v["rows"][0]["dict"].is_number());
    }

    #[test]
    fn tat_and_stats_json_shape() {
        let ds = mintest_datasets_scaled(12);
        let sweeps = table2(&ds);
        let tat = tat_json(&sweeps);
        assert_eq!(
            tat["rows"][0]["tat"].as_array().unwrap().len(),
            P_SWEEP.len()
        );
        let stats = codeword_stats_json(&sweeps, 8);
        assert_eq!(stats["rows"][0]["counts"].as_array().unwrap().len(), 9);
    }

    #[test]
    fn freqdir_and_datasets_json_shape() {
        let ds = mintest_datasets_scaled(12);
        let fd = freqdir_json(&table7(&ds));
        assert!(fd["rows"][0]["sweep"][0]["reassigned"].is_number());
        let meta = datasets_json(&ds);
        assert_eq!(meta["datasets"].as_array().unwrap().len(), 6);
    }
}

//! Ablation studies for the design choices `DESIGN.md` calls out.
//!
//! 1. **Code size** (paper §II): the paper argues nine codewords are the
//!    sweet spot — finer part granularity "may slightly improve the
//!    compression ratio but results in a more complicated and expensive
//!    decoder". [`parts_code_estimate`] measures that: it generalizes 9C
//!    to `q` parts per block (3^q cases) with Huffman-assigned codeword
//!    lengths and reports the achievable size.
//! 2. **Codeword assignment**: paper order vs frequency-directed vs
//!    adversarial (reversed) — [`assignment_ablation`].
//! 3. **Leftover-X fill**: the paper's random fill (non-modeled faults) vs
//!    minimum-transition fill (scan power) — [`fill_ablation`].

use crate::datasets::Dataset;
use crate::format::{pct, TextTable};
use ninec::encode::Encoder;
use ninec::freqdir::frequency_directed_table;
use ninec::session::DecodeSession;
use ninec_baselines::huffman::HuffmanCode;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::FillStrategy;
use ninec_testdata::power::{scan_power, PowerReport};
use ninec_testdata::trit::{Trit, TritVec};
use std::collections::HashMap;

/// Estimated compressed size (bits) of the `q`-part generalization of 9C
/// on `stream` at block size `k`, with per-case codeword lengths assigned
/// by a two-pass Huffman over the measured case frequencies.
///
/// `q = 2` approximates 9C itself (slightly optimistically, since Huffman
/// lengths adapt to the data); larger `q` models the "more codewords"
/// variants the paper rejects.
///
/// # Panics
///
/// Panics unless `q >= 1` and `q` divides `k`.
pub fn parts_code_estimate(stream: &TritVec, k: usize, q: usize) -> usize {
    assert!(q >= 1 && k.is_multiple_of(q), "q={q} must divide k={k}");
    let part = k / q;
    let blocks = stream.len().div_ceil(k);
    // Classify each block into its case id (base-3 over part classes).
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut payload_bits = 0usize;
    let mut case_of_block = Vec::with_capacity(blocks);
    for b in 0..blocks {
        let mut case = 0u32;
        for p in 0..q {
            let start = b * k + p * part;
            let mut can_zero = true;
            let mut can_one = true;
            for i in start..start + part {
                match stream.get(i).unwrap_or(Trit::X) {
                    Trit::Zero => can_one = false,
                    Trit::One => can_zero = false,
                    Trit::X => {}
                }
            }
            let class = if can_zero {
                0 // all-zeros (all-X parts fold here, as 9C's greedy would)
            } else if can_one {
                1
            } else {
                payload_bits += part;
                2
            };
            case = case * 3 + class;
        }
        *counts.entry(case).or_insert(0) += 1;
        case_of_block.push(case);
    }
    if blocks == 0 {
        return 0;
    }
    // Huffman over the observed cases only.
    let cases: Vec<u32> = counts.keys().copied().collect();
    let freqs: Vec<u64> = cases.iter().map(|c| counts[c]).collect();
    let code = HuffmanCode::from_frequencies(&freqs).expect("at least one case");
    let index: HashMap<u32, usize> = cases.iter().copied().zip(0..).collect();
    let codeword_bits: usize = case_of_block
        .iter()
        .map(|c| code.codeword(index[c]).len())
        .sum();
    codeword_bits + payload_bits
}

/// Renders the code-size ablation across datasets.
pub fn render_parts_ablation(datasets: &[Dataset], k: usize) -> String {
    let mut t = TextTable::new([
        "circuit",
        "9C CR%",
        "q=2 Huffman",
        "q=4 Huffman",
        "gain q=4 vs 9C",
    ]);
    for ds in datasets {
        let stream = ds.cubes.as_stream();
        let td = stream.len() as f64;
        let ninec = Encoder::new(k)
            .expect("valid K")
            .encode_stream(stream)
            .compression_ratio();
        let q2 = (td - parts_code_estimate(stream, k, 2) as f64) / td * 100.0;
        let q4 = (td - parts_code_estimate(stream, k, 4) as f64) / td * 100.0;
        t.row([
            ds.name.clone(),
            pct(ninec),
            pct(q2),
            pct(q4),
            format!("{:+.1}", q4 - ninec),
        ]);
    }
    format!(
        "Ablation — code granularity at K={k}: more codewords buy little\n\
         (q parts per block, 3^q cases, Huffman-assigned lengths; decoder cost grows with 3^q)\n{}",
        t.render()
    )
}

/// One point of the don't-care-density sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityPoint {
    /// Target X density, percent.
    pub x_percent: f64,
    /// 9C CR at K = 8.
    pub cr_k8: f64,
    /// 9C CR at the best K of the sweep.
    pub cr_best: f64,
    /// The best K.
    pub best_k: usize,
}

/// Sweeps the don't-care density of a synthetic test set and measures how
/// 9C's compression and optimal block size respond — the structural
/// driver behind Tables II and VIII (denser X ⇒ higher CR and larger
/// optimal K).
pub fn density_sweep(pattern_len: usize, patterns: usize, seed: u64) -> Vec<DensityPoint> {
    use ninec_testdata::gen::SyntheticProfile;
    [0.3f64, 0.5, 0.7, 0.8, 0.9, 0.95]
        .into_iter()
        .map(|x| {
            let ts = SyntheticProfile::new("dsweep", patterns, pattern_len, x).generate(seed);
            let stream = ts.as_stream();
            let mut best = (f64::NEG_INFINITY, 0usize);
            let mut cr_k8 = 0.0;
            for k in crate::datasets::K_SWEEP {
                let cr = Encoder::new(k)
                    .expect("valid K")
                    .encode_stream(stream)
                    .compression_ratio();
                if k == 8 {
                    cr_k8 = cr;
                }
                if cr > best.0 {
                    best = (cr, k);
                }
            }
            DensityPoint {
                x_percent: x * 100.0,
                cr_k8,
                cr_best: best.0,
                best_k: best.1,
            }
        })
        .collect()
}

/// Renders the density sweep.
pub fn render_density_sweep(points: &[DensityPoint]) -> String {
    let mut t = TextTable::new(["X%", "CR% (K=8)", "CR% (best K)", "best K"]);
    for p in points {
        t.row([
            format!("{:.0}", p.x_percent),
            pct(p.cr_k8),
            pct(p.cr_best),
            p.best_k.to_string(),
        ]);
    }
    format!(
        "Ablation — sensitivity to don't-care density (synthetic sweep)\n\
         (CR and the optimal block size both grow with X density — the\n\
          mechanism behind Tables II and VIII)\n{}",
        t.render()
    )
}

/// CR under three codeword-length assignments.
#[derive(Debug, Clone)]
pub struct AssignmentAblation {
    /// Circuit name.
    pub circuit: String,
    /// Paper's default assignment.
    pub paper: f64,
    /// Frequency-directed assignment.
    pub freq_directed: f64,
    /// Adversarial: shortest codewords on the *least* frequent cases.
    pub adversarial: f64,
}

/// Runs the assignment ablation.
pub fn assignment_ablation(datasets: &[Dataset], k: usize) -> Vec<AssignmentAblation> {
    datasets
        .iter()
        .map(|ds| {
            let stream = ds.cubes.as_stream();
            let base = Encoder::new(k).expect("valid K").encode_stream(stream);
            let fd_table = frequency_directed_table(base.stats());
            let fd = Encoder::with_table(k, fd_table)
                .expect("valid K")
                .encode_stream(stream);
            // Adversarial: reverse the frequency-directed ranking.
            let mut stats = *base.stats();
            let max = stats.case_counts.iter().max().copied().unwrap_or(0);
            for c in stats.case_counts.iter_mut() {
                *c = max - *c;
            }
            let bad_table = frequency_directed_table(&stats);
            let bad = Encoder::with_table(k, bad_table)
                .expect("valid K")
                .encode_stream(stream);
            AssignmentAblation {
                circuit: ds.name.clone(),
                paper: base.compression_ratio(),
                freq_directed: fd.compression_ratio(),
                adversarial: bad.compression_ratio(),
            }
        })
        .collect()
}

/// Renders the assignment ablation.
pub fn render_assignment_ablation(rows: &[AssignmentAblation], k: usize) -> String {
    let mut t = TextTable::new(["circuit", "paper", "freq-directed", "adversarial"]);
    for r in rows {
        t.row([
            r.circuit.clone(),
            pct(r.paper),
            pct(r.freq_directed),
            pct(r.adversarial),
        ]);
    }
    format!(
        "Ablation — codeword-length assignment at K={k} (CR%)\n{}",
        t.render()
    )
}

/// Scan power of the decompressed-and-filled test set per fill strategy.
#[derive(Debug, Clone)]
pub struct FillAblation {
    /// Circuit name.
    pub circuit: String,
    /// `(strategy name, power)` rows.
    pub rows: Vec<(&'static str, PowerReport)>,
}

/// Runs the fill ablation: encode at `k`, decode, then fill the surviving
/// don't-cares with each strategy and measure WTM scan power.
pub fn fill_ablation(datasets: &[Dataset], k: usize) -> Vec<FillAblation> {
    datasets
        .iter()
        .map(|ds| {
            let enc = Encoder::new(k).expect("valid K").encode_set(&ds.cubes);
            let decoded = DecodeSession::new()
                .decode(&enc)
                .expect("own encoding decodes");
            let decoded_set = TestSet::from_stream(ds.cubes.pattern_len(), decoded);
            let rows = vec![
                (
                    "random",
                    scan_power(&decoded_set, FillStrategy::Random { seed: 1 }),
                ),
                ("zero", scan_power(&decoded_set, FillStrategy::Zero)),
                ("one", scan_power(&decoded_set, FillStrategy::One)),
                (
                    "min-transition",
                    scan_power(&decoded_set, FillStrategy::MinTransition),
                ),
            ];
            FillAblation {
                circuit: ds.name.clone(),
                rows,
            }
        })
        .collect()
}

/// CR and post-decompression scan power under the two case-selection
/// policies of [`CaseSelect`](ninec::encode::CaseSelect).
#[derive(Debug, Clone)]
pub struct PowerEncodingAblation {
    /// Circuit name.
    pub circuit: String,
    /// Budget in extra bits per block.
    pub budget: usize,
    /// CR with the paper's min-size selection.
    pub cr_min_size: f64,
    /// CR with power-aware selection.
    pub cr_power_aware: f64,
    /// WTM (MT-filled decode) with min-size selection.
    pub wtm_min_size: u64,
    /// WTM with power-aware selection.
    pub wtm_power_aware: u64,
}

/// Runs the power-aware-encoding ablation at block size `k`.
pub fn power_encoding_ablation(
    datasets: &[Dataset],
    k: usize,
    budget: usize,
) -> Vec<PowerEncodingAblation> {
    use ninec::encode::CaseSelect;
    datasets
        .iter()
        .map(|ds| {
            let measure = |select: CaseSelect| {
                let enc = Encoder::new(k)
                    .expect("valid K")
                    .with_case_select(select)
                    .encode_set(&ds.cubes);
                let cr = enc.compression_ratio();
                let decoded = DecodeSession::new()
                    .decode(&enc)
                    .expect("own encoding decodes");
                let decoded_set = TestSet::from_stream(ds.cubes.pattern_len(), decoded);
                let power = scan_power(&decoded_set, FillStrategy::MinTransition);
                (cr, power.total)
            };
            let (cr_min_size, wtm_min_size) = measure(CaseSelect::MinSize);
            let (cr_power_aware, wtm_power_aware) = measure(CaseSelect::PowerAware {
                max_extra_bits: budget,
            });
            PowerEncodingAblation {
                circuit: ds.name.clone(),
                budget,
                cr_min_size,
                cr_power_aware,
                wtm_min_size,
                wtm_power_aware,
            }
        })
        .collect()
}

/// Renders the power-aware-encoding ablation.
pub fn render_power_encoding_ablation(rows: &[PowerEncodingAblation], k: usize) -> String {
    let mut t = TextTable::new([
        "circuit",
        "CR% min-size",
        "CR% power-aware",
        "WTM min-size",
        "WTM power-aware",
        "power saved",
    ]);
    for r in rows {
        let saved = 100.0 * (1.0 - r.wtm_power_aware as f64 / r.wtm_min_size.max(1) as f64);
        t.row([
            r.circuit.clone(),
            pct(r.cr_min_size),
            pct(r.cr_power_aware),
            r.wtm_min_size.to_string(),
            r.wtm_power_aware.to_string(),
            format!("{saved:.1}%"),
        ]);
    }
    let budget = rows.first().map_or(0, |r| r.budget);
    format!(
        "Ablation — power-aware case selection at K={k} (budget {budget} extra bits/block)\n\
         (an extension of the paper's §IV remark: the flexible cases can be chosen\n\
          to minimize scan-in transitions at bounded CR cost; WTM after MT-fill)\n{}",
        t.render()
    )
}

/// Renders the fill ablation.
pub fn render_fill_ablation(rows: &[FillAblation], k: usize) -> String {
    let mut t = TextTable::new(["circuit", "fill", "WTM total", "WTM peak"]);
    for r in rows {
        for (name, power) in &r.rows {
            t.row([
                r.circuit.clone(),
                (*name).to_owned(),
                power.total.to_string(),
                power.peak.to_string(),
            ]);
        }
    }
    format!(
        "Ablation — leftover-X fill vs scan-in power after decompression (K={k})\n\
         (CR is fill-independent; random fill targets non-modeled faults,\n\
          min-transition fill targets shift power — the paper's §IV trade-off)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::mintest_datasets_scaled;

    #[test]
    fn parts_estimate_basics() {
        let stream: TritVec = "0".repeat(64).parse::<TritVec>().unwrap();
        // Single case, Huffman gives it 1 bit: 8 blocks at K=8 -> 8 bits.
        assert_eq!(parts_code_estimate(&stream, 8, 2), 8);
        // Payload accounted for mismatch parts.
        let stream: TritVec = "01010101".parse().unwrap();
        let est = parts_code_estimate(&stream, 8, 2);
        assert_eq!(est, 1 + 8);
    }

    #[test]
    fn finer_parts_never_lose_much() {
        let ds = mintest_datasets_scaled(10);
        for d in &ds {
            let s = d.cubes.as_stream();
            let q2 = parts_code_estimate(s, 16, 2);
            let q4 = parts_code_estimate(s, 16, 4);
            // q=4 refines q=2's mismatch accounting: payload can only
            // shrink; codeword bits may grow slightly.
            assert!(
                (q4 as f64) < (q2 as f64) * 1.25 + 16.0,
                "{}: q4 {q4} vs q2 {q2}",
                d.name
            );
        }
    }

    #[test]
    fn assignment_order_paper_between_extremes() {
        let ds = mintest_datasets_scaled(10);
        for r in assignment_ablation(&ds, 8) {
            assert!(r.freq_directed >= r.paper - 1e-9, "{}", r.circuit);
            assert!(r.adversarial <= r.freq_directed + 1e-9, "{}", r.circuit);
        }
    }

    #[test]
    fn min_transition_fill_never_worse_than_random() {
        let ds = mintest_datasets_scaled(10);
        for r in fill_ablation(&ds[..2], 8) {
            let random = r.rows[0].1.total;
            let mt = r.rows[3].1.total;
            assert!(mt <= random, "{}: MT {mt} vs random {random}", r.circuit);
        }
    }

    #[test]
    fn min_transition_fill_cuts_power_when_x_survives() {
        // s13207's high X density at a large K leaves plenty of payload X
        // for the fill strategies to differentiate on.
        let ds = mintest_datasets_scaled(6);
        let s13207 = ds.iter().find(|d| d.name == "s13207").unwrap().clone();
        let r = &fill_ablation(std::slice::from_ref(&s13207), 32)[0];
        let random = r.rows[0].1.total;
        let mt = r.rows[3].1.total;
        assert!(mt < random, "MT {mt} vs random {random}");
    }

    #[test]
    fn renders_contain_headers() {
        let ds = mintest_datasets_scaled(12);
        assert!(render_parts_ablation(&ds[..1], 8).contains("q=4"));
        let rows = assignment_ablation(&ds[..1], 8);
        assert!(render_assignment_ablation(&rows, 8).contains("adversarial"));
        let rows = fill_ablation(&ds[..1], 8);
        assert!(render_fill_ablation(&rows, 8).contains("WTM"));
    }

    #[test]
    fn density_sweep_is_monotone_where_it_matters() {
        let points = density_sweep(128, 30, 7);
        assert_eq!(points.len(), 6);
        // CR at best K grows with X density.
        for w in points.windows(2) {
            assert!(
                w[1].cr_best >= w[0].cr_best - 0.5,
                "CR should grow with X: {w:?}"
            );
        }
        // Optimal K at 95% X is at least the optimal K at 30% X.
        assert!(points.last().unwrap().best_k >= points.first().unwrap().best_k);
        assert!(render_density_sweep(&points).contains("best K"));
    }

    #[test]
    fn power_encoding_trades_cr_for_power() {
        let ds = mintest_datasets_scaled(10);
        for r in power_encoding_ablation(&ds[..2], 8, 2) {
            assert!(r.cr_power_aware <= r.cr_min_size, "{}", r.circuit);
            assert!(
                r.wtm_power_aware <= r.wtm_min_size,
                "{}: {} > {}",
                r.circuit,
                r.wtm_power_aware,
                r.wtm_min_size
            );
        }
        let rows = power_encoding_ablation(&ds[..1], 8, 2);
        assert!(render_power_encoding_ablation(&rows, 8).contains("power saved"));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn q_must_divide_k() {
        let stream: TritVec = "0000".parse().unwrap();
        let _ = parts_code_estimate(&stream, 8, 3);
    }
}

//! Decoder flexibility comparison (paper §IV, closing paragraphs).
//!
//! The paper's design-reuse argument: the 9C decoder is *totally
//! independent of the circuit under test and the precomputed test set* —
//! for a given `K` it is the same hardware for every chip — whereas
//! dictionary- and Huffman-based decoders carry per-circuit contents, and
//! variable-length decoders must be provisioned for the longest codeword
//! the test set produces. This experiment quantifies that: for each
//! scheme, the fixed decoder estimate plus the *per-circuit configuration
//! bits* its decoder must store, computed exactly from the encoders.

use crate::datasets::Dataset;
use crate::format::{pct, TextTable};
use ninec_baselines::codec::TestDataCodec;
use ninec_baselines::dict::FixedIndexDictionary;
use ninec_baselines::selhuff::SelectiveHuffman;
use ninec_baselines::vihc::Vihc;
use ninec_decompressor::area::decoder_area;

/// One scheme's decoder profile on one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderProfile {
    /// Scheme name.
    pub scheme: &'static str,
    /// Circuit name.
    pub circuit: String,
    /// Compression ratio achieved (the benefit bought).
    pub cr_percent: f64,
    /// Per-circuit configuration bits the decoder must hold (0 = fully
    /// test-set-independent).
    pub config_bits: usize,
}

/// Computes decoder profiles for 9C, VIHC, selective Huffman and the
/// fixed-index dictionary on every dataset.
pub fn decoder_profiles(datasets: &[Dataset]) -> Vec<DecoderProfile> {
    let mut rows = Vec::new();
    for ds in datasets {
        let stream = ds.cubes.as_stream();

        // 9C: fixed table, zero per-circuit configuration.
        let ninec = ninec::encode::Encoder::new(8)
            .expect("valid K")
            .encode_set(&ds.cubes);
        rows.push(DecoderProfile {
            scheme: "9C",
            circuit: ds.name.clone(),
            cr_percent: ninec.compression_ratio(),
            config_bits: 0,
        });

        // VIHC: the decoder holds the per-circuit Huffman code over the
        // mh + 1 run-length symbols: codeword table = sum of lengths, plus
        // a length field (4 bits) per symbol.
        let vihc = Vihc::new(8).expect("valid mh");
        let enc = vihc.encode(stream);
        let code_bits: usize = enc.code_lengths().into_iter().map(|l| l + 4).sum();
        rows.push(DecoderProfile {
            scheme: "VIHC",
            circuit: ds.name.clone(),
            cr_percent: vihc.compression_ratio(stream),
            config_bits: code_bits,
        });

        // Selective Huffman: dictionary patterns + their codewords.
        let sh = SelectiveHuffman::new(8, 16).expect("valid config");
        let enc = sh.encode(stream);
        rows.push(DecoderProfile {
            scheme: "SelHuff",
            circuit: ds.name.clone(),
            cr_percent: sh.compression_ratio(stream),
            config_bits: enc.dictionary_bits() + 16 * 5, // patterns + ~5-bit codes
        });

        // Fixed-index dictionary: the dictionary RAM.
        let dict = FixedIndexDictionary::new(32, 256).expect("valid config");
        let enc = dict.encode(stream);
        rows.push(DecoderProfile {
            scheme: "Dict",
            circuit: ds.name.clone(),
            cr_percent: dict.compression_ratio(stream),
            config_bits: enc.dictionary_bits(),
        });
    }
    rows
}

/// Renders the decoder-flexibility table.
pub fn render_decoder_cost(datasets: &[Dataset], rows: &[DecoderProfile]) -> String {
    let mut t = TextTable::new(["scheme", "circuit", "CR%", "config bits / circuit"]);
    for r in rows {
        t.row([
            r.scheme.to_owned(),
            r.circuit.clone(),
            pct(r.cr_percent),
            r.config_bits.to_string(),
        ]);
    }
    let fixed = decoder_area(8);
    format!(
        "Decoder flexibility (paper §IV): per-circuit configuration each decoder carries\n\
         (the 9C decoder is ~{:.0} GE fixed hardware for every circuit at a given K —\n\
          zero per-circuit bits; dictionary/Huffman decoders must be reloaded per design)\n{}\n\
         datasets: {}\n",
        fixed.total_ge(),
        t.render(),
        datasets
            .iter()
            .map(|d| d.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::mintest_datasets_scaled;

    #[test]
    fn ninec_needs_zero_config_everywhere() {
        let ds = mintest_datasets_scaled(10);
        let rows = decoder_profiles(&ds[..3]);
        for r in rows.iter().filter(|r| r.scheme == "9C") {
            assert_eq!(r.config_bits, 0, "{}", r.circuit);
        }
        // Dictionary schemes always carry configuration.
        for r in rows
            .iter()
            .filter(|r| r.scheme == "Dict" || r.scheme == "SelHuff")
        {
            assert!(r.config_bits > 0, "{} {}", r.scheme, r.circuit);
        }
    }

    #[test]
    fn renders_with_fixed_area_headline() {
        let ds = mintest_datasets_scaled(12);
        let rows = decoder_profiles(&ds[..1]);
        let s = render_decoder_cost(&ds[..1], &rows);
        assert!(s.contains("GE fixed hardware"));
        assert!(s.contains("config bits"));
    }

    #[test]
    fn four_schemes_per_circuit() {
        let ds = mintest_datasets_scaled(12);
        let rows = decoder_profiles(&ds[..2]);
        assert_eq!(rows.len(), 8);
    }
}

//! Shared experiment datasets.
//!
//! All experiments run on the same deterministic synthetic sets so tables
//! are reproducible bit-for-bit (`SEED` pins the generator).

use ninec_testdata::cube::TestSet;
use ninec_testdata::gen::{ibm_profiles, mintest_profiles, SyntheticProfile};

/// The fixed seed every table uses.
pub const SEED: u64 = 0x9c_2004;

/// The block sizes swept in Tables II/III (the paper's K row).
pub const K_SWEEP: [usize; 8] = [4, 8, 12, 16, 20, 24, 28, 32];

/// Clock ratios of Table V.
pub const P_SWEEP: [u32; 3] = [8, 16, 24];

/// One benchmark circuit's dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Circuit name (e.g. `"s5378"`).
    pub name: String,
    /// The profile it was generated from.
    pub profile: SyntheticProfile,
    /// The generated test-cube set.
    pub cubes: TestSet,
}

impl Dataset {
    fn from_profile(profile: SyntheticProfile) -> Self {
        let cubes = profile.generate(SEED);
        Self {
            name: profile.name.clone(),
            profile,
            cubes,
        }
    }
}

/// The six ISCAS'89 datasets of Tables II–VII.
pub fn mintest_datasets() -> Vec<Dataset> {
    mintest_profiles()
        .into_iter()
        .map(Dataset::from_profile)
        .collect()
}

/// Scaled-down variants for fast tests (about 1/`factor` in each
/// dimension).
pub fn mintest_datasets_scaled(factor: usize) -> Vec<Dataset> {
    mintest_profiles()
        .into_iter()
        .map(|p| Dataset::from_profile(p.scaled_down(factor)))
        .collect()
}

/// The two IBM-profile datasets of Table VIII.
pub fn ibm_datasets() -> Vec<Dataset> {
    ibm_profiles()
        .into_iter()
        .map(Dataset::from_profile)
        .collect()
}

/// Scaled-down IBM datasets for tests.
pub fn ibm_datasets_scaled(factor: usize) -> Vec<Dataset> {
    ibm_profiles()
        .into_iter()
        .map(|p| Dataset::from_profile(p.scaled_down(factor)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_deterministic() {
        let a = mintest_datasets_scaled(10);
        let b = mintest_datasets_scaled(10);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cubes, y.cubes, "{}", x.name);
        }
    }

    #[test]
    fn full_sizes_match_published_t_d() {
        for d in mintest_datasets() {
            assert_eq!(d.cubes.total_bits(), d.profile.total_bits(), "{}", d.name);
        }
    }
}

//! Plain-text table rendering for the experiment harness.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        // Columns right-aligned to equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(53.279), "53.3");
    }
}

//! Quantifying the paper's headline feature: leftover don't-cares,
//! random-filled after decompression, improve *non-modeled-fault* quality.
//!
//! Proxy metric: n-detect — how many patterns detect each stuck-at fault.
//! Higher multiplicity means more distinct activation conditions, which
//! correlates with catching defects outside the fault model. The flow
//! here is the real one: ATPG cubes → 9C compression (leftover X
//! preserved) → decompression → fill → n-detect, comparing random fill
//! against constant fill of the *same* decompressed patterns.

use crate::format::TextTable;
use ninec::encode::Encoder;
use ninec::session::DecodeSession;
use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_circuit::bench::{parse_bench, S27};
use ninec_circuit::random::RandomCircuitSpec;
use ninec_circuit::Circuit;
use ninec_fsim::fault::collapsed_faults;
use ninec_fsim::fsim::n_detect;
use ninec_testdata::cube::TestSet;
use ninec_testdata::fill::{fill_test_set, FillStrategy};
use ninec_testdata::trit::TritVec;

/// One circuit's n-detect comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct NDetectRow {
    /// Circuit name.
    pub circuit: String,
    /// Leftover don't-cares in the compressed stream.
    pub leftover_x: u64,
    /// Mean n-detect with zero fill.
    pub zero_fill: f64,
    /// Mean n-detect with random fill.
    pub random_fill: f64,
}

/// Runs the leftover-X → n-detect experiment at block size `k` on the
/// bundled s27 plus random circuits.
pub fn ndetect_experiment(k: usize, repeats: usize) -> Vec<NDetectRow> {
    let mut circuits: Vec<Circuit> = vec![parse_bench(S27).expect("bundled netlist parses")];
    circuits.push(RandomCircuitSpec::new("rand150", 8, 12, 150).generate(31));
    circuits.push(RandomCircuitSpec::new("rand300", 10, 16, 300).generate(37));
    circuits.iter().map(|c| ndetect_on(c, k, repeats)).collect()
}

/// The experiment core for one circuit: the test set is applied `repeats`
/// times (testers routinely re-apply compressed patterns with fresh random
/// fill; constant fill gains nothing from repetition).
pub fn ndetect_on(circuit: &Circuit, k: usize, repeats: usize) -> NDetectRow {
    let atpg = generate_tests(circuit, AtpgConfig::default());
    let encoded = Encoder::new(k).expect("valid K").encode_set(&atpg.tests);
    let decoded = DecodeSession::new()
        .decode(&encoded)
        .expect("own encoding decodes");
    let decoded_set = TestSet::from_stream(atpg.tests.pattern_len(), decoded);
    let faults = collapsed_faults(circuit);

    // Metric: average number of *distinct* applied patterns detecting
    // each fault. Constant fill produces the same patterns on every
    // application, so repetition adds nothing; random fill re-rolls the
    // leftover X and keeps finding new activation conditions.
    let apply = |strategy_for: &dyn Fn(usize) -> FillStrategy| -> f64 {
        let mut seen = std::collections::HashSet::new();
        let mut all = TestSet::new(decoded_set.pattern_len());
        for r in 0..repeats {
            let filled = fill_test_set(&decoded_set, strategy_for(r));
            for p in filled.patterns() {
                if seen.insert(p.to_string()) {
                    all.push_pattern(&p).expect("same width");
                }
            }
        }
        let counts = n_detect(circuit, &all, &faults, u32::MAX >> 1);
        counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len().max(1) as f64
    };

    NDetectRow {
        circuit: circuit.name().to_owned(),
        leftover_x: encoded.stats().leftover_x,
        zero_fill: apply(&|_| FillStrategy::Zero),
        random_fill: apply(&|r| FillStrategy::Random {
            seed: 0xfeed + r as u64,
        }),
    }
}

/// Renders the experiment.
pub fn render_ndetect(rows: &[NDetectRow], k: usize, repeats: usize) -> String {
    let mut t = TextTable::new([
        "circuit",
        "leftover X",
        "distinct n-detect (0-fill)",
        "distinct n-detect (random)",
        "gain",
    ]);
    for r in rows {
        t.row([
            r.circuit.clone(),
            r.leftover_x.to_string(),
            format!("{:.2}", r.zero_fill),
            format!("{:.2}", r.random_fill),
            format!(
                "{:+.1}%",
                (r.random_fill / r.zero_fill.max(1e-9) - 1.0) * 100.0
            ),
        ]);
    }
    format!(
        "Leftover-X quality (paper's headline feature, quantified via n-detect)\n\
         (ATPG cubes -> 9C @ K={k} -> decompress -> fill -> n-detect over {repeats}\n\
          applications; random fill re-rolls each time, constant fill cannot)\n{}",
        t.render()
    )
}

/// Reassembles a decoded stream for external callers (exported for tests).
pub fn decoded_set_of(circuit: &Circuit, k: usize) -> TestSet {
    let atpg = generate_tests(circuit, AtpgConfig::default());
    let encoded = Encoder::new(k).expect("valid K").encode_set(&atpg.tests);
    let decoded: TritVec = DecodeSession::new()
        .decode(&encoded)
        .expect("own encoding decodes");
    TestSet::from_stream(atpg.tests.pattern_len(), decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_fill_beats_zero_fill_on_s27() {
        let s27 = parse_bench(S27).unwrap();
        let row = ndetect_on(&s27, 8, 4);
        assert!(
            row.leftover_x > 0,
            "need surviving X for the feature to matter"
        );
        assert!(
            row.random_fill > row.zero_fill,
            "random {:.2} should beat zero {:.2}",
            row.random_fill,
            row.zero_fill
        );
    }

    #[test]
    fn decoded_set_keeps_x() {
        let s27 = parse_bench(S27).unwrap();
        let ds = decoded_set_of(&s27, 8);
        assert!(ds.x_density() > 0.0);
    }

    #[test]
    fn render_shape() {
        let rows = vec![NDetectRow {
            circuit: "x".into(),
            leftover_x: 5,
            zero_fill: 2.0,
            random_fill: 3.0,
        }];
        let s = render_ndetect(&rows, 8, 4);
        assert!(s.contains("+50.0%"));
    }
}

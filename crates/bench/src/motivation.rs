//! The paper's §I motivation, quantified: why not plain BIST, and how 9C
//! compares against the LFSR-reseeding decompression family it cites.

use crate::datasets::Dataset;
use crate::format::{pct, TextTable};
use ninec::encode::Encoder;
use ninec_atpg::generate::{generate_tests, AtpgConfig};
use ninec_bist::prpg::random_coverage_curve;
use ninec_bist::reseed::ReseedEncoder;
use ninec_circuit::bench::{parse_bench, S27};
use ninec_circuit::random::RandomCircuitSpec;
use ninec_circuit::Circuit;
use ninec_fsim::fault::collapsed_faults;

/// Random-pattern BIST coverage vs deterministic ATPG coverage for one
/// circuit.
#[derive(Debug, Clone)]
pub struct BistVsAtpg {
    /// Circuit name.
    pub circuit: String,
    /// `(pattern count, coverage%)` checkpoints for pseudo-random test.
    pub random_curve: Vec<(usize, f64)>,
    /// ATPG coverage with its (compacted) pattern count.
    pub atpg_patterns: usize,
    /// ATPG coverage, percent.
    pub atpg_coverage: f64,
}

/// Runs the BIST-vs-ATPG comparison on the bundled s27 plus random
/// circuits of growing size.
pub fn bist_vs_atpg() -> Vec<BistVsAtpg> {
    let mut circuits: Vec<Circuit> = vec![parse_bench(S27).expect("bundled netlist parses")];
    circuits.push(RandomCircuitSpec::new("rand200", 10, 14, 200).generate(23));
    circuits.push(RandomCircuitSpec::new("rand400", 12, 20, 400).generate(29));
    bist_vs_atpg_on(&circuits, &[16, 64, 256, 1024])
}

/// [`bist_vs_atpg`] over explicit circuits and random-pattern checkpoints.
pub fn bist_vs_atpg_on(circuits: &[Circuit], checkpoints: &[usize]) -> Vec<BistVsAtpg> {
    circuits
        .iter()
        .map(|c| {
            let faults = collapsed_faults(c);
            let curve = random_coverage_curve(c, &faults, 24, 5, checkpoints);
            let atpg = generate_tests(c, AtpgConfig::default());
            BistVsAtpg {
                circuit: c.name().to_owned(),
                random_curve: curve
                    .into_iter()
                    .map(|p| (p.patterns, p.coverage_percent))
                    .collect(),
                atpg_patterns: atpg.tests.num_patterns(),
                atpg_coverage: atpg.coverage_percent(),
            }
        })
        .collect()
}

/// Renders the BIST-vs-ATPG comparison.
pub fn render_bist_vs_atpg(rows: &[BistVsAtpg]) -> String {
    let mut header = vec!["circuit".to_owned()];
    if let Some(first) = rows.first() {
        header.extend(first.random_curve.iter().map(|(n, _)| format!("rnd@{n}")));
    }
    header.push("ATPG cov".to_owned());
    header.push("ATPG pats".to_owned());
    let mut t = TextTable::new(header);
    for r in rows {
        let mut row = vec![r.circuit.clone()];
        row.extend(r.random_curve.iter().map(|(_, c)| pct(*c)));
        row.push(pct(r.atpg_coverage));
        row.push(r.atpg_patterns.to_string());
        t.row(row);
    }
    format!(
        "Motivation (paper §I) — pseudo-random BIST coverage vs deterministic ATPG\n\
         (random-pattern-resistant faults keep the BIST curve below ATPG;\n\
          deterministic sets need compression — hence 9C)\n{}",
        t.render()
    )
}

/// 9C vs partial LFSR reseeding on one dataset.
#[derive(Debug, Clone)]
pub struct ReseedComparison {
    /// Circuit name.
    pub circuit: String,
    /// 9C CR at K = 8.
    pub ninec_cr: f64,
    /// Best windowed-reseeding CR over the swept windows.
    pub reseed_cr: f64,
    /// The window size that achieved it.
    pub best_window: usize,
    /// Raw-fallback share at the best window, percent of windows.
    pub fallback_percent: f64,
}

/// Compares 9C with partial LFSR reseeding (32-bit seeds, window sizes
/// 40/64/96) on the experiment datasets.
pub fn reseed_comparison(datasets: &[Dataset]) -> Vec<ReseedComparison> {
    let encoder = ReseedEncoder::new(32).expect("tabulated width");
    datasets
        .iter()
        .map(|ds| {
            let ninec_cr = Encoder::new(8)
                .expect("valid K")
                .encode_set(&ds.cubes)
                .compression_ratio();
            let td = ds.cubes.total_bits() as f64;
            let mut best = (f64::NEG_INFINITY, 0usize, 0.0f64);
            for window in [40usize, 64, 96] {
                let result = encoder.encode_set_windowed(&ds.cubes, window);
                let cr = (td - result.compressed_bits() as f64) / td * 100.0;
                if cr > best.0 {
                    let fb = result.raw_fallbacks() as f64 / result.encodings.len().max(1) as f64
                        * 100.0;
                    best = (cr, window, fb);
                }
            }
            ReseedComparison {
                circuit: ds.name.clone(),
                ninec_cr,
                reseed_cr: best.0,
                best_window: best.1,
                fallback_percent: best.2,
            }
        })
        .collect()
}

/// Renders the reseeding comparison.
pub fn render_reseed_comparison(rows: &[ReseedComparison]) -> String {
    let mut t = TextTable::new([
        "circuit",
        "9C CR% (K=8)",
        "reseed CR%",
        "window",
        "raw windows",
    ]);
    for r in rows {
        t.row([
            r.circuit.clone(),
            pct(r.ninec_cr),
            pct(r.reseed_cr),
            r.best_window.to_string(),
            format!("{:.1}%", r.fallback_percent),
        ]);
    }
    format!(
        "Motivation — 9C vs partial LFSR reseeding (32-bit seeds, paper refs [20]-[22])\n\
         (reseeding needs no code tables but pays a full seed per window and\n\
          falls back to raw transfer when a window's equations are unsolvable)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::mintest_datasets_scaled;

    #[test]
    fn atpg_beats_random_on_every_sampled_circuit() {
        // Reduced version of the `motivation` experiment for test speed.
        let circuits = vec![
            parse_bench(S27).unwrap(),
            RandomCircuitSpec::new("rand120", 8, 10, 120).generate(23),
        ];
        for row in bist_vs_atpg_on(&circuits, &[16, 128]) {
            let random_final = row.random_curve.last().unwrap().1;
            assert!(
                row.atpg_coverage >= random_final,
                "{}: ATPG {:.1} vs random {:.1}",
                row.circuit,
                row.atpg_coverage,
                random_final
            );
        }
    }

    #[test]
    fn reseed_comparison_runs_on_scaled_sets() {
        let ds = mintest_datasets_scaled(8);
        let rows = reseed_comparison(&ds[..2]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.reseed_cr.is_finite());
            assert!((0.0..=100.0).contains(&r.fallback_percent));
        }
        assert!(render_reseed_comparison(&rows).contains("reseed"));
    }

    #[test]
    fn renders() {
        let rows = vec![BistVsAtpg {
            circuit: "x".into(),
            random_curve: vec![(16, 50.0), (64, 70.0)],
            atpg_patterns: 9,
            atpg_coverage: 100.0,
        }];
        let s = render_bist_vs_atpg(&rows);
        assert!(s.contains("rnd@16") && s.contains("ATPG cov"));
    }
}

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p ninec-bench --release --bin tables -- all
//! cargo run -p ninec-bench --release --bin tables -- table2 table5
//! cargo run -p ninec-bench --release --bin tables -- --scaled all   # fast preview
//! ```

use ninec_bench::ablation::{
    assignment_ablation, fill_ablation, power_encoding_ablation, render_assignment_ablation,
    render_fill_ablation, render_parts_ablation, render_power_encoding_ablation,
};
use ninec_bench::datasets::{
    ibm_datasets, ibm_datasets_scaled, mintest_datasets, mintest_datasets_scaled, Dataset,
};
use ninec_bench::tables::{
    fig3, fig4, render_fig2, render_fig3, render_fig4, render_table1, render_table2, render_table3,
    render_table4, render_table5, render_table6, render_table7, render_table8, table2, table4,
    table7, table8, KSweep,
};

const ALL: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig2",
    "fig3",
    "fig4",
    "ablation_code_size",
    "ablation_fill",
    "ablation_density",
    "motivation",
    "decoder_cost",
    "ndetect",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scaled = args.iter().any(|a| a == "--scaled");
    let json = args.iter().any(|a| a == "--json");
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = ALL.to_vec();
    }
    for w in &wanted {
        if !ALL.contains(w) {
            eprintln!("unknown experiment {w:?}; known: {}", ALL.join(", "));
            std::process::exit(2);
        }
    }

    let mintest: Vec<Dataset> = if scaled {
        mintest_datasets_scaled(8)
    } else {
        mintest_datasets()
    };
    // The K sweep is shared by several tables; compute it once.
    let needs_sweep = wanted
        .iter()
        .any(|w| matches!(*w, "table2" | "table3" | "table4" | "table5" | "table6"));
    let sweeps: Vec<KSweep> = if needs_sweep {
        table2(&mintest)
    } else {
        Vec::new()
    };

    if json {
        emit_json(&wanted, &mintest, &sweeps, scaled);
        return;
    }

    for w in wanted {
        let out = match w {
            "table1" => render_table1(8),
            "table2" => render_table2(&sweeps),
            "table3" => render_table3(&sweeps, &mintest),
            "table4" => render_table4(&table4(&mintest, &sweeps)),
            "table5" => render_table5(&sweeps),
            "table6" => render_table6(&sweeps, 8),
            "table7" => render_table7(&table7(&mintest)),
            "table8" => {
                let ibm = if scaled {
                    ibm_datasets_scaled(16)
                } else {
                    ibm_datasets()
                };
                let ks = [8, 16, 24, 32, 48, 64, 96, 128];
                render_table8(&table8(&ibm, &ks))
            }
            "fig2" => render_fig2(&[4, 8, 12, 16, 20, 24, 28, 32, 64, 128]),
            "fig3" => {
                let rows = fig3(&mintest[0], 8, &[8, 16, 32, 64], 8);
                render_fig3(&mintest[0], &rows)
            }
            "fig4" => {
                let rows = fig4(&mintest[0], 8, 32, 8);
                render_fig4(&mintest[0], &rows)
            }
            "ablation_code_size" => render_parts_ablation(&mintest, 16),
            "ndetect" => {
                use ninec_bench::ndetect::{ndetect_experiment, render_ndetect};
                render_ndetect(&ndetect_experiment(8, 4), 8, 4)
            }
            "decoder_cost" => {
                use ninec_bench::decoder_cost::{decoder_profiles, render_decoder_cost};
                render_decoder_cost(&mintest, &decoder_profiles(&mintest))
            }
            "ablation_density" => {
                use ninec_bench::ablation::{density_sweep, render_density_sweep};
                render_density_sweep(&density_sweep(256, 80, 7))
            }
            "motivation" => {
                use ninec_bench::motivation::{
                    bist_vs_atpg, render_bist_vs_atpg, render_reseed_comparison, reseed_comparison,
                };
                format!(
                    "{}\n{}",
                    render_bist_vs_atpg(&bist_vs_atpg()),
                    render_reseed_comparison(&reseed_comparison(&mintest))
                )
            }
            "ablation_fill" => {
                let rows = fill_ablation(&mintest, 8);
                let assign = assignment_ablation(&mintest, 8);
                let power = power_encoding_ablation(&mintest, 8, 2);
                format!(
                    "{}\n{}\n{}",
                    render_fill_ablation(&rows, 8),
                    render_assignment_ablation(&assign, 8),
                    render_power_encoding_ablation(&power, 8)
                )
            }
            _ => unreachable!("validated above"),
        };
        println!("{out}");
        println!();
    }
}

/// Emits the machine-readable form of the requested experiments.
fn emit_json(wanted: &[&str], mintest: &[Dataset], sweeps: &[KSweep], scaled: bool) {
    use ninec_bench::json;
    let mut docs = vec![json::datasets_json(mintest)];
    for w in wanted {
        match *w {
            "table2" | "table3" => docs.push(json::sweeps_json(sweeps)),
            "table4" => docs.push(json::comparison_json(&table4(mintest, sweeps))),
            "table5" => docs.push(json::tat_json(sweeps)),
            "table6" => docs.push(json::codeword_stats_json(sweeps, 8)),
            "table7" => docs.push(json::freqdir_json(&table7(mintest))),
            "table8" => {
                let ibm = if scaled {
                    ibm_datasets_scaled(16)
                } else {
                    ibm_datasets()
                };
                let ks = [8, 16, 24, 32, 48, 64, 96, 128];
                docs.push(json::large_json(&table8(&ibm, &ks)));
            }
            _ => {} // text-only experiments are skipped under --json
        }
    }
    docs.dedup();
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::Value::Array(docs)).expect("valid json")
    );
}

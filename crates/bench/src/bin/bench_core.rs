//! Regenerates `results/BENCH_core.json`: encode throughput of the scalar
//! reference vs the word-parallel kernels on the IBM-profile streams.
//!
//! ```text
//! cargo run -p ninec-bench --release --bin bench_core [-- <out.json>]
//! ```
//!
//! CKT1 is the 16 Mbit stream the word-kernel speedup target is measured
//! on; a scaled CKT2 and a K-sweep on CKT1 give context. Run in `--release`
//! — debug-build numbers are meaningless.

use ninec_bench::datasets::ibm_datasets;
use ninec_bench::throughput::{
    bench_core_json, measure, measure_ecc_repair, measure_engine_scaling, measure_obs_overhead,
    measure_plan_decode, measure_trace_overhead, EccRepairRow, EngineScalingRow, ObsOverheadRow,
    PlanDecodeRow, ThroughputRow, TraceOverheadRow,
};
use std::fs;
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_core.json".to_owned())
        .into();
    let ibm = ibm_datasets();
    let mut rows: Vec<ThroughputRow> = Vec::new();
    // The headline number: K-sweep on the 16 Mbit CKT1 stream.
    let ckt1 = ibm[0].cubes.as_stream();
    for k in [8usize, 16, 32, 64] {
        let row = measure(&ibm[0].name, ckt1, k, 3);
        eprintln!(
            "{} K={:<3} {:>8.1} -> {:>8.1} Mbit/s ({:.2}x)",
            row.circuit,
            row.k,
            row.scalar_mbit_s,
            row.word_mbit_s,
            row.speedup()
        );
        rows.push(row);
    }
    // CKT2 (4 Mbit) at the Table VIII block sizes, for context.
    let ckt2 = ibm[1].cubes.as_stream();
    for k in [16usize, 64] {
        let row = measure(&ibm[1].name, ckt2, k, 3);
        eprintln!(
            "{} K={:<3} {:>8.1} -> {:>8.1} Mbit/s ({:.2}x)",
            row.circuit,
            row.k,
            row.scalar_mbit_s,
            row.word_mbit_s,
            row.speedup()
        );
        rows.push(row);
    }
    // Telemetry cost on the headline stream: same word-parallel encode with
    // the obs runtime switch on vs off (the acceptance bar for the
    // batched-publishing design is an obs-on delta within noise).
    let mut obs_rows: Vec<ObsOverheadRow> = Vec::new();
    for k in [8usize, 64] {
        let row = measure_obs_overhead(&ibm[0].name, ckt1, k, 3);
        eprintln!(
            "{} K={:<3} obs on/off {:>8.1} / {:>8.1} Mbit/s ({:+.2}% overhead)",
            row.circuit,
            row.k,
            row.on_mbit_s,
            row.off_mbit_s,
            row.overhead_pct()
        );
        obs_rows.push(row);
    }
    // Flight-recorder cost on the decode path: the same frame decode with
    // the trace kill switch on vs off. The recorder is always-on by
    // default, so this is a hard gate — per-segment span bookkeeping must
    // stay within 5% of the untraced decode (large segments amortize the
    // per-event cost; overhead beyond that means someone put a probe in a
    // hot loop).
    let mut trace_rows: Vec<TraceOverheadRow> = Vec::new();
    for threads in [1usize, 8] {
        let row = measure_trace_overhead(&ibm[0].name, ckt1, 8, threads, 1 << 20, 3);
        eprintln!(
            "{} K=8 threads={:<2} trace on/off {:>8.1} / {:>8.1} Mbit/s ({:+.2}% overhead)",
            row.circuit,
            row.threads,
            row.on_mbit_s,
            row.off_mbit_s,
            row.overhead_pct()
        );
        assert!(
            !row.compiled || row.overhead_pct() <= 5.0,
            "flight recorder costs {:.2}% on decode (threads={}) — over the 5% budget",
            row.overhead_pct(),
            row.threads
        );
        trace_rows.push(row);
    }
    // Sharded-engine scaling: frame encode/decode of the 16 Mbit CKT1
    // stream at 1/2/4/8 worker threads. Frames are asserted byte-identical
    // to the serial engine at every thread count; the JSON records the
    // machine's available parallelism so the speedups can be judged in
    // context (a 1-core box necessarily measures ~1.0x at every count).
    let mut scaling_rows: Vec<EngineScalingRow> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let row = measure_engine_scaling(&ibm[0].name, ckt1, 8, threads, 1 << 20, 3);
        eprintln!(
            "{} K=8 threads={:<2} encode {:>8.1} Mbit/s, decode {:>8.1} Mbit/s",
            row.circuit, row.threads, row.encode_mbit_s, row.decode_mbit_s
        );
        scaling_rows.push(row);
    }
    // Erasure-coding cost: v3 parity encode overhead vs plain v2, and the
    // repair-ladder decode throughput on a frame with one corrupted data
    // segment (bit-exactness asserted inside the measurement). g=4,r=1 is
    // the README/CLI example geometry; the 8-thread row shows the repair
    // path scales with the pool like strict decode does.
    let mut ecc_rows: Vec<EccRepairRow> = Vec::new();
    for threads in [1usize, 8] {
        let row = measure_ecc_repair(&ibm[0].name, ckt1, 8, threads, 1 << 20, (4, 1), 3);
        eprintln!(
            "{} K=8 threads={:<2} parity 4:1 encode {:>8.1} Mbit/s ({:+.1}% vs v2, +{:.2}% bytes), repair {:>8.1} Mbit/s",
            row.circuit,
            row.threads,
            row.parity_encode_mbit_s,
            -row.encode_overhead_pct(),
            row.size_overhead_pct(),
            row.repair_decode_mbit_s
        );
        ecc_rows.push(row);
    }
    // Plan-then-execute pipeline: the same damaged-v3 repair driven off a
    // single FramePlan. The measurement asserts the scan-pass counter
    // drops 3→1 for the whole strict→repair→salvage ladder and that the
    // plan-driven repair is bit-exact; the throughput rows show the
    // repair path is no slower than the one-shot wrapper.
    let mut plan_rows: Vec<PlanDecodeRow> = Vec::new();
    for threads in [1usize, 8] {
        let row = measure_plan_decode(&ibm[0].name, ckt1, 8, threads, 1 << 20, (4, 1), 5);
        eprintln!(
            "{} K=8 threads={:<2} parity 4:1 ladder scans {}→{}, repair {:>8.1} -> {:>8.1} Mbit/s ({:.2}x)",
            row.circuit,
            row.threads,
            row.classic_scan_passes,
            row.plan_scan_passes,
            row.classic_repair_mbit_s,
            row.plan_repair_mbit_s,
            row.repair_speedup()
        );
        plan_rows.push(row);
    }
    // Fault-tolerance counters: corrupt one payload byte of a CKT1 frame,
    // watch strict decode reject it (crc_failures), salvage it
    // (salvaged_segments), and reject a decode under a hostile limit
    // (limit_rejections) — so the recovery counters in the committed OBS
    // snapshot are nonzero and tracked. `worker_panics` intentionally stays
    // 0 here: the failpoint hooks that can force one are a test-only cargo
    // feature (`failpoints`) that this bin does not enable.
    {
        use ninec::engine::frame::{HEADER_BYTES, SEGMENT_HEADER_BYTES};
        use ninec::engine::{DecodeLimits, Engine};
        use ninec::session::DecodeSession;
        let engine = Engine::builder().threads(1).segment_bits(1 << 20).build();
        let mut frame = engine.encode_frame(8, ckt1).expect("encode CKT1 frame");
        // Limit rejection first, on the intact frame: segment CRCs are
        // verified before the limit check, so a corrupt segment would
        // surface as BadCrc instead.
        let hostile = DecodeLimits {
            max_segment_trits: 1,
            ..DecodeLimits::default()
        };
        assert!(
            DecodeSession::new()
                .limits(hostile)
                .decode_frame(&frame, ninec::Policy::Strict)
                .is_err(),
            "hostile limit must reject the frame"
        );
        frame[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0x55; // first payload byte
        assert!(
            DecodeSession::new()
                .decode_frame(&frame, ninec::Policy::Strict)
                .is_err(),
            "strict decode of a corrupted frame must fail"
        );
        let report = DecodeSession::new()
            .decode_frame(&frame, ninec::Policy::Salvage)
            .expect("salvage decode")
            .report
            .expect("damaged frame advances past strict");
        eprintln!(
            "{} salvage: {}/{} segments recovered, {} damaged",
            ibm[0].name,
            report.recovered_segments,
            report.total_segments,
            report.damaged.len()
        );
        // Repair-failure counter: damage beyond the parity budget (two
        // segments of the same g=4,r=1 group) makes the ladder fall
        // through to salvage, so `ninec.ecc.repair_failures` is nonzero
        // and tracked in the committed OBS snapshot. The small stream
        // keeps this cheap; 8 segments at g=4 give 2 interleaved groups.
        let small = ninec_testdata::gen::SyntheticProfile::new("obs-ecc", 16, 512, 0.85)
            .generate(1)
            .as_stream()
            .clone();
        let protected = Engine::builder()
            .threads(1)
            .segment_bits(1 << 10)
            .parity(4, 1)
            .build();
        let mut v3 = protected.encode_frame(8, &small).expect("encode v3");
        let scan = ninec::engine::frame::scan_salvage(&v3, &DecodeLimits::default())
            .expect("scan own frame");
        let data: Vec<_> = scan
            .entries
            .iter()
            .filter_map(|e| match e {
                ninec::engine::frame::ScanEntry::Intact { byte_range, .. } => {
                    Some(byte_range.clone())
                }
                _ => None,
            })
            .collect();
        let groups = scan.groups();
        // Two data segments of group 0: indices 0 and `groups`.
        for idx in [0, groups] {
            v3[data[idx].start + SEGMENT_HEADER_BYTES] ^= 0x55;
        }
        let report = protected
            .decode_frame_repair(&v3)
            .expect("file headers intact");
        assert!(
            !report.is_full_recovery(),
            "over-budget damage must not fully repair"
        );
    }
    if let Some(dir) = out.parent() {
        fs::create_dir_all(dir).expect("create results dir");
    }
    let doc = bench_core_json(
        &rows,
        &obs_rows,
        &scaling_rows,
        &ecc_rows,
        &plan_rows,
        &trace_rows,
    );
    let text = serde_json::to_string_pretty(&doc).expect("serialize results");
    fs::write(&out, text + "\n").expect("write results");
    println!("wrote {}", out.display());
    // Dump the live registry — populated by every encode this run timed —
    // next to the throughput numbers, so the metric set backing the
    // paper-table provenance notes is a tracked artifact.
    let obs_out = out.with_file_name("OBS_core.json");
    fs::write(&obs_out, ninec_obs::snapshot().render_json() + "\n").expect("write obs snapshot");
    println!("wrote {}", obs_out.display());
}

//! Regenerates `results/BENCH_archive.json`: the durable `9CA` archive
//! tier's three headline numbers — content-addressed dedup ratio on a
//! redundant frame set, random-access range-decode latency vs decoding
//! the whole frame, and scrubber throughput over the stored blobs.
//!
//! ```text
//! cargo run -p ninec-bench --release --bin bench_archive [-- <out.json>]
//! ```
//!
//! Run in `--release` — debug-build numbers are meaningless.

use ninec::engine::{Archive, Engine, ScrubMode};
use ninec_testdata::gen::SyntheticProfile;
use ninec_testdata::trit::TritVec;
use serde_json::json;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Frames appended to the benchmark archive. Half repeat earlier
/// content so the dedup path has something to find, the way regression
/// suites re-archive mostly-unchanged test sets.
const FRAMES: usize = 8;
/// Trit window for the random-access measurement.
const RANGE_TRITS: usize = 512;
/// Timed repetitions per measurement; the median is reported.
const REPS: usize = 9;

fn median_micros(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_archive.json".to_owned())
        .into();
    let engine = Engine::builder().segment_bits(1 << 12).parity(4, 1).build();

    // A fresh archive in the temp dir; stale runs are truncated away.
    let dir = std::env::temp_dir().join(format!("ninec_bench_archive_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create bench dir");
    let store = dir.join("bench.9ca");
    let mut archive = Archive::create(&store, &engine).expect("create archive");

    // Even frames repeat stream 1, odd frames are distinct: the dedup
    // map should fold every even frame onto the first's blobs.
    let streams: Vec<TritVec> = (0..FRAMES)
        .map(|i| {
            let seed = if i % 2 == 0 { 1 } else { 100 + i as u64 };
            SyntheticProfile::new("bench-arc", 64, 2048, 0.72)
                .generate(seed)
                .as_stream()
                .clone()
        })
        .collect();
    let append_started = Instant::now();
    let mut logical_frame_bytes = 0usize;
    for stream in &streams {
        let frame = engine.encode_frame(8, stream).expect("encode frame");
        logical_frame_bytes += frame.len();
        archive.append_frame(&frame).expect("append frame");
    }
    let append_secs = append_started.elapsed().as_secs_f64();
    let stats = archive.stats();
    eprintln!(
        "{} frames, {} stored / {} logical bytes, dedup ratio {:.3}, appended in {:.1} ms",
        stats.frames,
        stats.stored_bytes,
        stats.logical_bytes,
        stats.dedup_ratio(),
        append_secs * 1e3,
    );
    assert!(
        stats.dedup_hits > 0,
        "the repeated even frames must dedup against the first"
    );

    // Random access: a small window from the middle of the last frame,
    // against extracting + decoding that whole frame. The seek index
    // should make the range decode cheaper by roughly the frame/window
    // segment ratio.
    let last = stats.frames - 1;
    let source_len = streams[last].len();
    let start = (source_len - RANGE_TRITS) / 2;
    let mut range_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        let trits = archive
            .decode_range(last, start, RANGE_TRITS)
            .expect("range decode");
        assert_eq!(trits.len(), RANGE_TRITS);
        range_samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let mut full_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        let bytes = archive.extract_frame(last).expect("extract frame");
        let trits = engine.decode_frame(&bytes).expect("decode frame");
        assert_eq!(trits.len(), source_len);
        full_samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let range_us = median_micros(range_samples);
    let full_us = median_micros(full_samples);
    eprintln!(
        "random access: {RANGE_TRITS} trits in {range_us:.1} us vs full decode {full_us:.1} us ({:.1}x)",
        full_us / range_us.max(1e-9),
    );

    // Scrub throughput: a full check pass over every stored blob,
    // CRC-validating data and parity alike.
    let mut scrub_samples = Vec::with_capacity(REPS);
    let mut scrubbed_segments = 0u64;
    for _ in 0..REPS {
        let t = Instant::now();
        let report = archive.scrub(ScrubMode::Check).expect("scrub");
        assert!(report.is_clean(), "a fresh archive must scrub clean");
        scrubbed_segments = report.scrubbed_segments;
        scrub_samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let scrub_us = median_micros(scrub_samples);
    let scrub_mb_s = (stats.stored_bytes as f64 / (1 << 20) as f64) / (scrub_us / 1e6);
    eprintln!(
        "scrub: {scrubbed_segments} segment refs, {} stored bytes in {scrub_us:.1} us ({scrub_mb_s:.1} MiB/s)",
        stats.stored_bytes,
    );

    // The vendored `json!` supports flat literals only; nested objects
    // are assembled bottom-up.
    let config = json!({
        "frames": FRAMES,
        "segment_bits": (1 << 12),
        "parity": "4:1",
        "range_trits": RANGE_TRITS,
        "reps": REPS,
    });
    let dedup = json!({
        "frames": stats.frames,
        "stored_blobs": stats.stored_blobs,
        "stored_bytes": stats.stored_bytes,
        "logical_bytes": stats.logical_bytes,
        "logical_frame_bytes": logical_frame_bytes,
        "dedup_hits": stats.dedup_hits,
        "dedup_ratio": stats.dedup_ratio(),
        "append_ms": append_secs * 1e3,
    });
    let random_access = json!({
        "range_trits": RANGE_TRITS,
        "range_decode_us": range_us,
        "full_decode_us": full_us,
        "speedup": full_us / range_us.max(1e-9),
    });
    let scrub = json!({
        "scrubbed_segments": scrubbed_segments,
        "check_pass_us": scrub_us,
        "throughput_mib_s": scrub_mb_s,
    });
    let doc = json!({
        "experiment": "archive_tier",
        "config": config,
        "dedup": dedup,
        "random_access": random_access,
        "scrub": scrub,
    });
    if let Some(parent) = out.parent() {
        fs::create_dir_all(parent).expect("create results dir");
    }
    let text = serde_json::to_string_pretty(&doc).expect("serialize results");
    fs::write(&out, text + "\n").expect("write results");
    println!("wrote {}", out.display());
    let _ = fs::remove_file(&store);
    let _ = fs::remove_file(archive.index_path());
}

//! Regenerates `results/BENCH_serve.json`: a multi-connection soak of
//! the `ninec-serve` codec service on an ephemeral loopback port.
//!
//! ```text
//! cargo run -p ninec-bench --release --bin bench_serve [-- <out.json>]
//! ```
//!
//! Two scenarios, each a fresh in-process server:
//!
//! - **nominal** — a wide admission window and no degrade threshold;
//!   every decode runs the full ladder and the shed/busy counters must
//!   stay 0 (asserted).
//! - **overload** — `degrade_threshold: 0` plus a one-slot admission
//!   window behind a deliberately undersized handler pool; repair
//!   requests are shed to strict-only (asserted nonzero) and the
//!   admission window answers busy under the connection storm.
//!
//! Both rows record per-request latency percentiles (p50/p99/max),
//! request throughput, and the server's refusal counters, so a serve
//! regression shows up as a diff in a tracked artifact.

use ninec_serve::{
    ChaosConfig, ChaosProxy, Client, ClientError, ClientOptions, RetryPolicy, RetryingClient,
    ServeConfig, Server, StatsSnapshot, Status,
};
use serde_json::{json, Value};
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Connections in the soak — the acceptance bar is N >= 8.
const CONNECTIONS: usize = 8;
/// Requests each connection issues per scenario.
const REQUESTS_PER_CONN: usize = 40;

struct SoakOutcome {
    latencies: Vec<Duration>,
    ok: u64,
    busy: u64,
    shed_answers: u64,
    wall: Duration,
}

/// Drives `CONNECTIONS` concurrent clients against `addr`, each decoding
/// `frame` under `policy` `REQUESTS_PER_CONN` times. Busy refusals are
/// counted and retried-as-lost (the request still took a round trip, so
/// its latency is recorded); any other error is fatal — the soak is a
/// correctness gate too.
fn soak(
    addr: std::net::SocketAddr,
    frame: &[u8],
    policy: ninec::Policy,
    expected: &str,
) -> SoakOutcome {
    let start = Instant::now();
    let lanes: Vec<_> = (0..CONNECTIONS)
        .map(|_| {
            let frame = frame.to_vec();
            let expected = expected.to_owned();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("soak client connects");
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CONN);
                let (mut ok, mut busy, mut shed) = (0u64, 0u64, 0u64);
                for _ in 0..REQUESTS_PER_CONN {
                    let t = Instant::now();
                    match client.decode(&frame, policy) {
                        Ok(reply) => {
                            assert_eq!(reply.trits, expected, "soak decode must stay exact");
                            ok += 1;
                            if reply.degraded {
                                shed += 1;
                            }
                        }
                        Err(ClientError::Server {
                            status: Status::Busy,
                            ..
                        }) => busy += 1,
                        Err(other) => panic!("soak hit an unexpected error: {other}"),
                    }
                    latencies.push(t.elapsed());
                }
                (latencies, ok, busy, shed)
            })
        })
        .collect();
    let mut outcome = SoakOutcome {
        latencies: Vec::with_capacity(CONNECTIONS * REQUESTS_PER_CONN),
        ok: 0,
        busy: 0,
        shed_answers: 0,
        wall: Duration::ZERO,
    };
    for lane in lanes {
        let (lat, ok, busy, shed) = lane.join().expect("soak lane panicked");
        outcome.latencies.extend(lat);
        outcome.ok += ok;
        outcome.busy += busy;
        outcome.shed_answers += shed;
    }
    outcome.wall = start.elapsed();
    outcome
}

/// Like [`soak`], but through a fault-injection proxy with retrying
/// clients: every lane must still finish every request bit-exact — the
/// retry policy absorbs the torn connections — and the per-lane retry
/// tallies are summed so the row records how hard the clients worked.
fn chaos_soak(addr: std::net::SocketAddr, frame: &[u8], expected: &str) -> (SoakOutcome, u64) {
    let start = Instant::now();
    let lanes: Vec<_> = (0..CONNECTIONS)
        .map(|_| {
            let frame = frame.to_vec();
            let expected = expected.to_owned();
            std::thread::spawn(move || {
                let mut client = RetryingClient::new(
                    addr,
                    ClientOptions {
                        read_timeout: Some(Duration::from_secs(10)),
                        ..ClientOptions::default()
                    },
                    RetryPolicy {
                        max_retries: 6,
                        base: Duration::from_millis(2),
                        cap: Duration::from_millis(100),
                        ..RetryPolicy::default()
                    },
                )
                .expect("chaos client resolves");
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CONN);
                for _ in 0..REQUESTS_PER_CONN {
                    let t = Instant::now();
                    let reply = client
                        .decode(&frame, ninec::Policy::Strict)
                        .expect("chaos soak decode must succeed via retries");
                    assert_eq!(reply.trits, expected, "chaos decode must stay exact");
                    latencies.push(t.elapsed());
                }
                (latencies, client.retries())
            })
        })
        .collect();
    let mut outcome = SoakOutcome {
        latencies: Vec::with_capacity(CONNECTIONS * REQUESTS_PER_CONN),
        ok: 0,
        busy: 0,
        shed_answers: 0,
        wall: Duration::ZERO,
    };
    let mut retries = 0u64;
    for lane in lanes {
        let (lat, lane_retries) = lane.join().expect("chaos lane panicked");
        outcome.ok += lat.len() as u64;
        outcome.latencies.extend(lat);
        retries += lane_retries;
    }
    outcome.wall = start.elapsed();
    (outcome, retries)
}

/// Sorted-percentile in microseconds (`q` in 0..=100).
fn percentile_us(sorted: &[Duration], q: usize) -> f64 {
    assert!(!sorted.is_empty());
    let idx = (sorted.len() - 1) * q / 100;
    sorted[idx].as_secs_f64() * 1e6
}

fn row(scenario: &str, outcome: &SoakOutcome, stats: &StatsSnapshot) -> Value {
    let mut sorted = outcome.latencies.clone();
    sorted.sort();
    let total = outcome.latencies.len() as f64;
    let server = json!({
        "connections": stats.connections,
        "requests": stats.requests,
        "ok": stats.ok,
        "busy": stats.busy,
        "shed": stats.shed,
        "rate_limited": stats.rate_limited,
        "partial": stats.partial,
        "failed": stats.failed,
        "deadline_exceeded": stats.deadline_exceeded,
    });
    json!({
        "scenario": scenario,
        "connections": CONNECTIONS,
        "requests_per_connection": REQUESTS_PER_CONN,
        "requests": outcome.latencies.len(),
        "ok": outcome.ok,
        "busy": outcome.busy,
        "degraded_answers": outcome.shed_answers,
        "p50_us": percentile_us(&sorted, 50),
        "p99_us": percentile_us(&sorted, 99),
        "max_us": percentile_us(&sorted, 100),
        "throughput_req_s": total / outcome.wall.as_secs_f64(),
        "wall_ms": outcome.wall.as_secs_f64() * 1e3,
        "server": server,
    })
}

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_serve.json".to_owned())
        .into();
    // One mid-sized frame reused for every request: big enough that the
    // decode dominates the round trip, small enough that the soak stays
    // seconds. Seeded through a throwaway server so the bench exercises
    // the same wire compress path the clients use.
    let text = "0X0X00XX1111X11101X0".repeat(500);

    // Nominal: wide window, no degradation. Shed/busy must stay 0.
    let mut server = Server::start(ServeConfig {
        handler_threads: CONNECTIONS,
        max_inflight: CONNECTIONS * 2,
        queue_depth: CONNECTIONS * 2,
        ..ServeConfig::default()
    })
    .expect("nominal server starts");
    let mut seeder = Client::connect(server.addr()).expect("seeder connects");
    let frame = seeder.compress(8, &text).expect("seed frame");
    let expected = seeder
        .decode(&frame, ninec::Policy::Strict)
        .expect("reference decode")
        .trits;
    let nominal = soak(server.addr(), &frame, ninec::Policy::Repair, &expected);
    let nominal_stats = server.stats();
    assert_eq!(nominal_stats.shed, 0, "nominal soak must not shed");
    assert_eq!(nominal.busy, 0, "nominal soak must not hit busy");
    assert_eq!(
        nominal.ok,
        (CONNECTIONS * REQUESTS_PER_CONN) as u64,
        "nominal soak answers everything"
    );
    eprintln!(
        "nominal : {} req, p50 {:>7.0} us, p99 {:>7.0} us, {:>6.0} req/s, shed {}",
        nominal.latencies.len(),
        {
            let mut s = nominal.latencies.clone();
            s.sort();
            percentile_us(&s, 50)
        },
        {
            let mut s = nominal.latencies.clone();
            s.sort();
            percentile_us(&s, 99)
        },
        nominal.latencies.len() as f64 / nominal.wall.as_secs_f64(),
        nominal_stats.shed,
    );
    let nominal_row = row("nominal", &nominal, &nominal_stats);
    server.shutdown();

    // Overload: every request sees the degraded load picture, so every
    // repair-policy decode is shed to strict (the frame is clean, so the
    // answers stay exact — degradation sheds rungs, not payloads), and a
    // one-slot admission window under 8 connections answers busy.
    let mut server = Server::start(ServeConfig {
        handler_threads: 2,
        max_inflight: 1,
        queue_depth: CONNECTIONS,
        degrade_threshold: 0,
        ..ServeConfig::default()
    })
    .expect("overload server starts");
    let overload = soak(server.addr(), &frame, ninec::Policy::Repair, &expected);
    let overload_stats = server.stats();
    assert!(
        overload_stats.shed > 0,
        "overload soak must shed repair work (shed counter stayed 0)"
    );
    assert_eq!(
        overload.ok + overload.busy,
        (CONNECTIONS * REQUESTS_PER_CONN) as u64,
        "every overload request is answered or refused typed"
    );
    eprintln!(
        "overload: {} req, ok {}, busy {}, shed {} (server), degraded answers {}",
        overload.latencies.len(),
        overload.ok,
        overload.busy,
        overload_stats.shed,
        overload.shed_answers,
    );
    let overload_row = row("overload", &overload, &overload_stats);
    server.shutdown();

    // Chaos: the nominal topology behind the fault-injection proxy at a
    // 10% torn-write rate (seed 3 guarantees torn connections among the
    // lanes' initial dials). Retrying clients must keep goodput nonzero
    // — in fact, complete — and the retry tally proves the faults fired.
    let mut server = Server::start(ServeConfig {
        handler_threads: CONNECTIONS,
        max_inflight: CONNECTIONS * 2,
        queue_depth: CONNECTIONS * 2,
        ..ServeConfig::default()
    })
    .expect("chaos server starts");
    let mut proxy = ChaosProxy::start(
        server.addr(),
        ChaosConfig {
            torn_write_permille: 100,
            seed: 3,
            ..ChaosConfig::default()
        },
    )
    .expect("chaos proxy starts");
    let (chaos, retries) = chaos_soak(proxy.addr(), &frame, &expected);
    let chaos_stats = server.stats();
    assert!(chaos.ok > 0, "chaos goodput must stay nonzero");
    assert_eq!(
        chaos.ok,
        (CONNECTIONS * REQUESTS_PER_CONN) as u64,
        "retries must absorb a 10% torn-write rate completely"
    );
    assert!(retries > 0, "the fault mix must actually have fired");
    eprintln!(
        "chaos   : {} req, ok {}, client retries {}, {:>6.0} req/s",
        chaos.latencies.len(),
        chaos.ok,
        retries,
        chaos.latencies.len() as f64 / chaos.wall.as_secs_f64(),
    );
    let chaos_row = match row("chaos_torn_10pct", &chaos, &chaos_stats) {
        Value::Object(mut map) => {
            map.push(("client_retries".to_string(), json!(retries)));
            Value::Object(map)
        }
        other => other,
    };
    proxy.shutdown();
    server.shutdown();

    let doc = json!({
        "schema": "ninec-bench-serve/v1",
        "note": "multi-connection soak of the ninec-serve codec service; \
                 latencies are client-observed round trips on loopback",
        "rows": [nominal_row, overload_row, chaos_row],
    });
    if let Some(dir) = out.parent() {
        fs::create_dir_all(dir).expect("create results dir");
    }
    let textdoc = serde_json::to_string_pretty(&doc).expect("serialize results");
    fs::write(&out, textdoc + "\n").expect("write results");
    println!("wrote {}", out.display());
}

//! Experiment harness for the 9C reproduction.
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! - [`datasets`] — the shared deterministic synthetic datasets;
//! - [`tables`] — engines + renderers for Tables I–VIII and Figures 1–4;
//! - [`ablation`] — code-granularity, codeword-assignment and X-fill
//!   ablations;
//! - [`mod@format`] — plain-text table rendering;
//! - [`throughput`] — scalar vs word-parallel encode throughput
//!   (`results/BENCH_core.json`).
//!
//! Run `cargo run -p ninec-bench --release --bin tables -- all` to print
//! everything; `cargo bench` runs the Criterion timing benches built on
//! the same engines; `cargo run -p ninec-bench --release --bin bench_core`
//! regenerates the throughput record.

#![warn(missing_docs)]

pub mod ablation;
pub mod datasets;
pub mod decoder_cost;
pub mod format;
pub mod json;
pub mod motivation;
pub mod ndetect;
pub mod tables;
pub mod throughput;

//! End-to-end service tests: wire roundtrips, the admission gates and
//! the exporter endpoints — all against in-process servers on ephemeral
//! loopback ports.

use ninec_serve::{Client, ClientError, Op, ServeConfig, Server, Status, TenantConfig};

const STREAM: &str = "0X0X00XX1111X11101X0";

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("ephemeral loopback server starts")
}

#[test]
fn compress_decode_info_repair_roundtrip() {
    let mut server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    let text = STREAM.repeat(100);
    let frame = client.compress(8, &text).expect("compress");

    // Clean frame: the strict rung answers under any policy.
    let reply = client
        .decode(&frame, ninec::Policy::Strict)
        .expect("decode");
    assert_eq!(reply.rung, ninec::RungKind::Strict);
    assert_eq!(reply.damaged, 0);
    assert!(!reply.partial);
    assert!(!reply.degraded);
    assert_eq!(reply.trits.len(), text.len());

    // INFO summarises without decoding.
    let info = client.info(&frame).expect("info");
    assert!(info.contains("version: 3"), "unexpected info: {info}");
    assert!(info.contains("parity: 4:1"), "unexpected info: {info}");

    // Corrupt one byte: strict fails typed, repair rebuilds bit-exact.
    let mut damaged = frame.clone();
    damaged[47] ^= 0x55;
    let err = client
        .decode(&damaged, ninec::Policy::Strict)
        .expect_err("strict refuses damage");
    assert!(matches!(
        err,
        ClientError::Server {
            status: Status::Failed,
            ..
        }
    ));
    let repaired = client.repair(&damaged).expect("repair");
    assert_eq!(repaired.rung, ninec::RungKind::Repaired);
    assert_eq!(repaired.damaged, 1);
    assert!(!repaired.partial);
    assert_eq!(repaired.trits, reply.trits);

    let stats = server.stats();
    assert!(stats.ok >= 3);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.shed, 0);
    server.shutdown();
}

#[test]
fn salvage_of_unprotected_damage_is_partial() {
    // No parity: salvage is the only rung past strict, and it is lossy.
    let mut server = start(ServeConfig {
        parity: (0, 0),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let frame = client.compress(8, &STREAM.repeat(100)).expect("compress");
    let mut damaged = frame;
    damaged[47] ^= 0x55;
    let reply = client
        .decode(&damaged, ninec::Policy::Salvage)
        .expect("salvage answers lossily, not with an error");
    assert_eq!(reply.rung, ninec::RungKind::Salvaged);
    assert!(reply.partial);
    assert!(reply.damaged >= 1);
    assert_eq!(server.stats().partial, 1);
    server.shutdown();
}

#[test]
fn unknown_tenant_is_refused_and_connection_survives() {
    let mut server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client.hello("ghost").expect_err("unknown tenant");
    assert!(matches!(
        err,
        ClientError::Server {
            status: Status::BadRequest,
            ..
        }
    ));
    // Still bound to `default`, still usable.
    let greeting = client.hello("default").expect("default tenant exists");
    assert!(greeting.contains("tenant default"), "greeting: {greeting}");
    let frame = client.compress(8, STREAM).expect("connection survives");
    assert!(!frame.is_empty());
    server.shutdown();
}

#[test]
fn malformed_bodies_are_bad_requests_never_disconnects() {
    let mut server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");
    // Empty decode body, unknown policy byte, non-UTF-8 trits, bad trits.
    let r = client.roundtrip(Op::Decode, b"").expect("server answers");
    assert_eq!(r.status, Status::BadRequest);
    let r = client
        .roundtrip(Op::Decode, &[9, 1, 2, 3])
        .expect("answers");
    assert_eq!(r.status, Status::BadRequest);
    let r = client
        .roundtrip(Op::Compress, &[8, 0, 0xFF, 0xFE])
        .expect("answers");
    assert_eq!(r.status, Status::BadRequest);
    let r = client
        .roundtrip(Op::Compress, &[8, 0, b'0', b'7'])
        .expect("answers");
    assert_eq!(r.status, Status::BadRequest);
    // Garbage frame bytes: INFO fails typed.
    let r = client.roundtrip(Op::Info, b"not a frame").expect("answers");
    assert_eq!(r.status, Status::Failed);
    // The connection survived all five.
    assert!(!client.compress(8, STREAM).expect("still alive").is_empty());
    server.shutdown();
}

#[test]
fn zero_admission_window_answers_busy() {
    let mut server = start(ServeConfig {
        max_inflight: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client.compress(8, STREAM).expect_err("window is closed");
    assert!(matches!(
        err,
        ClientError::Server {
            status: Status::Busy,
            ..
        }
    ));
    // HELLO does no codec work and skips admission entirely.
    assert!(client.hello("default").is_ok());
    assert!(server.stats().busy >= 1);
    server.shutdown();
}

#[test]
fn degraded_mode_sheds_repair_to_strict_and_flags_it() {
    // Threshold 0: every request sees the degraded load picture.
    let mut server = start(ServeConfig {
        degrade_threshold: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let frame = client.compress(8, &STREAM.repeat(100)).expect("compress");

    // A clean frame still answers exactly — degradation sheds rungs,
    // it never changes payloads.
    let reply = client
        .decode(&frame, ninec::Policy::Repair)
        .expect("decode");
    assert_eq!(reply.rung, ninec::RungKind::Strict);
    assert!(reply.degraded, "response must carry the degraded flag");

    // A damaged frame now fails typed instead of climbing to repair.
    let mut damaged = frame;
    damaged[47] ^= 0x55;
    let err = client
        .decode(&damaged, ninec::Policy::Repair)
        .expect_err("repair was shed");
    match err {
        ClientError::Server {
            status, degraded, ..
        } => {
            assert_eq!(status, Status::Failed);
            assert!(degraded, "refusal must carry the degraded flag");
        }
        other => panic!("expected a server refusal, got {other}"),
    }

    let stats = server.stats();
    assert!(stats.shed >= 2, "both repair requests were downgraded");
    server.shutdown();
}

#[test]
fn tenant_rate_limit_refuses_the_burst_overflow() {
    let mut server = start(ServeConfig {
        tenants: vec![TenantConfig {
            rate: Some(1),
            burst: 3,
            ..TenantConfig::new("metered")
        }],
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    client.hello("metered").expect("tenant exists");
    let mut refused = 0;
    for _ in 0..6 {
        match client.compress(8, STREAM) {
            Ok(_) => {}
            Err(ClientError::Server {
                status: Status::RateLimited,
                ..
            }) => refused += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(refused >= 2, "burst of 3 cannot admit 6 instant requests");
    assert_eq!(server.stats().rate_limited, refused);
    server.shutdown();
}

#[test]
fn metrics_trace_and_healthz_endpoints_serve() {
    let mut server = start(ServeConfig::default());
    let http = server.http_addr().expect("http listener is on by default");
    let mut client = Client::connect(server.addr()).expect("connect");
    let frame = client.compress(8, &STREAM.repeat(50)).expect("compress");
    client
        .decode(&frame, ninec::Policy::Strict)
        .expect("decode");

    let health = ninec_serve::client::http_get(http, "/healthz").expect("healthz");
    assert_eq!(health, "ok\n");

    let metrics = ninec_serve::client::http_get(http, "/metrics").expect("metrics");
    if ninec_obs::is_compiled() {
        assert!(
            metrics.contains("ninec_serve_requests"),
            "prometheus text missing serve counters:\n{metrics}"
        );
    }

    let trace = ninec_serve::client::http_get(http, "/trace").expect("trace");
    assert!(
        trace.trim_start().starts_with('{') || trace.trim_start().starts_with('['),
        "trace endpoint must serve a JSON document: {trace}"
    );

    let missing = ninec_serve::client::http_get(http, "/nope");
    assert!(missing.is_err(), "unknown paths are 404");
    server.shutdown();
}

#[test]
fn torn_and_oversized_wire_frames_do_not_wedge_the_server() {
    use std::io::Write;
    let mut server = start(ServeConfig {
        max_message_bytes: 1024,
        ..ServeConfig::default()
    });

    // A length bomb: claims 512 MiB, sends nothing more.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(&[0, 0, 0, 0x20, 2])
        .expect("bomb prefix writes");
    drop(stream);

    // Half a length prefix, then hang up.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&[3, 0]).expect("torn prefix writes");
    drop(stream);

    // The server is still answering real clients.
    let mut client = Client::connect(server.addr()).expect("connect");
    assert!(!client
        .compress(8, STREAM)
        .expect("still serving")
        .is_empty());
    server.shutdown();
}

#[test]
fn stats_snapshot_counts_connections_and_requests() {
    let mut server = start(ServeConfig::default());
    let mut a = Client::connect(server.addr()).expect("connect");
    let mut b = Client::connect(server.addr()).expect("connect");
    a.compress(8, STREAM).expect("a compresses");
    b.compress(8, STREAM).expect("b compresses");
    drop((a, b));
    let stats = server.stats();
    assert!(stats.connections >= 2);
    assert!(stats.requests >= 2);
    assert!(stats.ok >= 2);
    server.shutdown();
}

#[test]
fn archive_range_serves_random_access_and_typed_refusals() {
    // Host a one-frame archive on disk; the range verb ships only the
    // 20-byte coordinate triple and gets trit text back.
    let dir = std::env::temp_dir().join(format!("ninec_serve_arcrange_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let engine = ninec::Engine::builder()
        .threads(1)
        .segment_bits(128)
        .build();
    let stream: ninec_testdata::trit::TritVec = STREAM.repeat(40).parse().expect("trit text");
    let frame = engine.encode_frame(8, &stream).expect("encode");
    let store = dir.join("hosted.9ca");
    let mut arc = ninec::engine::Archive::create(&store, &engine).expect("create archive");
    arc.append_frame(&frame).expect("append");
    drop(arc);

    let mut server = start(ServeConfig {
        archive: Some(store.to_str().expect("utf-8 path").to_string()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let full = engine.decode_frame(&frame).expect("decode").to_string();
    let got = client.archive_range(0, 20, 60).expect("range decodes");
    assert_eq!(
        got,
        full[20..80],
        "range must match the full decode's slice"
    );

    // Bad coordinates are the client's fault: typed BadRequest, and the
    // connection keeps serving.
    let err = client
        .archive_range(9, 0, 1)
        .expect_err("frame 9 does not exist");
    assert!(matches!(
        err,
        ClientError::Server {
            status: Status::BadRequest,
            ..
        }
    ));
    let err = client
        .archive_range(0, 0, u64::MAX)
        .expect_err("len is past the end");
    assert!(matches!(
        err,
        ClientError::Server {
            status: Status::BadRequest,
            ..
        }
    ));
    assert_eq!(
        client.archive_range(0, 0, 8).expect("still serving"),
        full[..8]
    );
    server.shutdown();

    // A server with no hosted archive refuses the verb outright.
    let mut plain = start(ServeConfig::default());
    let mut client = Client::connect(plain.addr()).expect("connect");
    let err = client
        .archive_range(0, 0, 1)
        .expect_err("no archive hosted");
    assert!(matches!(
        err,
        ClientError::Server {
            status: Status::BadRequest,
            ..
        }
    ));
    plain.shutdown();
}

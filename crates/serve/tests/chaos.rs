//! Chaos suite: the service behind the fault-injection proxy, plus
//! deadline/cancellation behavior under hostile peers.
//!
//! Every test body runs under an outer watchdog: the contract under
//! chaos is that a request ends in bit-exact success, a typed refusal
//! or a typed timeout — **never** a hang. A test that would hang
//! panics at the watchdog instead of stalling the suite.

use ninec_serve::{
    ChaosConfig, ChaosProxy, Client, ClientError, ClientOptions, RetryPolicy, RetryingClient,
    ServeConfig, Server, Status,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const STREAM: &str = "0X0X00XX1111X11101X0";

/// Runs `body` on a helper thread and panics if it does not finish
/// within `limit` — the suite's no-hang guarantee.
fn watchdog<T: Send + 'static>(
    limit: Duration,
    name: &str,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(body());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            // The body panicked — re-raise its message, not a fake hang.
            match handle.join() {
                Err(panic) => std::panic::resume_unwind(panic),
                Ok(()) => panic!("{name} exited without sending a result"),
            }
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name} hung past the {limit:?} watchdog")
        }
    }
}

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("ephemeral loopback server starts")
}

#[test]
fn torn_responses_retry_to_bit_exact_success() {
    watchdog(Duration::from_secs(60), "torn-retry", || {
        let mut server = start(ServeConfig::default());
        // Seed 5 at 40% torn: connection 0 tears, connection 1 is clean
        // — so the first attempt is guaranteed to fail and the retry is
        // guaranteed to reconnect onto a healthy path.
        let mut proxy = ChaosProxy::start(
            server.addr(),
            ChaosConfig {
                torn_write_permille: 400,
                seed: 5,
                ..ChaosConfig::default()
            },
        )
        .expect("proxy starts");

        // Reference answer straight from the server, no faults.
        let text = STREAM.repeat(50);
        let mut direct = Client::connect(server.addr()).expect("direct connect");
        let frame = direct.compress(8, &text).expect("direct compress");
        let reference = direct
            .decode(&frame, ninec::Policy::Strict)
            .expect("direct decode");

        let mut client = RetryingClient::new(
            proxy.addr(),
            ClientOptions {
                read_timeout: Some(Duration::from_secs(5)),
                ..ClientOptions::default()
            },
            RetryPolicy {
                max_retries: 8,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(50),
                ..RetryPolicy::default()
            },
        )
        .expect("retrying client resolves");
        for _ in 0..10 {
            let reply = client
                .decode(&frame, ninec::Policy::Strict)
                .expect("decode survives torn responses via retry");
            assert_eq!(reply.trits, reference.trits, "retried answer is bit-exact");
            assert!(!reply.partial);
        }
        assert!(
            client.retries() > 0,
            "connection 0 tears, so at least one retry must have happened"
        );
        proxy.shutdown();
        server.shutdown();
    });
}

#[test]
fn a_blackholed_connection_times_out_typed() {
    watchdog(Duration::from_secs(30), "blackhole", || {
        let mut server = start(ServeConfig::default());
        let mut proxy = ChaosProxy::start(
            server.addr(),
            ChaosConfig {
                blackhole_permille: 1000, // every connection is swallowed
                ..ChaosConfig::default()
            },
        )
        .expect("proxy starts");

        let mut client = Client::connect_with(
            proxy.addr(),
            &ClientOptions {
                read_timeout: Some(Duration::from_millis(300)),
                ..ClientOptions::default()
            },
        )
        .expect("connect through the blackhole proxy");
        let started = Instant::now();
        let err = client.info(b"whatever").expect_err("nothing ever answers");
        let is_timeout = |e: &std::io::Error| {
            e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut
        };
        assert!(
            matches!(
                &err,
                ClientError::Io(e) if is_timeout(e)
            ) || matches!(
                &err,
                ClientError::Protocol(ninec_serve::WireError::Io(e)) if is_timeout(e)
            ),
            "blackhole must surface as a typed socket timeout, got: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the read timeout bounded the wait"
        );
        proxy.shutdown();
        server.shutdown();
    });
}

#[test]
fn delay_and_throttle_still_roundtrip_bit_exact() {
    watchdog(Duration::from_secs(60), "delay-throttle", || {
        let mut server = start(ServeConfig::default());
        let mut proxy = ChaosProxy::start(
            server.addr(),
            ChaosConfig {
                delay: Duration::from_millis(10),
                throttle_bytes_per_sec: 16 << 10,
                ..ChaosConfig::default()
            },
        )
        .expect("proxy starts");
        let text = STREAM.repeat(20);
        let mut direct = Client::connect(server.addr()).expect("direct connect");
        let frame = direct.compress(8, &text).expect("direct compress");
        let reference = direct
            .decode(&frame, ninec::Policy::Strict)
            .expect("direct decode");
        let mut client = Client::connect(proxy.addr()).expect("connect");
        let reply = client
            .decode(&frame, ninec::Policy::Strict)
            .expect("decode over slow link");
        assert_eq!(reply.trits, reference.trits, "slowness must never corrupt");
        proxy.shutdown();
        server.shutdown();
    });
}

#[test]
fn the_server_ceiling_answers_status_8_and_reclaims_workers() {
    watchdog(Duration::from_secs(60), "server-ceiling", || {
        // A zero ceiling: every decode's deadline has already passed by
        // the first segment-boundary check, deterministically.
        let mut server = start(ServeConfig {
            max_request_time: Some(Duration::ZERO),
            ..ServeConfig::default()
        });
        let mut client = Client::connect(server.addr()).expect("connect");
        // Compress ignores the decode deadline — the frame still builds.
        let frame = client
            .compress(8, &STREAM.repeat(200))
            .expect("compress is not deadline-bound");
        let err = client
            .decode(&frame, ninec::Policy::Strict)
            .expect_err("a zero budget can never decode");
        assert!(
            matches!(
                err,
                ClientError::Server {
                    status: Status::DeadlineExceeded,
                    ..
                }
            ),
            "expected the typed deadline status, got: {err}"
        );
        assert!(server.stats().deadline_exceeded >= 1);

        // Cancellation must reclaim the workers: the process-wide
        // active-job gauge settles back to zero.
        let settle = Instant::now();
        loop {
            if ninec::engine::active_jobs() == 0 {
                break;
            }
            assert!(
                settle.elapsed() < Duration::from_secs(10),
                "cancelled jobs never drained: active_jobs() = {}",
                ninec::engine::active_jobs()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    });
}

#[test]
fn a_client_deadline_answers_status_8_and_old_clients_are_unaffected() {
    watchdog(Duration::from_secs(60), "client-deadline", || {
        let mut server = start(ServeConfig::default());
        let text = STREAM.repeat(2000); // big enough to out-run 1ms in a debug build

        // Old-style client: no deadline, no capability in the HELLO —
        // greeting and behavior identical to the pre-deadline protocol.
        let mut old = Client::connect(server.addr()).expect("connect old");
        let greeting = old.hello("default").expect("hello");
        assert!(
            !greeting.contains("caps"),
            "a plain HELLO must not grow capabilities: {greeting}"
        );
        let frame = old.compress(8, &text).expect("compress");
        let reference = old
            .decode(&frame, ninec::Policy::Strict)
            .expect("old client decodes fine");
        assert_eq!(reference.trits.len(), text.len());

        // Deadline-negotiated client with an impossible 1ms budget.
        let mut tight = Client::connect_with(
            server.addr(),
            &ClientOptions {
                deadline: Some(Duration::from_millis(1)),
                ..ClientOptions::default()
            },
        )
        .expect("connect tight");
        let greeting = tight.hello("default").expect("hello negotiates");
        assert!(
            greeting.contains("caps deadline"),
            "server must echo the negotiated capability: {greeting}"
        );
        let err = tight
            .decode(&frame, ninec::Policy::Strict)
            .expect_err("1ms cannot decode this frame");
        assert!(
            matches!(
                err,
                ClientError::Server {
                    status: Status::DeadlineExceeded,
                    ..
                }
            ),
            "expected the typed deadline status, got: {err}"
        );

        // The connection survives its own deadline: relax it and decode.
        tight.set_deadline(Some(Duration::from_secs(60)));
        let reply = tight
            .decode(&frame, ninec::Policy::Strict)
            .expect("a generous deadline decodes normally");
        assert_eq!(reply.trits, reference.trits);
        server.shutdown();
    });
}

#[test]
fn a_slow_loris_is_reaped_and_clean_tenants_are_served() {
    watchdog(Duration::from_secs(30), "slow-loris", || {
        // One handler thread: if the loris held it, the clean client
        // below could never be served.
        let mut server = start(ServeConfig {
            handler_threads: 1,
            read_timeout: Some(Duration::from_millis(500)),
            ..ServeConfig::default()
        });

        // The loris: trickle one byte of a "request" every 100ms,
        // forever. The total per-message budget must reap it even
        // though every individual byte lands well inside 500ms.
        let mut loris = TcpStream::connect(server.addr()).expect("loris connects");
        let loris_feeder = std::thread::spawn(move || {
            // A legitimate-looking 100-byte message... delivered one
            // byte at a time. (A garbage length prefix would earn a
            // typed BadRequest instead of exercising the read budget.)
            let mut message = vec![0u8; 64];
            message[..4].copy_from_slice(&100u32.to_le_bytes());
            for byte in message {
                if loris.write_all(&[byte]).is_err() {
                    break; // reaped — exactly what we want
                }
                let _ = loris.flush();
                std::thread::sleep(Duration::from_millis(100));
            }
            // Once reaped, the server side is gone: the socket must
            // observe the close instead of trickling forever.
            let _ = loris.set_read_timeout(Some(Duration::from_secs(10)));
            let mut buf = [0u8; 1];
            matches!(loris.read(&mut buf), Ok(0) | Err(_))
        });

        // Give the loris a head start so it owns the handler thread.
        std::thread::sleep(Duration::from_millis(150));

        // The clean tenant must be served normally once the loris is
        // reaped — bounded by the watchdog, not by luck.
        let mut client = Client::connect(server.addr()).expect("clean client connects");
        let text = STREAM.repeat(10);
        let frame = client.compress(8, &text).expect("clean compress");
        let reply = client
            .decode(&frame, ninec::Policy::Strict)
            .expect("clean decode");
        assert_eq!(reply.trits.len(), text.len());
        assert!(!reply.partial);

        assert!(
            loris_feeder.join().expect("loris thread"),
            "the loris socket must be closed by the server, not left open"
        );
        server.shutdown();
    });
}

//! Regression: [`FrameReader`] fed from a TCP socket must classify
//! short/bad header prefixes exactly like the in-memory `io::Read`
//! path. A socket delivers the prefix in arbitrarily small reads and
//! then reports EOF from `read()` rather than a slice running out —
//! the `Truncated` vs `BadMagic` split has to survive that.

use ninec::engine::frame::{FrameError, MAGIC};
use ninec::engine::{FrameReader, ReadError, StreamItem};
use ninec::Engine;
use ninec_testdata::trit::TritVec;
use std::io::Write;
use std::net::{TcpListener, TcpStream};

/// Serves `bytes` over a loopback socket in `chunk`-sized writes and
/// hands the client end to `check`.
fn over_tcp<T>(bytes: Vec<u8>, chunk: usize, check: impl FnOnce(TcpStream) -> T) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("bound addr");
    let writer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("one client connects");
        for piece in bytes.chunks(chunk.max(1)) {
            stream.write_all(piece).expect("serving thread writes");
            stream.flush().expect("serving thread flushes");
        }
        // Dropping the stream closes it: the reader sees clean EOF.
    });
    let client = TcpStream::connect(addr).expect("connect");
    let result = check(client);
    writer.join().expect("serving thread exits cleanly");
    result
}

#[test]
fn header_after_immediate_close_is_truncated() {
    over_tcp(Vec::new(), 1, |stream| {
        let mut fr = FrameReader::new(stream);
        assert!(matches!(
            fr.header(),
            Err(ReadError::Frame(FrameError::Truncated { offset: 0 }))
        ));
    });
}

#[test]
fn short_magic_prefix_then_close_is_truncated_not_bad_magic() {
    // 3 of the 4 magic bytes: the stream is a plausible frame cut off
    // mid-header, so the error must say "truncated", not "bad magic".
    over_tcp(MAGIC[..3].to_vec(), 1, |stream| {
        let mut fr = FrameReader::new(stream);
        assert!(matches!(
            fr.header(),
            Err(ReadError::Frame(FrameError::Truncated { offset: 3 }))
        ));
    });
}

#[test]
fn non_magic_prefix_then_close_is_bad_magic() {
    over_tcp(b"HTTP/1.1 400\r\n\r\n".to_vec(), 3, |stream| {
        let mut fr = FrameReader::new(stream);
        assert!(matches!(
            fr.header(),
            Err(ReadError::Frame(FrameError::BadMagic))
        ));
    });
}

#[test]
fn one_wrong_magic_byte_is_bad_magic_even_when_short() {
    // Shorter than MAGIC but already provably not a frame.
    over_tcp(vec![MAGIC[0], MAGIC[1] ^ 0xFF], 1, |stream| {
        let mut fr = FrameReader::new(stream);
        assert!(matches!(
            fr.header(),
            Err(ReadError::Frame(FrameError::BadMagic))
        ));
    });
}

#[test]
fn whole_frame_over_tcp_matches_the_in_memory_walk() {
    let stream: TritVec = "0X0X00XX1111X11101X0"
        .repeat(64)
        .parse()
        .expect("literal parses");
    let engine = Engine::builder()
        .threads(1)
        .segment_bits(256)
        .parity(4, 1)
        .build();
    let bytes = engine.encode_frame(8, &stream).expect("frame encodes");

    // Reference walk: straight off a slice.
    let mut reference = FrameReader::new(std::io::Cursor::new(bytes.clone()));
    let ref_head = reference.header().expect("in-memory header parses");
    let mut ref_items = Vec::new();
    while let Some(item) = reference.next_item().expect("in-memory walk") {
        ref_items.push(item);
    }

    // Same frame dribbled over a socket 7 bytes at a time.
    let (tcp_head, tcp_items) = over_tcp(bytes, 7, |stream| {
        let mut fr = FrameReader::new(stream);
        let head = fr.header().expect("tcp header parses");
        let mut items = Vec::new();
        while let Some(item) = fr.next_item().expect("tcp walk") {
            items.push(item);
        }
        (head, items)
    });

    assert_eq!(tcp_head, ref_head);
    assert_eq!(tcp_items.len(), ref_items.len());
    for (tcp, reference) in tcp_items.iter().zip(&ref_items) {
        assert_eq!(tcp, reference);
    }
    assert!(tcp_items
        .iter()
        .all(|item| matches!(item, StreamItem::Data(_) | StreamItem::Parity(_))));
}

//! Tenant isolation: one tenant throwing over-budget and hostile frames
//! at the service — concurrently, from several connections — must not
//! disturb another tenant's clean traffic. The noisy tenant gets typed
//! errors; the clean tenant gets exact answers; nothing panics the
//! server. CI runs this file at `NINEC_THREADS=8` to put the engine's
//! worker pool under the wire path.
//!
//! With the `failpoints` feature the second test arms a worker-panic
//! fault inside the decode pool and asserts the same isolation: the
//! panic surfaces as a typed refusal on the triggering tenant's
//! connection, the handler thread survives, other tenants never notice.

use ninec_serve::{Client, ClientError, ServeConfig, Server, Status, TenantConfig};
use std::sync::Mutex;

/// Serialises tests that touch process-global state (`NINEC_FAILPOINT`
/// is read at every engine build).
static ENV_LOCK: Mutex<()> = Mutex::new(());

const CLEAN: &str = "0X0X00XX1111X11101X0";

fn tight_tenant(name: &str) -> TenantConfig {
    let mut config = TenantConfig::new(name);
    // Two segments max: any real multi-segment frame is over budget.
    config.limits.max_segments = 2;
    config
}

#[test]
fn over_budget_tenant_cannot_disturb_a_clean_one() {
    let _env = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut server = Server::start(ServeConfig {
        handler_threads: 8,
        max_inflight: 16,
        tenants: vec![tight_tenant("noisy")],
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // Frames built by the unlimited default tenant's compress verb:
    // a big one (many segments — over `noisy`'s budget) and a small
    // single-segment one for the clean tenant.
    let mut seeder = Client::connect(addr).expect("connect");
    let big_text = CLEAN.repeat(200);
    let big = seeder.compress(8, &big_text).expect("big frame");
    let small = seeder.compress(8, CLEAN).expect("small frame");
    // Decode is deterministic: every clean-tenant reply must equal this
    // reference bit-for-bit (don't-cares are filled, so comparing to
    // the pre-compression text would be wrong).
    let expected = seeder
        .decode(&small, ninec::Policy::Strict)
        .expect("reference decode")
        .trits;
    // A hostile non-frame: right magic, garbage after.
    let mut hostile = b"9CSF".to_vec();
    hostile.extend_from_slice(&[0xEE; 64]);

    let workers: Vec<_> = (0..4)
        .map(|lane| {
            let (big, hostile, small) = (big.clone(), hostile.clone(), small.clone());
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut noisy = Client::connect(addr).expect("noisy connects");
                noisy.hello("noisy").expect("noisy tenant exists");
                let mut clean = Client::connect(addr).expect("clean connects");

                let mut noisy_errors = 0;
                let mut clean_ok = 0;
                for round in 0..12 {
                    // The noisy tenant alternates over-budget frames and
                    // hostile bytes, under the expensive repair policy.
                    let attack = if (round + lane) % 2 == 0 {
                        &big
                    } else {
                        &hostile
                    };
                    match noisy.decode(attack, ninec::Policy::Repair) {
                        Err(ClientError::Server {
                            status: Status::Failed,
                            ..
                        }) => noisy_errors += 1,
                        Ok(_) => panic!("over-budget decode must not succeed"),
                        Err(other) => panic!("expected a typed refusal, got {other}"),
                    }
                    // The clean tenant's request interleaves on the same
                    // server and must stay exact.
                    let reply = clean
                        .decode(&small, ninec::Policy::Strict)
                        .expect("clean tenant decodes");
                    assert_eq!(reply.rung, ninec::RungKind::Strict);
                    assert_eq!(reply.trits, expected);
                    clean_ok += 1;
                }
                (noisy_errors, clean_ok)
            })
        })
        .collect();

    let mut total_errors = 0;
    let mut total_ok = 0;
    for worker in workers {
        let (errors, ok) = worker.join().expect("no worker lane panicked");
        total_errors += errors;
        total_ok += ok;
    }
    assert_eq!(total_errors, 48, "every noisy request was refused typed");
    assert_eq!(total_ok, 48, "every clean request succeeded");

    // The server survived the whole barrage.
    let mut after = Client::connect(addr).expect("still accepting");
    assert_eq!(
        after
            .decode(&small, ninec::Policy::Strict)
            .expect("still serving")
            .trits,
        expected
    );
    let stats = server.stats();
    assert!(stats.failed >= 48);
    server.shutdown();
}

/// A worker panic injected inside the decode pool stays a typed,
/// per-request failure: the panicking tenant's request fails, the
/// handler thread survives, and single-segment traffic (which never
/// reaches the armed segment index) is untouched.
#[cfg(feature = "failpoints")]
#[test]
fn injected_worker_panic_is_contained_to_the_triggering_request() {
    let _env = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut server = Server::start(ServeConfig {
        handler_threads: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // Encode both frames before arming the fault (the compress engine
    // is rebuilt per request too, and panics decode-side only — but
    // keep the test's intent unambiguous).
    let mut seeder = Client::connect(addr).expect("connect");
    let multi = seeder
        .compress(8, &CLEAN.repeat(200))
        .expect("multi-segment");
    let single = seeder.compress(8, CLEAN).expect("single-segment");
    let expected = seeder
        .decode(&single, ninec::Policy::Strict)
        .expect("reference decode")
        .trits;

    // Segment index 1 panics: only multi-segment frames ever reach it.
    // RAII cleanup so a failing assertion cannot leave the fault armed
    // for the other test in this binary.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            std::env::remove_var(ninec::engine::faultpoint::ENV);
        }
    }
    std::env::set_var(ninec::engine::faultpoint::ENV, "seg:1:panic");
    let _disarm = Disarm;

    let mut victim = Client::connect(addr).expect("victim connects");
    let mut bystander = Client::connect(addr).expect("bystander connects");
    for _ in 0..8 {
        match victim.decode(&multi, ninec::Policy::Strict) {
            Err(ClientError::Server {
                status: Status::Failed,
                message,
                ..
            }) => {
                assert!(
                    message.contains("panic"),
                    "refusal should name the panic: {message}"
                );
            }
            Ok(_) => panic!("armed fault must fail the decode"),
            Err(other) => panic!("expected a typed refusal, got {other}"),
        }
        let reply = bystander
            .decode(&single, ninec::Policy::Strict)
            .expect("single-segment traffic is untouched");
        assert_eq!(reply.trits, expected);
    }
    server.shutdown();
}

//! Per-tenant quotas: decode resource limits and request rate limiting.
//!
//! A tenant is the service's isolation unit. Each one carries its own
//! [`DecodeLimits`] (hostile or oversized frames from tenant A exhaust
//! *A's* budget, typed-erroring A's requests while B decodes on) and an
//! optional token-bucket rate limiter. Tenants are declared in a
//! TOML-subset config ([`parse_tenants`]); connections bind to one with
//! the wire `HELLO` verb and fall back to the built-in `default` tenant
//! otherwise.
//!
//! The config grammar is the narrow TOML subset the `ninec` workspace
//! can parse without a dependency — section headers and bare integer
//! assignments:
//!
//! ```text
//! [tenant.alpha]
//! max_segments = 4096
//! max_segment_trits = 65536
//! max_total_alloc = 16777216
//! max_resync_probes = 64
//! rate = 200        # requests per second (absent = unlimited)
//! burst = 20        # bucket depth (defaults to rate)
//! ```

use ninec::engine::DecodeLimits;
use ninec::session::DecodeSession;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Name of the implicit tenant unbound connections run as.
pub const DEFAULT_TENANT: &str = "default";

/// One tenant's declared quotas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant name, matched against the wire `HELLO` body.
    pub name: String,
    /// Frame-decode resource ceilings for this tenant's requests.
    pub limits: DecodeLimits,
    /// Sustained request rate per second; `None` = unlimited.
    pub rate: Option<u32>,
    /// Token-bucket depth; `0` falls back to `rate` (at least 1).
    pub burst: u32,
}

impl TenantConfig {
    /// A tenant with default limits and no rate limiting.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TenantConfig {
            name: name.to_string(),
            limits: DecodeLimits::default(),
            rate: None,
            burst: 0,
        }
    }
}

/// Typed tenant-config parse failures, with 1-based line numbers.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenantConfigError {
    /// A line that is neither a section header, an assignment, a comment
    /// nor blank.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A section header other than `[tenant.NAME]`.
    BadSection {
        /// 1-based line number.
        line: usize,
    },
    /// An assignment before any `[tenant.NAME]` header.
    KeyOutsideSection {
        /// 1-based line number.
        line: usize,
    },
    /// An assignment to a key the grammar does not know.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// A value that does not parse as an unsigned integer.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value failed.
        key: String,
    },
    /// The same tenant declared twice.
    DuplicateTenant {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The duplicated name.
        name: String,
    },
}

impl std::fmt::Display for TenantConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantConfigError::Malformed { line } => {
                write!(f, "line {line}: expected `[tenant.NAME]` or `key = value`")
            }
            TenantConfigError::BadSection { line } => {
                write!(f, "line {line}: section headers must be `[tenant.NAME]`")
            }
            TenantConfigError::KeyOutsideSection { line } => {
                write!(
                    f,
                    "line {line}: assignment before any `[tenant.NAME]` header"
                )
            }
            TenantConfigError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key `{key}`")
            }
            TenantConfigError::BadValue { line, key } => {
                write!(f, "line {line}: `{key}` needs an unsigned integer")
            }
            TenantConfigError::DuplicateTenant { line, name } => {
                write!(f, "line {line}: tenant `{name}` declared twice")
            }
        }
    }
}

impl std::error::Error for TenantConfigError {}

/// Parses the TOML-subset tenant config (see the module docs).
///
/// # Errors
///
/// [`TenantConfigError`] naming the offending line; an empty or
/// comment-only document parses to an empty list.
pub fn parse_tenants(text: &str) -> Result<Vec<TenantConfig>, TenantConfigError> {
    let mut tenants: Vec<TenantConfig> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if let Some(inner) = content.strip_prefix('[') {
            let Some(inner) = inner.strip_suffix(']') else {
                return Err(TenantConfigError::Malformed { line });
            };
            let Some(name) = inner.trim().strip_prefix("tenant.") else {
                return Err(TenantConfigError::BadSection { line });
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(TenantConfigError::BadSection { line });
            }
            if tenants.iter().any(|t| t.name == name) {
                return Err(TenantConfigError::DuplicateTenant {
                    line,
                    name: name.to_string(),
                });
            }
            tenants.push(TenantConfig::new(name));
            continue;
        }
        let Some((key, value)) = content.split_once('=') else {
            return Err(TenantConfigError::Malformed { line });
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(tenant) = tenants.last_mut() else {
            return Err(TenantConfigError::KeyOutsideSection { line });
        };
        let parsed: u64 = value.parse().map_err(|_| TenantConfigError::BadValue {
            line,
            key: key.to_string(),
        })?;
        match key {
            "max_segments" => tenant.limits.max_segments = parsed as usize,
            "max_segment_trits" => tenant.limits.max_segment_trits = parsed as usize,
            "max_total_alloc" => tenant.limits.max_total_alloc = parsed as usize,
            "max_resync_probes" => tenant.limits.max_resync_probes = parsed as usize,
            "rate" => tenant.rate = Some(parsed.min(u64::from(u32::MAX)) as u32),
            "burst" => tenant.burst = parsed.min(u64::from(u32::MAX)) as u32,
            _ => {
                return Err(TenantConfigError::UnknownKey {
                    line,
                    key: key.to_string(),
                })
            }
        }
    }
    Ok(tenants)
}

/// Token bucket: `rate` tokens/second refill, `burst` depth.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn new(rate: u32, burst: u32) -> Self {
        let burst = f64::from(burst.max(1));
        TokenBucket {
            tokens: burst,
            burst,
            rate: f64::from(rate),
            refilled: Instant::now(),
        }
    }

    fn try_take(&mut self) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A resolved tenant: its quotas plus the pre-configured
/// [`DecodeSession`] every decode request runs through.
#[derive(Debug)]
pub struct Tenant {
    config: TenantConfig,
    session: DecodeSession,
    bucket: Option<Mutex<TokenBucket>>,
}

impl Tenant {
    fn new(config: TenantConfig, decode_threads: Option<usize>) -> Self {
        let mut session = DecodeSession::new().limits(config.limits);
        if let Some(threads) = decode_threads {
            session = session.threads(threads);
        }
        let bucket = config.rate.map(|rate| {
            let burst = if config.burst == 0 {
                rate.max(1)
            } else {
                config.burst
            };
            Mutex::new(TokenBucket::new(rate, burst))
        });
        Tenant {
            config,
            session,
            bucket,
        }
    }

    /// The tenant's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The tenant's declared quotas.
    #[must_use]
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// The decode session enforcing this tenant's limits. Sessions are
    /// `&self`-reusable, so one handle serves every concurrent request.
    pub fn session(&self) -> &DecodeSession {
        &self.session
    }

    /// A clone of the tenant's session with a per-request cancel token
    /// attached — deadline-bounded requests decode through this so a
    /// tripped token aborts their ladder at the next segment boundary.
    pub fn session_with_cancel(&self, token: ninec::CancelToken) -> DecodeSession {
        self.session.clone().cancel_token(token)
    }

    /// Takes one rate-limit token; `true` when the request may proceed.
    /// Unlimited tenants always admit.
    #[must_use]
    pub fn try_admit(&self) -> bool {
        match &self.bucket {
            None => true,
            // A poisoned bucket (a panic mid-`try_take`, which holds no
            // invariants worth protecting) keeps rate limiting alive.
            Some(bucket) => bucket
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .try_take(),
        }
    }
}

/// The server's tenant table: named tenants plus the always-present
/// [`DEFAULT_TENANT`].
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: HashMap<String, Arc<Tenant>>,
}

impl TenantRegistry {
    /// Builds the registry. A config named `default` overrides the
    /// built-in unlimited default tenant; `decode_threads` (when set)
    /// pins every tenant session's worker count.
    #[must_use]
    pub fn new(configs: Vec<TenantConfig>, decode_threads: Option<usize>) -> Self {
        let mut tenants = HashMap::new();
        for config in configs {
            let name = config.name.clone();
            tenants.insert(name, Arc::new(Tenant::new(config, decode_threads)));
        }
        tenants
            .entry(DEFAULT_TENANT.to_string())
            .or_insert_with(|| {
                Arc::new(Tenant::new(
                    TenantConfig::new(DEFAULT_TENANT),
                    decode_threads,
                ))
            });
        TenantRegistry { tenants }
    }

    /// Looks a tenant up by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.get(name).cloned()
    }

    /// The tenant unbound connections run as.
    ///
    /// # Panics
    ///
    /// Never: the constructor always inserts [`DEFAULT_TENANT`].
    #[must_use]
    pub fn default_tenant(&self) -> Arc<Tenant> {
        match self.tenants.get(DEFAULT_TENANT) {
            Some(tenant) => Arc::clone(tenant),
            // Unreachable by construction; keep a live value anyway
            // rather than panicking in a request path.
            None => Arc::new(Tenant::new(TenantConfig::new(DEFAULT_TENANT), None)),
        }
    }

    /// Declared tenant names, sorted (includes `default`).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_comments_and_integers() {
        let text = "\n# fleet quotas\n[tenant.alpha]\nmax_segments = 128 # tight\nrate = 50\nburst = 5\n\n[tenant.beta]\nmax_total_alloc = 4096\n";
        let tenants = parse_tenants(text).unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].name, "alpha");
        assert_eq!(tenants[0].limits.max_segments, 128);
        assert_eq!(tenants[0].rate, Some(50));
        assert_eq!(tenants[0].burst, 5);
        assert_eq!(tenants[1].name, "beta");
        assert_eq!(tenants[1].limits.max_total_alloc, 4096);
        assert_eq!(tenants[1].rate, None);
    }

    #[test]
    fn rejections_name_the_line() {
        assert_eq!(
            parse_tenants("max_segments = 1"),
            Err(TenantConfigError::KeyOutsideSection { line: 1 })
        );
        assert_eq!(
            parse_tenants("[server.alpha]"),
            Err(TenantConfigError::BadSection { line: 1 })
        );
        assert_eq!(
            parse_tenants("[tenant.a]\nwat = 1"),
            Err(TenantConfigError::UnknownKey {
                line: 2,
                key: "wat".into()
            })
        );
        assert_eq!(
            parse_tenants("[tenant.a]\nrate = lots"),
            Err(TenantConfigError::BadValue {
                line: 2,
                key: "rate".into()
            })
        );
        assert_eq!(
            parse_tenants("[tenant.a]\n[tenant.a]"),
            Err(TenantConfigError::DuplicateTenant {
                line: 2,
                name: "a".into()
            })
        );
    }

    #[test]
    fn registry_always_has_a_default_tenant() {
        let reg = TenantRegistry::new(Vec::new(), None);
        assert!(reg.lookup(DEFAULT_TENANT).is_some());
        assert!(reg.lookup("ghost").is_none());
        assert_eq!(reg.default_tenant().name(), DEFAULT_TENANT);
    }

    #[test]
    fn token_bucket_admits_burst_then_refuses() {
        let config = TenantConfig {
            rate: Some(1),
            burst: 3,
            ..TenantConfig::new("bursty")
        };
        let tenant = Tenant::new(config, None);
        // Bucket depth = burst = 3: three immediate admits, then dry
        // (1 req/s cannot refill a whole token inside this test).
        assert!(tenant.try_admit());
        assert!(tenant.try_admit());
        assert!(tenant.try_admit());
        assert!(!tenant.try_admit());
    }

    #[test]
    fn unlimited_tenant_always_admits() {
        let tenant = Tenant::new(TenantConfig::new("free"), None);
        for _ in 0..1000 {
            assert!(tenant.try_admit());
        }
    }
}

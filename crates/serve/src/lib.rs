//! `ninec-serve` — the 9C codec as a multi-tenant network service.
//!
//! Compression research artifacts usually stop at a CLI; production DFT
//! flows want the codec *behind* something — a box that ATE bridges,
//! regression farms and tooling can throw frames at concurrently without
//! each embedding the engine. This crate is that box, built on the same
//! plan/executor data plane the library exposes:
//!
//! - [`wire`] — a length-prefixed TCP protocol (compress / decode /
//!   info / repair) whose response statuses mirror the CLI exit-code
//!   contract, with typed `Busy`/`RateLimited` refusals on top;
//! - [`tenant`] — per-tenant [`DecodeLimits`](ninec::engine::DecodeLimits)
//!   quotas and token-bucket rate limiting, so one tenant's hostile or
//!   oversized frames exhaust *its* budget while everyone else decodes
//!   on;
//! - [`server`] — thread-per-core-style acceptor + bounded handler
//!   pool with admission control and graceful degradation: under load
//!   the service sheds the expensive repair/salvage rungs (answering
//!   strict-only, flagged `degraded`) before it refuses work outright;
//! - a minimal exporter listener serving Prometheus text on `/metrics`
//!   and a Chrome trace-event document of the decode flight recorder on
//!   `/trace` (plus `/healthz` for probes);
//! - [`client`] — a blocking typed client with socket timeouts,
//!   HELLO-negotiated per-request deadlines and a [`RetryingClient`]
//!   wrapper (decorrelated-jitter backoff, retryable/non-retryable
//!   split) — also backing the `ninec client` CLI verb and the CI smoke
//!   test;
//! - [`chaos`] — a std-only fault-injection TCP proxy (delay, throttle,
//!   torn writes, blackhole) that the chaos test suite, `bench_serve`
//!   and the CI chaos smoke put in front of the server.
//!
//! Everything is `std`-only, in keeping with the workspace's
//! vendored-dependency discipline.
//!
//! ```no_run
//! use ninec_serve::{Client, ServeConfig, Server};
//!
//! let mut server = Server::start(ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let frame = client.compress(8, "0X0X00XX1111X11101X0")?;
//! let reply = client.decode(&frame, ninec::Policy::Strict)?;
//! assert_eq!(reply.trits.len(), 20);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
mod http;
pub mod server;
pub mod tenant;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosProxy};
pub use client::{Client, ClientError, ClientOptions, DecodeReply, RetryPolicy, RetryingClient};
pub use server::{Server, StatsSnapshot};
pub use tenant::{parse_tenants, Tenant, TenantConfig, TenantConfigError, TenantRegistry};
pub use wire::{Op, Response, Status, WireError};

use std::time::Duration;

/// Server configuration. [`Default`] binds ephemeral loopback ports and
/// picks conservative queueing knobs — tests and smoke runs can use it
/// unchanged and read the real ports back from the started server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Wire-protocol bind address (port `0` = ephemeral).
    pub addr: String,
    /// Whether to serve the `/metrics` + `/trace` HTTP listener.
    pub http: bool,
    /// HTTP exporter bind address (port `0` = ephemeral).
    pub http_addr: String,
    /// Handler threads consuming the connection queue.
    pub handler_threads: usize,
    /// Bounded depth of the accepted-connection queue; a full queue
    /// answers new connections with `Busy` (backpressure, not memory).
    pub queue_depth: usize,
    /// Admission window: concurrent requests allowed to decode.
    pub max_inflight: usize,
    /// When in-flight requests plus the executor's active-job tally
    /// reach this, repair/salvage requests are downgraded to strict and
    /// flagged `degraded`. `usize::MAX` (the default) never degrades.
    pub degrade_threshold: usize,
    /// Per-message size cap, both directions.
    pub max_message_bytes: usize,
    /// Engine worker threads per decode/encode (`0` = the engine
    /// default, `NINEC_THREADS` or available parallelism).
    pub decode_threads: usize,
    /// Segment size for the compress verb's encoder.
    pub segment_bits: usize,
    /// Parity geometry `(g, r)` for encoded frames; `r = 0` disables
    /// parity (v2 frames).
    pub parity: (u8, u8),
    /// Total per-message read budget on wire connections: an idle
    /// connection — or one trickling bytes slow-loris style — is dropped
    /// once a single request has taken this long to arrive. (Enforced as
    /// a shrinking per-read socket timeout, so trickled bytes cannot
    /// reset it.)
    pub read_timeout: Option<Duration>,
    /// Per-read socket timeout on the HTTP exporter listener.
    pub http_read_timeout: Duration,
    /// Server-side ceiling on any single request's decode time. The
    /// effective deadline is `min(client deadline, max_request_time)`;
    /// work past it is cancelled at the next segment boundary and
    /// answered [`Status::DeadlineExceeded`]. `None` never expires.
    pub max_request_time: Option<Duration>,
    /// Tenant declarations (see [`tenant::parse_tenants`]); the
    /// unlimited `default` tenant always exists in addition.
    pub tenants: Vec<TenantConfig>,
    /// Path of a `9CA` archive to host for
    /// [`Op::ArchiveRange`](wire::Op::ArchiveRange) random-access range
    /// decodes. Opened (and its epoch index validated) at startup;
    /// `None` answers the verb with `BadRequest`.
    pub archive: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            http: true,
            http_addr: "127.0.0.1:0".to_string(),
            handler_threads: 4,
            queue_depth: 16,
            max_inflight: 8,
            degrade_threshold: usize::MAX,
            max_message_bytes: wire::DEFAULT_MAX_MESSAGE_BYTES,
            decode_threads: 0,
            segment_bits: 256,
            parity: (4, 1),
            read_timeout: Some(Duration::from_secs(60)),
            http_read_timeout: Duration::from_secs(5),
            max_request_time: Some(Duration::from_secs(60)),
            tenants: Vec::new(),
            archive: None,
        }
    }
}

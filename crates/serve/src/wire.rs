//! Length-prefixed request/response framing for the codec service.
//!
//! Every message is `[u32 le length][payload]` where `length` counts the
//! payload bytes that follow the prefix. A request payload is
//! `[op u8][body]`; a response payload is `[status u8][flags u8][body]`.
//! The frame length is capped ([`DEFAULT_MAX_MESSAGE_BYTES`], overridable
//! per reader) so a hostile peer cannot make either side allocate
//! unboundedly off a four-byte header — the same discipline
//! [`DecodeLimits`](ninec::engine::DecodeLimits) applies to `9CSF` frame
//! headers, applied one layer down.
//!
//! Response statuses deliberately mirror the CLI exit-code contract
//! (`0` ok / `2` bad request / `3` failed / `4` io / `5` partial
//! recovery) so a thin client can `exit(status)` and scripts observe the
//! same numbers either way; `6` (busy), `7` (rate limited) and `8`
//! (deadline exceeded) extend the contract with outcomes that only exist
//! over the wire.
//!
//! ## Per-request deadlines (HELLO-negotiated)
//!
//! A client that wants deadline propagation appends capability tokens to
//! its `HELLO` body: `tenant_name deadline` (whitespace-separated). A
//! server that supports the capability echoes `caps deadline` in its
//! greeting; from then on, every **non-HELLO** request body on that
//! connection is prefixed with `[deadline_ms u32 le]` (`0` = none), and
//! the server decodes under `min(client deadline, max_request_time)`.
//! Old clients send a bare tenant name and are byte-for-byte unaffected.

use std::io::{Read, Write};

/// Default per-message size cap, request and response alike (64 MiB).
pub const DEFAULT_MAX_MESSAGE_BYTES: usize = 64 << 20;

/// Wire protocol revision, exchanged in the `HELLO` greeting.
pub const PROTOCOL_VERSION: u8 = 1;

/// Response flag bit: the server answered in degraded (strict-only) mode.
pub const FLAG_DEGRADED: u8 = 0b0000_0001;

/// `HELLO` capability token requesting per-request deadline prefixes.
pub const CAP_DEADLINE: &str = "deadline";

/// Splits a deadline-capable request body into `(deadline_ms, rest)`.
/// Only called on connections that negotiated [`CAP_DEADLINE`]; a body
/// shorter than the 4-byte prefix is `None` (malformed).
#[must_use]
pub fn split_deadline(body: &[u8]) -> Option<(u32, &[u8])> {
    if body.len() < 4 {
        return None;
    }
    let ms = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    Some((ms, &body[4..]))
}

/// Request verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Bind the connection to a tenant: body = tenant name (UTF-8).
    Hello = 1,
    /// Encode a trit stream: body = `[k u16 le][trit text]`, response
    /// body = `9CSF` frame bytes.
    Compress = 2,
    /// Decode a `9CSF` frame: body = `[policy u8][frame bytes]`,
    /// response body = `[rung u8][damaged u32 le][trit text]`.
    Decode = 3,
    /// Summarise a frame without decoding payloads: body = frame bytes,
    /// response body = human-readable text.
    Info = 4,
    /// Sugar for [`Op::Decode`] with the repair policy: body = frame
    /// bytes, same response body as decode.
    Repair = 5,
    /// Random-access decode of a trit range from the server's hosted
    /// `9CA` archive: body = `[frame u32 le][start u64 le][len u64 le]`
    /// (see [`encode_archive_range`]), response body = trit text. Only
    /// the referenced segments are read and decoded — the point of the
    /// archive's seek index, carried over the wire.
    ArchiveRange = 6,
}

impl Op {
    /// Parses a request opcode byte.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(Op::Hello),
            2 => Some(Op::Compress),
            3 => Some(Op::Decode),
            4 => Some(Op::Info),
            5 => Some(Op::Repair),
            6 => Some(Op::ArchiveRange),
            _ => None,
        }
    }
}

/// Builds an [`Op::ArchiveRange`] body: frame index, then the trit
/// range's start and length, all little-endian.
#[must_use]
pub fn encode_archive_range(frame: u32, start: u64, len: u64) -> [u8; 20] {
    let mut body = [0u8; 20];
    body[..4].copy_from_slice(&frame.to_le_bytes());
    body[4..12].copy_from_slice(&start.to_le_bytes());
    body[12..].copy_from_slice(&len.to_le_bytes());
    body
}

/// Inverse of [`encode_archive_range`]; `None` for a body that is not
/// exactly the 20-byte coordinate triple.
#[must_use]
pub fn split_archive_range(body: &[u8]) -> Option<(u32, u64, u64)> {
    let coords: &[u8; 20] = body.try_into().ok()?;
    let frame = u32::from_le_bytes([coords[0], coords[1], coords[2], coords[3]]);
    let mut start = [0u8; 8];
    start.copy_from_slice(&coords[4..12]);
    let mut len = [0u8; 8];
    len.copy_from_slice(&coords[12..]);
    Some((frame, u64::from_le_bytes(start), u64::from_le_bytes(len)))
}

/// Response statuses. `Ok`/`BadRequest`/`Failed`/`Io`/`Partial` carry the
/// same numbers as the CLI exit-code contract; `Busy` and `RateLimited`
/// are the service's two load-shedding refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request succeeded; body is the verb's payload.
    Ok = 0,
    /// The request itself was malformed (unknown tenant, bad policy
    /// byte, unparseable trit text). Mirrors CLI exit code 2.
    BadRequest = 2,
    /// The operation ran and failed (typed codec error); body is the
    /// error text. Mirrors CLI exit code 3.
    Failed = 3,
    /// An I/O-level problem on the server side. Mirrors CLI exit code 4.
    Io = 4,
    /// Decode succeeded lossily (salvage erased damage to `X`); body is
    /// the normal decode payload. Mirrors CLI exit code 5.
    Partial = 5,
    /// Load shed: the server refused the work before starting it.
    /// Retry later — nothing was decoded.
    Busy = 6,
    /// The tenant's token bucket is empty. Retry after a pause.
    RateLimited = 7,
    /// The request's deadline (client-sent or the server's
    /// `max_request_time`) passed before the decode finished; in-flight
    /// work was cancelled at the next segment boundary.
    DeadlineExceeded = 8,
}

impl Status {
    /// Parses a response status byte.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Status::Ok),
            2 => Some(Status::BadRequest),
            3 => Some(Status::Failed),
            4 => Some(Status::Io),
            5 => Some(Status::Partial),
            6 => Some(Status::Busy),
            7 => Some(Status::RateLimited),
            8 => Some(Status::DeadlineExceeded),
            _ => None,
        }
    }

    /// `true` for the two statuses that deliver a decode payload
    /// ([`Status::Ok`] and [`Status::Partial`]).
    #[must_use]
    pub fn carries_payload(self) -> bool {
        matches!(self, Status::Ok | Status::Partial)
    }
}

/// Decode policy bytes carried in [`Op::Decode`] bodies.
#[must_use]
pub fn policy_to_byte(policy: ninec::Policy) -> u8 {
    match policy {
        ninec::Policy::Strict => 0,
        ninec::Policy::Repair => 1,
        ninec::Policy::Salvage => 2,
        // `Policy` is non-exhaustive; unknown future rungs degrade to
        // strict, the fail-closed end of the ladder.
        _ => 0,
    }
}

/// Inverse of [`policy_to_byte`]; `None` for bytes no rung answers to.
#[must_use]
pub fn policy_from_byte(byte: u8) -> Option<ninec::Policy> {
    match byte {
        0 => Some(ninec::Policy::Strict),
        1 => Some(ninec::Policy::Repair),
        2 => Some(ninec::Policy::Salvage),
        _ => None,
    }
}

/// Ladder-rung bytes carried in decode response bodies.
#[must_use]
pub fn rung_to_byte(rung: ninec::RungKind) -> u8 {
    match rung {
        ninec::RungKind::None => 0,
        ninec::RungKind::Strict => 1,
        ninec::RungKind::Repaired => 2,
        ninec::RungKind::Salvaged => 3,
    }
}

/// Inverse of [`rung_to_byte`]; `None` for unknown bytes.
#[must_use]
pub fn rung_from_byte(byte: u8) -> Option<ninec::RungKind> {
    match byte {
        0 => Some(ninec::RungKind::None),
        1 => Some(ninec::RungKind::Strict),
        2 => Some(ninec::RungKind::Repaired),
        3 => Some(ninec::RungKind::Salvaged),
        _ => None,
    }
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The outcome class (mirrors the CLI exit-code contract).
    pub status: Status,
    /// Raw flag byte; see [`FLAG_DEGRADED`].
    pub flags: u8,
    /// Verb-specific payload, or UTF-8 error text on failure statuses.
    pub body: Vec<u8>,
}

impl Response {
    /// `true` when the server answered in degraded (strict-only) mode.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.flags & FLAG_DEGRADED != 0
    }

    /// The body as UTF-8 text (lossy), for error statuses and `INFO`.
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Typed framing failures, split the same way the `9CSF` byte parser
/// splits them: transport errors, torn frames, cap violations and
/// out-of-grammar bytes each get their own variant.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer closed mid-message (a clean close *between* messages is
    /// not an error — see [`read_request`]).
    Truncated,
    /// The length prefix claims more than the configured cap.
    TooLarge {
        /// Claimed payload length.
        claimed: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// A zero-length payload (every message carries at least an opcode
    /// or a status byte).
    Empty,
    /// Unknown request opcode.
    UnknownOp(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Truncated => write!(f, "peer closed the connection mid-message"),
            WireError::TooLarge { claimed, max } => {
                write!(f, "message claims {claimed} bytes, cap is {max}")
            }
            WireError::Empty => write!(f, "zero-length message"),
            WireError::UnknownOp(b) => write!(f, "unknown request opcode {b}"),
            WireError::UnknownStatus(b) => write!(f, "unknown response status {b}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Reads exactly `buf.len()` bytes; maps a mid-read EOF to
/// [`WireError::Truncated`].
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })
}

/// Reads one length prefix + payload, enforcing `max` payload bytes.
/// Returns `None` on a clean EOF *before* the first prefix byte — the
/// peer hung up between messages, which is how every conversation ends.
fn read_message(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Err(WireError::Empty);
    }
    if len > max {
        return Err(WireError::TooLarge { claimed: len, max });
    }
    let mut payload = vec![0u8; len];
    read_exact(r, &mut payload)?;
    Ok(Some(payload))
}

/// Writes one length prefix + payload (`parts` concatenated).
fn write_message(w: &mut impl Write, parts: &[&[u8]]) -> std::io::Result<()> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    let len = u32::try_from(len).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "message exceeds u32 length",
        )
    })?;
    w.write_all(&len.to_le_bytes())?;
    for part in parts {
        w.write_all(part)?;
    }
    w.flush()
}

/// Writes one request frame.
///
/// # Errors
///
/// Propagates socket errors; fails without writing when `body` exceeds
/// the `u32` length prefix.
pub fn write_request(w: &mut impl Write, op: Op, body: &[u8]) -> std::io::Result<()> {
    write_message(w, &[&[op as u8], body])
}

/// Reads one request frame. `Ok(None)` means the peer closed cleanly
/// between messages.
///
/// # Errors
///
/// [`WireError`] on socket failure, a torn/oversized/empty frame, or an
/// unknown opcode.
pub fn read_request(r: &mut impl Read, max: usize) -> Result<Option<(Op, Vec<u8>)>, WireError> {
    let Some(payload) = read_message(r, max)? else {
        return Ok(None);
    };
    let op = Op::from_byte(payload[0]).ok_or(WireError::UnknownOp(payload[0]))?;
    Ok(Some((op, payload[1..].to_vec())))
}

/// Writes one response frame.
///
/// # Errors
///
/// Propagates socket errors; fails without writing when `body` exceeds
/// the `u32` length prefix.
pub fn write_response(
    w: &mut impl Write,
    status: Status,
    flags: u8,
    body: &[u8],
) -> std::io::Result<()> {
    write_message(w, &[&[status as u8, flags], body])
}

/// Reads one response frame. `Ok(None)` means the server closed cleanly.
///
/// # Errors
///
/// [`WireError`] on socket failure, a torn/oversized/empty frame, or an
/// unknown status byte.
pub fn read_response(r: &mut impl Read, max: usize) -> Result<Option<Response>, WireError> {
    let Some(payload) = read_message(r, max)? else {
        return Ok(None);
    };
    let status = Status::from_byte(payload[0]).ok_or(WireError::UnknownStatus(payload[0]))?;
    let flags = if payload.len() > 1 { payload[1] } else { 0 };
    let body = if payload.len() > 2 {
        payload[2..].to_vec()
    } else {
        Vec::new()
    };
    Ok(Some(Response {
        status,
        flags,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_a_buffer() {
        let mut buf = Vec::new();
        write_request(&mut buf, Op::Decode, b"payload").unwrap();
        let (op, body) = read_request(&mut buf.as_slice(), DEFAULT_MAX_MESSAGE_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(op, Op::Decode);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn response_roundtrips_and_reports_flags() {
        let mut buf = Vec::new();
        write_response(&mut buf, Status::Partial, FLAG_DEGRADED, b"text").unwrap();
        let resp = read_response(&mut buf.as_slice(), DEFAULT_MAX_MESSAGE_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, Status::Partial);
        assert!(resp.degraded());
        assert_eq!(resp.text(), "text");
    }

    #[test]
    fn clean_eof_is_none_torn_prefix_is_truncated() {
        let empty: &[u8] = &[];
        assert!(matches!(read_request(&mut { empty }, 1024), Ok(None)));
        let torn: &[u8] = &[7, 0]; // half a length prefix
        assert!(matches!(
            read_request(&mut { torn }, 1024),
            Err(WireError::Truncated)
        ));
        let body_cut: &[u8] = &[5, 0, 0, 0, 3]; // claims 5, delivers 1
        assert!(matches!(
            read_request(&mut { body_cut }, 1024),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn length_bomb_is_rejected_before_allocating() {
        let bomb: &[u8] = &[0xFF, 0xFF, 0xFF, 0x7F, 0];
        assert!(matches!(
            read_request(&mut { bomb }, 1024),
            Err(WireError::TooLarge { claimed, max: 1024 }) if claimed == 0x7FFF_FFFF
        ));
    }

    #[test]
    fn zero_length_and_unknown_bytes_are_typed() {
        let empty_msg: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(
            read_request(&mut { empty_msg }, 1024),
            Err(WireError::Empty)
        ));
        let bad_op: &[u8] = &[1, 0, 0, 0, 99];
        assert!(matches!(
            read_request(&mut { bad_op }, 1024),
            Err(WireError::UnknownOp(99))
        ));
        let bad_status: &[u8] = &[1, 0, 0, 0, 99];
        assert!(matches!(
            read_response(&mut { bad_status }, 1024),
            Err(WireError::UnknownStatus(99))
        ));
    }

    #[test]
    fn policy_and_rung_bytes_roundtrip() {
        for policy in [
            ninec::Policy::Strict,
            ninec::Policy::Repair,
            ninec::Policy::Salvage,
        ] {
            assert_eq!(policy_from_byte(policy_to_byte(policy)), Some(policy));
        }
        assert_eq!(policy_from_byte(9), None);
        for rung in [
            ninec::RungKind::None,
            ninec::RungKind::Strict,
            ninec::RungKind::Repaired,
            ninec::RungKind::Salvaged,
        ] {
            assert_eq!(rung_from_byte(rung_to_byte(rung)), Some(rung));
        }
        assert_eq!(rung_from_byte(9), None);
    }

    #[test]
    fn statuses_mirror_the_cli_exit_codes() {
        assert_eq!(Status::Ok as u8, 0);
        assert_eq!(Status::BadRequest as u8, 2);
        assert_eq!(Status::Failed as u8, 3);
        assert_eq!(Status::Io as u8, 4);
        assert_eq!(Status::Partial as u8, 5);
        assert_eq!(Status::Busy as u8, 6);
        assert_eq!(Status::RateLimited as u8, 7);
        assert_eq!(Status::DeadlineExceeded as u8, 8);
        assert_eq!(Status::from_byte(8), Some(Status::DeadlineExceeded));
        assert!(!Status::DeadlineExceeded.carries_payload());
    }

    #[test]
    fn archive_range_coordinates_roundtrip() {
        let body = encode_archive_range(7, 1 << 40, 96);
        assert_eq!(split_archive_range(&body), Some((7, 1 << 40, 96)));
        assert_eq!(split_archive_range(&body[..19]), None);
        assert_eq!(split_archive_range(&[0u8; 21]), None);
        assert_eq!(Op::from_byte(6), Some(Op::ArchiveRange));
    }

    #[test]
    fn deadline_prefix_splits_and_rejects_short_bodies() {
        let mut body = 1500u32.to_le_bytes().to_vec();
        body.extend_from_slice(b"frame");
        assert_eq!(split_deadline(&body), Some((1500, &b"frame"[..])));
        assert_eq!(split_deadline(&0u32.to_le_bytes()), Some((0, &[][..])));
        assert_eq!(split_deadline(&[1, 2, 3]), None);
    }
}

//! The TCP codec service: acceptor, handler pool, admission control and
//! graceful degradation.
//!
//! # Architecture
//!
//! One acceptor thread owns the listener and feeds accepted connections
//! into a **bounded** queue consumed by a fixed pool of handler threads.
//! Nothing in the path buffers unboundedly: when the queue is full the
//! acceptor answers the new connection with a typed [`Status::Busy`]
//! frame and closes it — backpressure is a wire message, not a growing
//! `Vec`. The decode work itself runs on the engine's prioritized
//! executor (decode jobs land on the high-priority lane; parity repair
//! and salvage scans ride the low-priority lane), so the server adds
//! queuing *policy* on top of the existing data plane rather than a
//! second thread pool per request.
//!
//! # Admission and degradation
//!
//! Three gates run before any bytes are decoded, cheapest first:
//!
//! 1. **Rate limit** — the tenant's token bucket
//!    ([`Tenant::try_admit`]) refuses with [`Status::RateLimited`].
//! 2. **Admission window** — at most
//!    [`max_inflight`](ServeConfig::max_inflight) requests decode at
//!    once; the rest refuse with [`Status::Busy`].
//! 3. **Degradation** — when in-flight requests plus the executor's
//!    [`active_jobs`](ninec::engine::active_jobs) tally reach
//!    [`degrade_threshold`](ServeConfig::degrade_threshold), the server
//!    sheds optional work instead of refusing: repair/salvage decodes
//!    downgrade to strict-only (the cheap rung), the response carries
//!    [`FLAG_DEGRADED`](crate::wire::FLAG_DEGRADED), and the `shed`
//!    counter ticks. Clients see exact answers or typed errors either
//!    way — degradation never silently changes a payload, it only
//!    refuses to climb the expensive ladder rungs.

use crate::tenant::{Tenant, TenantRegistry};
use crate::wire::{self, Op, Status};
use crate::{http, ServeConfig};
use ninec::engine::{active_jobs, Archive, ArchiveError};
use ninec::{CancelToken, SharedEngine};
use ninec_testdata::trit::TritVec;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Point-in-time counters from [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Connections accepted (including ones refused with `Busy`).
    pub connections: u64,
    /// Requests read off the wire.
    pub requests: u64,
    /// Requests answered [`Status::Ok`].
    pub ok: u64,
    /// Connections or requests refused with [`Status::Busy`].
    pub busy: u64,
    /// Repair/salvage requests downgraded to strict by degraded mode.
    pub shed: u64,
    /// Requests refused with [`Status::RateLimited`].
    pub rate_limited: u64,
    /// Requests answered [`Status::Partial`] (lossy salvage).
    pub partial: u64,
    /// Requests answered [`Status::Failed`] or [`Status::BadRequest`].
    pub failed: u64,
    /// Requests answered [`Status::DeadlineExceeded`] — the effective
    /// deadline (`min(client deadline, max_request_time)`) tripped the
    /// request's cancel token before the decode finished.
    pub deadline_exceeded: u64,
}

/// Internal atomic counters, mirrored into the `ninec.serve.*`
/// observability namespace as they tick.
#[derive(Debug, Default)]
pub(crate) struct Stats {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    busy: AtomicU64,
    shed: AtomicU64,
    rate_limited: AtomicU64,
    partial: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
}

impl Stats {
    fn tick(field: &AtomicU64, metric: &str) {
        field.fetch_add(1, Ordering::Relaxed);
        ninec_obs::counter(metric).add(1);
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            partial: self.partial.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
        }
    }
}

/// Everything a handler thread needs, shared behind one `Arc`.
struct Shared {
    config: ServeConfig,
    engine: SharedEngine,
    tenants: TenantRegistry,
    stats: Stats,
    inflight: AtomicUsize,
    stop: Arc<AtomicBool>,
    conns: ConnTable,
    /// The hosted `9CA` archive for `ARCHIVE_RANGE`, opened (epoch index
    /// validated) at startup. Range decodes take `&self`, so handler
    /// threads share it without locking.
    archive: Option<Archive>,
}

/// Live-connection table: shutdown cancels every connection's token
/// (aborting in-flight decodes at the next segment boundary) and closes
/// every registered socket so handler threads blocked in a read return
/// immediately instead of waiting out the read timeout.
#[derive(Default)]
struct ConnTable {
    next: AtomicUsize,
    map: Mutex<std::collections::HashMap<usize, (TcpStream, CancelToken)>>,
}

impl ConnTable {
    /// Registers a clone of `stream` plus the connection's cancel token;
    /// `None` when cloning fails (the connection is still served, it
    /// just cannot be force-closed).
    fn register(&self, stream: &TcpStream, token: &CancelToken) -> Option<usize> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, (clone, token.clone()));
        Some(id)
    }

    fn deregister(&self, id: usize) {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&id);
    }

    fn shutdown_all(&self) {
        let map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (stream, token) in map.values() {
            token.cancel();
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Enforces the **total** per-message read budget
/// ([`ServeConfig::read_timeout`]): before every `read` the socket
/// timeout is shrunk to whatever remains of the budget, so a slow-loris
/// peer trickling one byte per poll cannot reset the clock — the whole
/// request must arrive within the budget or the read errors out and the
/// connection is dropped. A fresh reader is built per message, so the
/// budget also reaps connections that go idle between requests.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    budget: Option<Duration>,
    started: Option<Instant>,
}

impl<'a> DeadlineReader<'a> {
    fn new(stream: &'a TcpStream, budget: Option<Duration>) -> Self {
        DeadlineReader {
            stream,
            budget,
            started: None,
        }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(budget) = self.budget {
            let started = *self.started.get_or_insert_with(Instant::now);
            let Some(remaining) = budget
                .checked_sub(started.elapsed())
                .filter(|d| !d.is_zero())
            else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "per-message read budget exhausted",
                ));
            };
            let _ = self.stream.set_read_timeout(Some(remaining));
        }
        (&mut &*self.stream).read(buf)
    }
}

impl Shared {
    /// `true` while the load picture says to shed the optional rungs.
    fn degraded(&self) -> bool {
        self.inflight
            .load(Ordering::Relaxed)
            .saturating_add(active_jobs())
            >= self.config.degrade_threshold
    }
}

/// RAII admission-window slot: holds one `inflight` unit.
struct InflightSlot<'a>(&'a AtomicUsize);

impl<'a> InflightSlot<'a> {
    /// Takes a slot unless the window is full.
    fn acquire(window: &'a AtomicUsize, max: usize) -> Option<Self> {
        let prior = window.fetch_add(1, Ordering::AcqRel);
        if prior >= max {
            window.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(InflightSlot(window))
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running codec service. Dropping the handle calls
/// [`shutdown`](Server::shutdown).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners and starts the acceptor + handler pool.
    ///
    /// Bind to port `0` for an ephemeral port and read the real one back
    /// from [`addr`](Server::addr) — that is how every test and the CI
    /// smoke run avoid port collisions.
    ///
    /// # Errors
    ///
    /// Socket bind failures only; a bad tenant config is rejected
    /// earlier, by [`parse_tenants`](crate::tenant::parse_tenants).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let http_listener = if config.http {
            let l = TcpListener::bind(&config.http_addr)?;
            Some(l)
        } else {
            None
        };
        let http_addr = match &http_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        // `decode_threads = 0` defers to the engine default
        // (`NINEC_THREADS`, else available parallelism).
        let threads = (config.decode_threads > 0).then_some(config.decode_threads);
        let mut builder = ninec::Engine::builder()
            .segment_bits(config.segment_bits)
            .parity(config.parity.0, config.parity.1);
        if let Some(threads) = threads {
            builder = builder.threads(threads);
        }
        let engine = builder.build_shared();
        // Open the hosted archive before accepting anything: a corrupt
        // or bombed epoch index refuses startup with a typed error
        // rather than failing every range request later.
        let archive = match &config.archive {
            Some(path) => Some(Archive::open(path, &engine).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path}: {e}"))
            })?),
            None => None,
        };
        let tenants = TenantRegistry::new(config.tenants.clone(), threads);
        let shared = Arc::new(Shared {
            config,
            engine,
            tenants,
            stats: Stats::default(),
            inflight: AtomicUsize::new(0),
            stop: Arc::new(AtomicBool::new(false)),
            conns: ConnTable::default(),
            archive,
        });

        let queue = shared.config.queue_depth.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue);
        let rx = Arc::new(Mutex::new(rx));

        let mut handlers = Vec::new();
        for worker in 0..shared.config.handler_threads.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("ninec-serve-h{worker}"))
                    .spawn(move || handler_loop(&shared, &rx))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ninec-serve-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener, &tx))?
        };
        let http = match http_listener {
            Some(listener) => Some(http::spawn(
                listener,
                Arc::clone(&shared.stop),
                shared.config.http_read_timeout,
            )?),
            None => None,
        };

        Ok(Server {
            shared,
            addr,
            http_addr,
            acceptor: Some(acceptor),
            handlers,
            http,
        })
    }

    /// The bound wire-protocol address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` + `/trace` HTTP address, when enabled.
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// A point-in-time copy of the service counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops accepting, drains the handler pool and joins every thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Force-close live connections so handlers blocked mid-read
        // return now rather than after the read timeout, then unblock
        // `accept` with a throwaway connection; ignore failures (the
        // listener may already be gone).
        self.shared.conns.shutdown_all();
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // The acceptor owned the queue sender; with it gone the handler
        // pool drains whatever was queued and exits on the disconnect.
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(handle) = self.http.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Acceptor: accept, count, enqueue — or refuse with `Busy` when the
/// bounded queue is full.
fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        Stats::tick(&shared.stats.connections, "ninec.serve.connections");
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                Stats::tick(&shared.stats.busy, "ninec.serve.busy");
                let _ = wire::write_response(
                    &mut stream,
                    Status::Busy,
                    0,
                    b"connection queue full; retry later",
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Handler: pull connections off the queue until the acceptor hangs up.
fn handler_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => break,
        }
    }
}

/// One connection's request loop.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // Per-connection cancel token: tripped by shutdown (via the conn
    // table) or a writer-side error (the peer is gone — no point
    // finishing its decode), reclaiming workers at the next segment
    // boundary.
    let conn_token = CancelToken::new();
    // RAII table entry so shutdown can cancel + force-close this
    // connection.
    struct ConnGuard<'a>(&'a ConnTable, Option<usize>);
    impl Drop for ConnGuard<'_> {
        fn drop(&mut self) {
            if let Some(id) = self.1 {
                self.0.deregister(id);
            }
        }
    }
    let _conn = ConnGuard(&shared.conns, shared.conns.register(&stream, &conn_token));
    let mut tenant = shared.tenants.default_tenant();
    // Whether the HELLO negotiated the `deadline` capability; once set,
    // every non-HELLO body carries a `[deadline_ms u32 le]` prefix.
    let mut deadlines = false;
    let max = shared.config.max_message_bytes;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let mut reader = DeadlineReader::new(&stream, shared.config.read_timeout);
        let (op, body) = match wire::read_request(&mut reader, max) {
            Ok(Some(message)) => message,
            // Clean close, torn frame, timeout, or protocol garbage: a
            // best-effort typed refusal, then hang up either way.
            Ok(None) => return,
            Err(wire::WireError::Io(_)) | Err(wire::WireError::Truncated) => return,
            Err(e) => {
                let _ = wire::write_response(
                    &mut stream,
                    Status::BadRequest,
                    0,
                    e.to_string().as_bytes(),
                );
                return;
            }
        };
        Stats::tick(&shared.stats.requests, "ninec.serve.requests");

        // HELLO re-binds the connection's tenant and negotiates
        // capabilities; it skips admission (no codec work).
        if op == Op::Hello {
            let text = String::from_utf8_lossy(&body);
            let mut words = text.split_whitespace();
            let name = words.next().unwrap_or_default();
            let wants_deadline = words.any(|cap| cap == wire::CAP_DEADLINE);
            let (status, reply) = match shared.tenants.lookup(name) {
                Some(found) => {
                    tenant = found;
                    deadlines = wants_deadline;
                    let mut greeting = format!(
                        "ninec-serve/{} proto {} tenant {}",
                        env!("CARGO_PKG_VERSION"),
                        wire::PROTOCOL_VERSION,
                        tenant.name()
                    );
                    if deadlines {
                        greeting.push_str(" caps ");
                        greeting.push_str(wire::CAP_DEADLINE);
                    }
                    (Status::Ok, greeting)
                }
                None => {
                    Stats::tick(&shared.stats.failed, "ninec.serve.failed");
                    (Status::BadRequest, format!("unknown tenant `{name}`"))
                }
            };
            if status == Status::Ok {
                Stats::tick(&shared.stats.ok, "ninec.serve.ok");
            }
            if wire::write_response(&mut stream, status, 0, reply.as_bytes()).is_err() {
                conn_token.cancel();
                return;
            }
            continue;
        }

        // On negotiated connections every non-HELLO body is prefixed
        // with the request's deadline budget (0 = none).
        let (client_ms, body) = if deadlines {
            match wire::split_deadline(&body) {
                Some((ms, rest)) => (ms, rest),
                None => {
                    let _ = wire::write_response(
                        &mut stream,
                        Status::BadRequest,
                        0,
                        b"missing [deadline_ms u32] prefix on negotiated connection",
                    );
                    return;
                }
            }
        } else {
            (0, &body[..])
        };
        let client_budget = (client_ms > 0).then(|| Duration::from_millis(u64::from(client_ms)));
        let budget = match (client_budget, shared.config.max_request_time) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (one, other) => one.or(other),
        };
        let cancel = conn_token.child_with_deadline(budget.map(|d| Instant::now() + d));

        let (status, flags, reply) = admit_and_dispatch(shared, &tenant, op, body, &cancel);
        match status {
            Status::Ok => Stats::tick(&shared.stats.ok, "ninec.serve.ok"),
            Status::Partial => Stats::tick(&shared.stats.partial, "ninec.serve.partial"),
            Status::Busy => Stats::tick(&shared.stats.busy, "ninec.serve.busy"),
            Status::RateLimited => {
                Stats::tick(&shared.stats.rate_limited, "ninec.serve.rate_limited");
            }
            Status::DeadlineExceeded => {
                Stats::tick(
                    &shared.stats.deadline_exceeded,
                    "ninec.serve.deadline_exceeded",
                );
            }
            _ => Stats::tick(&shared.stats.failed, "ninec.serve.failed"),
        }
        if wire::write_response(&mut stream, status, flags, &reply).is_err() {
            conn_token.cancel();
            return;
        }
        let _ = stream.flush();
    }
}

/// The three admission gates, then the verb dispatch — wrapped in
/// `catch_unwind` so a handler bug (or an armed fail point that slips
/// past the executor's own panic boundary) degrades to a typed `Failed`
/// response instead of killing the handler thread other tenants share.
fn admit_and_dispatch(
    shared: &Shared,
    tenant: &Arc<Tenant>,
    op: Op,
    body: &[u8],
    cancel: &CancelToken,
) -> (Status, u8, Vec<u8>) {
    if !tenant.try_admit() {
        return (
            Status::RateLimited,
            0,
            format!("tenant `{}` is over its request rate", tenant.name()).into_bytes(),
        );
    }
    let Some(_slot) = InflightSlot::acquire(&shared.inflight, shared.config.max_inflight) else {
        return (
            Status::Busy,
            0,
            b"admission window full; retry later".to_vec(),
        );
    };
    let degraded = shared.degraded();
    let flags = if degraded { wire::FLAG_DEGRADED } else { 0 };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dispatch(shared, tenant, op, body, degraded, cancel)
    }));
    match outcome {
        Ok((status, body)) => (status, flags, body),
        Err(_) => (
            Status::Failed,
            flags,
            b"internal error: request handler panicked".to_vec(),
        ),
    }
}

/// Verb dispatch. Every branch returns a typed status — hostile bodies
/// become `BadRequest`/`Failed`, never a panic.
fn dispatch(
    shared: &Shared,
    tenant: &Arc<Tenant>,
    op: Op,
    body: &[u8],
    degraded: bool,
    cancel: &CancelToken,
) -> (Status, Vec<u8>) {
    match op {
        Op::Hello => (Status::BadRequest, b"hello handled upstream".to_vec()),
        Op::Compress => compress(shared, body),
        Op::Decode => {
            let Some((&policy_byte, frame)) = body.split_first() else {
                return (Status::BadRequest, b"empty decode body".to_vec());
            };
            let Some(policy) = wire::policy_from_byte(policy_byte) else {
                return (
                    Status::BadRequest,
                    format!("unknown policy byte {policy_byte}").into_bytes(),
                );
            };
            decode(shared, tenant, frame, policy, degraded, cancel)
        }
        Op::Repair => decode(
            shared,
            tenant,
            body,
            ninec::Policy::Repair,
            degraded,
            cancel,
        ),
        Op::Info => info(tenant, body),
        Op::ArchiveRange => archive_range(shared, body),
    }
}

/// `ARCHIVE_RANGE`: `[frame u32][start u64][len u64]` → trit text from
/// the hosted archive, reading only the segments the range touches. Bad
/// coordinates are the client's fault (`BadRequest`); rot and decode
/// failures are the archive's (`Failed`); the store going unreadable
/// underneath us is `Io`.
fn archive_range(shared: &Shared, body: &[u8]) -> (Status, Vec<u8>) {
    let Some(archive) = shared.archive.as_ref() else {
        return (
            Status::BadRequest,
            b"no archive hosted (start the server with an archive path)".to_vec(),
        );
    };
    let Some((frame, start, len)) = wire::split_archive_range(body) else {
        return (
            Status::BadRequest,
            b"archive-range body needs [frame u32][start u64][len u64]".to_vec(),
        );
    };
    let (Ok(start), Ok(len)) = (usize::try_from(start), usize::try_from(len)) else {
        return (
            Status::BadRequest,
            b"range does not fit this server's address space".to_vec(),
        );
    };
    match archive.decode_range(frame as usize, start, len) {
        Ok(trits) => (Status::Ok, trits.to_string().into_bytes()),
        Err(e @ (ArchiveError::FrameOutOfRange { .. } | ArchiveError::RangeOutOfBounds { .. })) => {
            (Status::BadRequest, e.to_string().into_bytes())
        }
        Err(ArchiveError::Io { what, source }) => {
            (Status::Io, format!("{what}: {source}").into_bytes())
        }
        Err(e) => (Status::Failed, e.to_string().into_bytes()),
    }
}

/// `COMPRESS`: `[k u16 le][trit text]` → frame bytes.
fn compress(shared: &Shared, body: &[u8]) -> (Status, Vec<u8>) {
    if body.len() < 2 {
        return (
            Status::BadRequest,
            b"compress body needs [k u16][trits]".to_vec(),
        );
    }
    let k = usize::from(u16::from_le_bytes([body[0], body[1]]));
    let Ok(text) = std::str::from_utf8(&body[2..]) else {
        return (Status::BadRequest, b"trit text is not UTF-8".to_vec());
    };
    let stream: TritVec = match text.parse() {
        Ok(stream) => stream,
        Err(e) => {
            return (
                Status::BadRequest,
                format!("bad trit text: {e}").into_bytes(),
            )
        }
    };
    match shared.engine.encode_frame(k, &stream) {
        Ok(frame) => (Status::Ok, frame),
        Err(e) => (Status::Failed, e.to_string().into_bytes()),
    }
}

/// `DECODE`/`REPAIR`: run the ladder under the tenant's session. In
/// degraded mode the policy collapses to strict — the shed counter ticks
/// once per downgraded request.
fn decode(
    shared: &Shared,
    tenant: &Arc<Tenant>,
    frame: &[u8],
    requested: ninec::Policy,
    degraded: bool,
    cancel: &CancelToken,
) -> (Status, Vec<u8>) {
    let policy = if degraded && requested != ninec::Policy::Strict {
        Stats::tick(&shared.stats.shed, "ninec.serve.shed");
        ninec::Policy::Strict
    } else {
        requested
    };
    match tenant
        .session_with_cancel(cancel.clone())
        .decode_frame(frame, policy)
    {
        Ok(outcome) => {
            let damaged = outcome
                .report
                .as_ref()
                .map(|report| report.damaged.len())
                .unwrap_or(0);
            let damaged = u32::try_from(damaged).unwrap_or(u32::MAX);
            let text = outcome.trits.to_string();
            let mut body = Vec::with_capacity(5 + text.len());
            body.push(wire::rung_to_byte(outcome.rung));
            body.extend_from_slice(&damaged.to_le_bytes());
            body.extend_from_slice(text.as_bytes());
            let status = if outcome.is_lossless() {
                Status::Ok
            } else {
                Status::Partial
            };
            (status, body)
        }
        // A tripped token — client deadline, server ceiling, or the
        // connection dying mid-decode — is a typed timeout, not a decode
        // failure: the frame itself was never judged.
        Err(e @ (ninec::DecodeError::Cancelled | ninec::DecodeError::DeadlineExceeded)) => {
            ninec_obs::counter("ninec.serve.cancelled_jobs").add(1);
            (Status::DeadlineExceeded, e.to_string().into_bytes())
        }
        Err(e) => (Status::Failed, e.to_string().into_bytes()),
    }
}

/// `INFO`: one header/CRC scan pass, no payload decode.
fn info(tenant: &Arc<Tenant>, frame: &[u8]) -> (Status, Vec<u8>) {
    match tenant.session().plan(frame) {
        Ok(plan) => {
            let (g, r) = (plan.parity_g(), plan.parity_r());
            let parity = if r == 0 {
                "none".to_string()
            } else {
                format!("{g}:{r}")
            };
            let text = format!(
                "version: {}\nsegments: {} ({} intact)\nsource_trits: {}\nparity: {}\ntable_lengths: {:?}\n",
                plan.version(),
                plan.entries().len(),
                plan.intact_count(),
                plan.source_len(),
                parity,
                plan.table_lengths(),
            );
            (Status::Ok, text.into_bytes())
        }
        Err(e) => (Status::Failed, e.to_string().into_bytes()),
    }
}

//! Minimal HTTP/1.1 exporter for the service's telemetry.
//!
//! A deliberately tiny vendored-in-place listener — `GET` only, one
//! request per connection, `Connection: close` — because the two
//! endpoints it serves are pull-based exporters, not an API:
//!
//! - `/metrics` — the [`ninec_obs`] registry rendered as Prometheus
//!   text exposition (includes the `ninec.serve.*` counters the server
//!   ticks per request);
//! - `/trace` — drains the flight recorder into a Chrome
//!   `chrome://tracing` / Perfetto trace-event document (JSON array);
//! - `/healthz` — `ok`, for liveness probes and the CI smoke.
//!
//! With telemetry compiled out (`--no-default-features`) both exporters
//! still answer 200 with valid empty documents.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Request-head ceiling: method + path + headers must fit in this many
/// bytes or the connection is dropped (no unbounded buffering here
/// either).
const MAX_REQUEST_HEAD: usize = 8 << 10;

/// Spawns the exporter thread. It exits when `stop` is set *and* one
/// more connection arrives to unblock `accept` (the server's shutdown
/// sends that nudge). `read_timeout` is
/// [`ServeConfig::http_read_timeout`](crate::ServeConfig::http_read_timeout),
/// tunable next to the wire listener's budget.
pub(crate) fn spawn(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    read_timeout: std::time::Duration,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ninec-serve-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let _ = serve_one(stream, read_timeout);
            }
        })
}

/// Reads one request head and answers it.
fn serve_one(mut stream: TcpStream, read_timeout: std::time::Duration) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_HEAD {
            return Ok(()); // oversized head: just hang up
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served here\n",
        );
    }
    match path {
        "/metrics" => {
            let body = ninec_obs::snapshot().render_prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/trace" => {
            let body = ninec_obs::render_chrome_trace(&ninec_obs::take_trace());
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain; charset=utf-8", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /trace or /healthz\n",
        ),
    }
}

/// Writes one `Connection: close` response.
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

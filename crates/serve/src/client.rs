//! Blocking client for the codec service's wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests in lock
//! step (the protocol has no pipelining — each request is answered
//! before the next is read). The typed surface mirrors the wire verbs:
//! [`hello`](Client::hello), [`compress`](Client::compress),
//! [`decode`](Client::decode), [`repair`](Client::repair),
//! [`info`](Client::info). Load-shed refusals (`Busy`, `RateLimited`)
//! and codec failures surface as [`ClientError::Server`] carrying the
//! wire [`Status`] so callers can map them straight onto the CLI
//! exit-code contract.
//!
//! Sockets always carry timeouts ([`ClientOptions`]: connect, read,
//! write — with sane defaults), so a blackholed server surfaces as a
//! typed [`ClientError::Io`] timeout instead of a hung thread. A client
//! built with a [`deadline`](ClientOptions::deadline) negotiates the
//! wire's `deadline` capability at HELLO and prefixes each request with
//! its budget; servers answer overruns with
//! [`Status::DeadlineExceeded`].
//!
//! [`RetryingClient`] layers a typed retry policy on top: transport
//! errors and `Busy`/`RateLimited`/`DeadlineExceeded` refusals retry
//! with decorrelated-jitter backoff (reconnecting and re-HELLOing as
//! needed); decode failures (`Failed`, `BadRequest`) never retry.

use crate::wire::{self, Op, Response, Status, WireError, DEFAULT_MAX_MESSAGE_BYTES};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Typed client-side failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Connecting or talking to the socket failed.
    Io(std::io::Error),
    /// The server's bytes did not parse as protocol frames, or it hung
    /// up mid-conversation.
    Protocol(WireError),
    /// The server answered with a non-success status.
    Server {
        /// The wire status (mirrors the CLI exit-code contract).
        status: Status,
        /// The server was in degraded (strict-only) mode.
        degraded: bool,
        /// The server's error text.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server {
                status,
                degraded,
                message,
            } => {
                let suffix = if *degraded { " (degraded)" } else { "" };
                write!(f, "server refused ({status:?}{suffix}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Server { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A decoded frame as the service returned it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeReply {
    /// The ladder rung that produced the stream.
    pub rung: ninec::RungKind,
    /// Damaged-segment count from the server's damage map (0 when the
    /// strict rung answered).
    pub damaged: u32,
    /// The recovered trit stream, as text.
    pub trits: String,
    /// The server answered in degraded (strict-only) mode.
    pub degraded: bool,
    /// `true` when the recovery was lossy (wire status `Partial`).
    pub partial: bool,
}

/// Connection knobs for [`Client::connect_with`]. The [`Default`]
/// values are deliberately finite — a client never blocks forever on a
/// dead peer unless explicitly configured to.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// TCP connect timeout (default 10s; `None` blocks on the OS).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout per `read` call (default 30s).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout per `write` call (default 30s).
    pub write_timeout: Option<Duration>,
    /// Caps how large a single response the client will buffer.
    pub max_message_bytes: usize,
    /// Per-request server-side deadline budget. `Some` makes
    /// [`hello`](Client::hello) negotiate the wire's `deadline`
    /// capability and every subsequent request carry this budget.
    pub deadline: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_message_bytes: DEFAULT_MAX_MESSAGE_BYTES,
            deadline: None,
        }
    }
}

/// One connection to a codec service.
pub struct Client {
    stream: TcpStream,
    max_message_bytes: usize,
    deadline: Option<Duration>,
    negotiated: bool,
}

impl Client {
    /// Connects with [`ClientOptions::default`] (finite socket
    /// timeouts). Follow with [`hello`](Client::hello) to bind a tenant;
    /// unbound connections run as the server's `default` tenant.
    ///
    /// # Errors
    ///
    /// Connection failures only.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(addr, &ClientOptions::default())
    }

    /// Connects with explicit [`ClientOptions`]. Every resolved address
    /// is tried in order; the last failure is returned when none accept.
    ///
    /// # Errors
    ///
    /// Connection failures (including connect timeout) only.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: &ClientOptions,
    ) -> Result<Client, ClientError> {
        let mut last_err = None;
        let mut connected = None;
        for candidate in addr.to_socket_addrs()? {
            let attempt = match options.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(&candidate, timeout),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    connected = Some(stream);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some(stream) = connected else {
            return Err(ClientError::Io(last_err.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to nothing",
                )
            })));
        };
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_message_bytes: options.max_message_bytes,
            deadline: options.deadline,
            negotiated: false,
        })
    }

    /// Caps how large a single response this client will buffer.
    #[must_use]
    pub fn max_message_bytes(mut self, max: usize) -> Self {
        self.max_message_bytes = max;
        self
    }

    /// Changes the per-request deadline budget. Takes effect on the next
    /// request; negotiation still happens at [`hello`](Client::hello),
    /// so setting a deadline on a connection that never negotiated the
    /// capability sends nothing extra.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// One request/response exchange; the protocol floor the typed
    /// verbs build on. Public so tests can send malformed bodies. On a
    /// deadline-negotiated connection every non-HELLO request is
    /// prefixed with the current budget (`0` = none).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`]/[`ClientError::Protocol`] on transport
    /// problems — every in-protocol refusal comes back as a [`Response`].
    pub fn roundtrip(&mut self, op: Op, body: &[u8]) -> Result<Response, ClientError> {
        if self.negotiated && op != Op::Hello {
            let ms = self
                .deadline
                .map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX))
                .unwrap_or(0);
            let mut framed = Vec::with_capacity(4 + body.len());
            framed.extend_from_slice(&ms.to_le_bytes());
            framed.extend_from_slice(body);
            wire::write_request(&mut self.stream, op, &framed)?;
        } else {
            wire::write_request(&mut self.stream, op, body)?;
        }
        match wire::read_response(&mut self.stream, self.max_message_bytes)? {
            Some(response) => Ok(response),
            None => Err(ClientError::Protocol(WireError::Truncated)),
        }
    }

    /// Maps refusal statuses to [`ClientError::Server`].
    fn expect_payload(response: Response) -> Result<Response, ClientError> {
        if response.status.carries_payload() {
            Ok(response)
        } else {
            Err(ClientError::Server {
                status: response.status,
                degraded: response.degraded(),
                message: response.text(),
            })
        }
    }

    /// Binds this connection to `tenant`; returns the server greeting.
    /// When a [`deadline`](ClientOptions::deadline) is configured the
    /// HELLO also requests the wire's `deadline` capability — the
    /// connection switches to deadline-prefixed requests only if the
    /// greeting echoes it back (old servers leave the client unchanged).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`Status::BadRequest`] for an
    /// unknown tenant (the connection stays usable on its old binding).
    pub fn hello(&mut self, tenant: &str) -> Result<String, ClientError> {
        let body = if self.deadline.is_some() {
            format!("{tenant} {}", wire::CAP_DEADLINE)
        } else {
            tenant.to_string()
        };
        let response = self.roundtrip(Op::Hello, body.as_bytes())?;
        let greeting = Self::expect_payload(response).map(|r| r.text())?;
        self.negotiated = greeting
            .split_once(" caps ")
            .is_some_and(|(_, caps)| caps.split_whitespace().any(|cap| cap == wire::CAP_DEADLINE));
        Ok(greeting)
    }

    /// Compresses `trits` (text over `{0,1,X}`) at block size `k` into a
    /// self-describing `9CSF` frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on refusals and codec failures.
    pub fn compress(&mut self, k: u16, trits: &str) -> Result<Vec<u8>, ClientError> {
        let mut body = Vec::with_capacity(2 + trits.len());
        body.extend_from_slice(&k.to_le_bytes());
        body.extend_from_slice(trits.as_bytes());
        let response = self.roundtrip(Op::Compress, &body)?;
        Self::expect_payload(response).map(|r| r.body)
    }

    /// Decodes a frame under `policy`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on refusals and codec failures; a lossy
    /// salvage is **not** an error — check [`DecodeReply::partial`].
    pub fn decode(
        &mut self,
        frame: &[u8],
        policy: ninec::Policy,
    ) -> Result<DecodeReply, ClientError> {
        let mut body = Vec::with_capacity(1 + frame.len());
        body.push(wire::policy_to_byte(policy));
        body.extend_from_slice(frame);
        let response = self.roundtrip(Op::Decode, &body)?;
        Self::parse_decode_reply(response)
    }

    /// Sugar for [`decode`](Client::decode) with the repair policy.
    ///
    /// # Errors
    ///
    /// Same as [`decode`](Client::decode).
    pub fn repair(&mut self, frame: &[u8]) -> Result<DecodeReply, ClientError> {
        let response = self.roundtrip(Op::Repair, frame)?;
        Self::parse_decode_reply(response)
    }

    /// Summarises a frame (one header/CRC scan, no payload decode).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on refusals and file-level damage.
    pub fn info(&mut self, frame: &[u8]) -> Result<String, ClientError> {
        let response = self.roundtrip(Op::Info, frame)?;
        Self::expect_payload(response).map(|r| r.text())
    }

    /// Decodes `len` trits starting at `start` from frame `frame` of
    /// the server's hosted `9CA` archive; returns the trit text. The
    /// server reads only the segments the range touches.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`Status::BadRequest`] when no
    /// archive is hosted or the coordinates are out of range, `Failed`
    /// for rot or decode failures.
    pub fn archive_range(
        &mut self,
        frame: u32,
        start: u64,
        len: u64,
    ) -> Result<String, ClientError> {
        let body = wire::encode_archive_range(frame, start, len);
        let response = self.roundtrip(Op::ArchiveRange, &body)?;
        Self::expect_payload(response).map(|r| r.text())
    }

    fn parse_decode_reply(response: Response) -> Result<DecodeReply, ClientError> {
        let response = Self::expect_payload(response)?;
        let partial = response.status == Status::Partial;
        let degraded = response.degraded();
        if response.body.len() < 5 {
            return Err(ClientError::Protocol(WireError::Truncated));
        }
        let rung = wire::rung_from_byte(response.body[0]).ok_or(ClientError::Protocol(
            WireError::UnknownStatus(response.body[0]),
        ))?;
        let damaged = u32::from_le_bytes([
            response.body[1],
            response.body[2],
            response.body[3],
            response.body[4],
        ]);
        let trits = String::from_utf8_lossy(&response.body[5..]).into_owned();
        Ok(DecodeReply {
            rung,
            damaged,
            trits,
            degraded,
            partial,
        })
    }
}

/// When and how [`RetryingClient`] retries.
///
/// Backoff is **decorrelated jitter**: each sleep is drawn uniformly
/// from `[base, prev * 3]` and clamped to `cap`, so synchronized
/// clients desynchronize instead of hammering the server in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries *per request* after the first attempt (default 3).
    pub max_retries: u32,
    /// Backoff floor (default 10ms).
    pub base: Duration,
    /// Backoff ceiling (default 1s).
    pub cap: Duration,
    /// Overall budget for one request across all attempts and sleeps;
    /// the next retry is abandoned once it cannot fit (default `None`).
    pub total_deadline: Option<Duration>,
    /// Jitter PRNG seed; `0` picks a fixed default. Deterministic so
    /// tests and benches replay identical backoff schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            total_deadline: None,
            seed: 0,
        }
    }
}

/// A [`Client`] wrapper that retries retryable failures with
/// decorrelated-jitter backoff.
///
/// The retryable/non-retryable split is typed, not heuristic:
///
/// - **retry** — transport errors ([`ClientError::Io`], torn frames as
///   [`ClientError::Protocol`]) after reconnecting and re-HELLOing, and
///   the load-shed refusals `Busy`/`RateLimited` plus the typed timeout
///   `DeadlineExceeded`;
/// - **never retry** — `Failed`/`BadRequest`: the server *judged* the
///   request and the same bytes will fail the same way.
///
/// The connection is lazy: the first request (or retry after a
/// transport error) connects and re-binds the remembered tenant, so a
/// server restart mid-session heals transparently.
pub struct RetryingClient {
    addrs: Vec<SocketAddr>,
    options: ClientOptions,
    policy: RetryPolicy,
    tenant: Option<String>,
    client: Option<Client>,
    retries: u64,
    prev_ms: u64,
    rng: u64,
}

impl RetryingClient {
    /// Resolves `addr` and remembers the connection recipe; nothing is
    /// dialed until the first request.
    ///
    /// # Errors
    ///
    /// Address resolution failures only.
    pub fn new(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
        policy: RetryPolicy,
    ) -> Result<RetryingClient, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let base_ms = u64::try_from(policy.base.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let rng = if policy.seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            policy.seed
        };
        Ok(RetryingClient {
            addrs,
            options,
            policy,
            tenant: None,
            client: None,
            retries: 0,
            prev_ms: base_ms,
            rng,
        })
    }

    /// Total retries performed over this client's lifetime (first
    /// attempts are not counted).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Binds every current and future connection to `tenant`.
    ///
    /// # Errors
    ///
    /// As [`Client::hello`], after retries are exhausted.
    pub fn hello(&mut self, tenant: &str) -> Result<String, ClientError> {
        self.tenant = Some(tenant.to_string());
        let tenant = tenant.to_string();
        self.with_retry(|client| client.hello(&tenant))
    }

    /// As [`Client::compress`], with retries.
    ///
    /// # Errors
    ///
    /// As [`Client::compress`], after retries are exhausted.
    pub fn compress(&mut self, k: u16, trits: &str) -> Result<Vec<u8>, ClientError> {
        self.with_retry(|client| client.compress(k, trits))
    }

    /// As [`Client::decode`], with retries.
    ///
    /// # Errors
    ///
    /// As [`Client::decode`], after retries are exhausted.
    pub fn decode(
        &mut self,
        frame: &[u8],
        policy: ninec::Policy,
    ) -> Result<DecodeReply, ClientError> {
        self.with_retry(|client| client.decode(frame, policy))
    }

    /// As [`Client::repair`], with retries.
    ///
    /// # Errors
    ///
    /// As [`Client::repair`], after retries are exhausted.
    pub fn repair(&mut self, frame: &[u8]) -> Result<DecodeReply, ClientError> {
        self.with_retry(|client| client.repair(frame))
    }

    /// As [`Client::info`], with retries.
    ///
    /// # Errors
    ///
    /// As [`Client::info`], after retries are exhausted.
    pub fn info(&mut self, frame: &[u8]) -> Result<String, ClientError> {
        self.with_retry(|client| client.info(frame))
    }

    /// As [`Client::archive_range`], with retries.
    ///
    /// # Errors
    ///
    /// As [`Client::archive_range`], after retries are exhausted.
    pub fn archive_range(
        &mut self,
        frame: u32,
        start: u64,
        len: u64,
    ) -> Result<String, ClientError> {
        self.with_retry(|client| client.archive_range(frame, start, len))
    }

    /// `true` for failures where a retry can plausibly change the
    /// answer.
    fn retryable(err: &ClientError) -> bool {
        match err {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Server { status, .. } => matches!(
                status,
                Status::Busy | Status::RateLimited | Status::DeadlineExceeded
            ),
        }
    }

    /// Connects (and re-HELLOs) if there is no live connection.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut client = Client::connect_with(&self.addrs[..], &self.options)?;
        if let Some(tenant) = &self.tenant {
            client.hello(tenant)?;
        }
        self.client = Some(client);
        Ok(())
    }

    /// xorshift64 — cheap, deterministic, good enough for jitter.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The next decorrelated-jitter sleep.
    fn next_backoff(&mut self) -> Duration {
        let base_ms = u64::try_from(self.policy.base.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let cap_ms = u64::try_from(self.policy.cap.as_millis())
            .unwrap_or(u64::MAX)
            .max(base_ms);
        let upper_ms = self.prev_ms.saturating_mul(3).max(base_ms);
        let span = upper_ms - base_ms;
        let ms = if span == 0 {
            base_ms
        } else {
            base_ms + self.next_rand() % (span + 1)
        };
        let ms = ms.min(cap_ms);
        self.prev_ms = ms;
        Duration::from_millis(ms)
    }

    /// The retry loop every typed verb runs through.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let result = match self.ensure_connected() {
                Ok(()) => match self.client.as_mut() {
                    Some(client) => op(client),
                    None => Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::NotConnected,
                        "reconnect lost the connection",
                    ))),
                },
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            // A transport error leaves the stream in an unknown state;
            // drop it so the next attempt reconnects.
            if matches!(err, ClientError::Io(_) | ClientError::Protocol(_)) {
                self.client = None;
            }
            if !Self::retryable(&err) || attempt >= self.policy.max_retries {
                return Err(err);
            }
            let sleep = self.next_backoff();
            if let Some(total) = self.policy.total_deadline {
                if started.elapsed().saturating_add(sleep) >= total {
                    return Err(err);
                }
            }
            attempt += 1;
            self.retries += 1;
            ninec_obs::counter("ninec.serve.client_retries").add(1);
            std::thread::sleep(sleep);
        }
    }
}

/// One-shot `GET` against the exporter listener; returns the body.
/// Here so the CLI's `client metrics` verb (and the CI smoke) need no
/// external HTTP tooling.
///
/// # Errors
///
/// Connection failures, or a response that is not `200 OK`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<String, ClientError> {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: ninec\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some((head, body)) = raw.split_once("\r\n\r\n") else {
        return Err(ClientError::Protocol(WireError::Truncated));
    };
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(ClientError::Server {
            status: Status::Failed,
            degraded: false,
            message: status_line.to_string(),
        });
    }
    Ok(body.to_string())
}

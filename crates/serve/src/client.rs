//! Blocking client for the codec service's wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests in lock
//! step (the protocol has no pipelining — each request is answered
//! before the next is read). The typed surface mirrors the wire verbs:
//! [`hello`](Client::hello), [`compress`](Client::compress),
//! [`decode`](Client::decode), [`repair`](Client::repair),
//! [`info`](Client::info). Load-shed refusals (`Busy`, `RateLimited`)
//! and codec failures surface as [`ClientError::Server`] carrying the
//! wire [`Status`] so callers can map them straight onto the CLI
//! exit-code contract.

use crate::wire::{self, Op, Response, Status, WireError, DEFAULT_MAX_MESSAGE_BYTES};
use std::net::{TcpStream, ToSocketAddrs};

/// Typed client-side failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Connecting or talking to the socket failed.
    Io(std::io::Error),
    /// The server's bytes did not parse as protocol frames, or it hung
    /// up mid-conversation.
    Protocol(WireError),
    /// The server answered with a non-success status.
    Server {
        /// The wire status (mirrors the CLI exit-code contract).
        status: Status,
        /// The server was in degraded (strict-only) mode.
        degraded: bool,
        /// The server's error text.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server {
                status,
                degraded,
                message,
            } => {
                let suffix = if *degraded { " (degraded)" } else { "" };
                write!(f, "server refused ({status:?}{suffix}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Server { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A decoded frame as the service returned it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeReply {
    /// The ladder rung that produced the stream.
    pub rung: ninec::RungKind,
    /// Damaged-segment count from the server's damage map (0 when the
    /// strict rung answered).
    pub damaged: u32,
    /// The recovered trit stream, as text.
    pub trits: String,
    /// The server answered in degraded (strict-only) mode.
    pub degraded: bool,
    /// `true` when the recovery was lossy (wire status `Partial`).
    pub partial: bool,
}

/// One connection to a codec service.
pub struct Client {
    stream: TcpStream,
    max_message_bytes: usize,
}

impl Client {
    /// Connects. Follow with [`hello`](Client::hello) to bind a tenant;
    /// unbound connections run as the server's `default` tenant.
    ///
    /// # Errors
    ///
    /// Connection failures only.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_message_bytes: DEFAULT_MAX_MESSAGE_BYTES,
        })
    }

    /// Caps how large a single response this client will buffer.
    #[must_use]
    pub fn max_message_bytes(mut self, max: usize) -> Self {
        self.max_message_bytes = max;
        self
    }

    /// One request/response exchange; the protocol floor the typed
    /// verbs build on. Public so tests can send malformed bodies.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`]/[`ClientError::Protocol`] on transport
    /// problems — every in-protocol refusal comes back as a [`Response`].
    pub fn roundtrip(&mut self, op: Op, body: &[u8]) -> Result<Response, ClientError> {
        wire::write_request(&mut self.stream, op, body)?;
        match wire::read_response(&mut self.stream, self.max_message_bytes)? {
            Some(response) => Ok(response),
            None => Err(ClientError::Protocol(WireError::Truncated)),
        }
    }

    /// Maps refusal statuses to [`ClientError::Server`].
    fn expect_payload(response: Response) -> Result<Response, ClientError> {
        if response.status.carries_payload() {
            Ok(response)
        } else {
            Err(ClientError::Server {
                status: response.status,
                degraded: response.degraded(),
                message: response.text(),
            })
        }
    }

    /// Binds this connection to `tenant`; returns the server greeting.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`Status::BadRequest`] for an
    /// unknown tenant (the connection stays usable on its old binding).
    pub fn hello(&mut self, tenant: &str) -> Result<String, ClientError> {
        let response = self.roundtrip(Op::Hello, tenant.as_bytes())?;
        Self::expect_payload(response).map(|r| r.text())
    }

    /// Compresses `trits` (text over `{0,1,X}`) at block size `k` into a
    /// self-describing `9CSF` frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on refusals and codec failures.
    pub fn compress(&mut self, k: u16, trits: &str) -> Result<Vec<u8>, ClientError> {
        let mut body = Vec::with_capacity(2 + trits.len());
        body.extend_from_slice(&k.to_le_bytes());
        body.extend_from_slice(trits.as_bytes());
        let response = self.roundtrip(Op::Compress, &body)?;
        Self::expect_payload(response).map(|r| r.body)
    }

    /// Decodes a frame under `policy`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on refusals and codec failures; a lossy
    /// salvage is **not** an error — check [`DecodeReply::partial`].
    pub fn decode(
        &mut self,
        frame: &[u8],
        policy: ninec::Policy,
    ) -> Result<DecodeReply, ClientError> {
        let mut body = Vec::with_capacity(1 + frame.len());
        body.push(wire::policy_to_byte(policy));
        body.extend_from_slice(frame);
        let response = self.roundtrip(Op::Decode, &body)?;
        Self::parse_decode_reply(response)
    }

    /// Sugar for [`decode`](Client::decode) with the repair policy.
    ///
    /// # Errors
    ///
    /// Same as [`decode`](Client::decode).
    pub fn repair(&mut self, frame: &[u8]) -> Result<DecodeReply, ClientError> {
        let response = self.roundtrip(Op::Repair, frame)?;
        Self::parse_decode_reply(response)
    }

    /// Summarises a frame (one header/CRC scan, no payload decode).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] on refusals and file-level damage.
    pub fn info(&mut self, frame: &[u8]) -> Result<String, ClientError> {
        let response = self.roundtrip(Op::Info, frame)?;
        Self::expect_payload(response).map(|r| r.text())
    }

    fn parse_decode_reply(response: Response) -> Result<DecodeReply, ClientError> {
        let response = Self::expect_payload(response)?;
        let partial = response.status == Status::Partial;
        let degraded = response.degraded();
        if response.body.len() < 5 {
            return Err(ClientError::Protocol(WireError::Truncated));
        }
        let rung = wire::rung_from_byte(response.body[0]).ok_or(ClientError::Protocol(
            WireError::UnknownStatus(response.body[0]),
        ))?;
        let damaged = u32::from_le_bytes([
            response.body[1],
            response.body[2],
            response.body[3],
            response.body[4],
        ]);
        let trits = String::from_utf8_lossy(&response.body[5..]).into_owned();
        Ok(DecodeReply {
            rung,
            damaged,
            trits,
            degraded,
            partial,
        })
    }
}

/// One-shot `GET` against the exporter listener; returns the body.
/// Here so the CLI's `client metrics` verb (and the CI smoke) need no
/// external HTTP tooling.
///
/// # Errors
///
/// Connection failures, or a response that is not `200 OK`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<String, ClientError> {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: ninec\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some((head, body)) = raw.split_once("\r\n\r\n") else {
        return Err(ClientError::Protocol(WireError::Truncated));
    };
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(ClientError::Server {
            status: Status::Failed,
            degraded: false,
            message: status_line.to_string(),
        });
    }
    Ok(body.to_string())
}

//! A std-only fault-injection TCP proxy for chaos-testing the service.
//!
//! [`ChaosProxy`] sits between a client and an upstream `ninec-serve`
//! listener and misbehaves on purpose, per connection:
//!
//! - **delay** — added latency before each forwarded chunk;
//! - **throttle** — forwarded bytes are paced to a bytes-per-second
//!   ceiling (slow networks, not broken ones);
//! - **torn write** — the server→client direction forwards a few bytes
//!   of the response stream, then closes both sockets mid-frame
//!   (clients see a truncated protocol frame);
//! - **blackhole** — bytes are read and discarded in both directions;
//!   nothing ever comes back (clients see a read timeout).
//!
//! Fault decisions are **deterministic**: each accepted connection's
//! fate is a pure function of [`ChaosConfig::seed`] and the connection
//! ordinal, so a failing chaos run replays byte-identically. The proxy
//! is used by the `chaos` integration suite, `bench_serve`'s chaos row
//! and the CI chaos smoke; it lives in the library (not `tests/`) so
//! all three share one implementation.
//!
//! ```no_run
//! use ninec_serve::{ChaosConfig, ChaosProxy};
//!
//! let upstream: std::net::SocketAddr = "127.0.0.1:9000".parse()?;
//! let mut proxy = ChaosProxy::start(upstream, ChaosConfig {
//!     torn_write_permille: 100, // 10% of connections tear
//!     ..ChaosConfig::default()
//! })?;
//! let addr = proxy.addr(); // point clients here instead of upstream
//! proxy.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault mix for a [`ChaosProxy`]. [`Default`] injects nothing — a
/// transparent (if slightly slower) proxy.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Proxy bind address (port `0` = ephemeral).
    pub listen: String,
    /// Added latency before each forwarded chunk, both directions.
    pub delay: Duration,
    /// Forwarding pace ceiling in bytes/second (`0` = unlimited).
    pub throttle_bytes_per_sec: usize,
    /// Per-mille of connections whose server→client stream is torn:
    /// a handful of bytes are forwarded, then both sockets close.
    pub torn_write_permille: u16,
    /// Per-mille of connections that black-hole: bytes are swallowed in
    /// both directions and no reply ever arrives.
    pub blackhole_permille: u16,
    /// Seed for the deterministic per-connection fault decisions.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            listen: "127.0.0.1:0".to_string(),
            delay: Duration::ZERO,
            throttle_bytes_per_sec: 0,
            torn_write_permille: 0,
            blackhole_permille: 0,
            seed: 1,
        }
    }
}

/// What the dice said for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Clean,
    /// Forward `after` server→client bytes, then slam both sockets.
    Torn {
        after: usize,
    },
    Blackhole,
}

/// splitmix64 finalizer — a well-mixed pure hash, no state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ChaosConfig {
    /// The deterministic fate of connection number `conn`.
    fn fate(&self, conn: u64) -> Fate {
        let h = mix(self.seed ^ mix(conn));
        let roll = (h % 1000) as u16;
        if roll < self.blackhole_permille {
            Fate::Blackhole
        } else if roll
            < self
                .blackhole_permille
                .saturating_add(self.torn_write_permille)
        {
            // Tear inside the first response's length prefix / status
            // byte, so even the smallest reply arrives truncated.
            Fate::Torn {
                after: 1 + (mix(h) % 4) as usize,
            }
        } else {
            Fate::Clean
        }
    }
}

/// A running fault-injection proxy. Dropping the handle calls
/// [`shutdown`](ChaosProxy::shutdown).
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pumps: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

/// Pump threads poll the stop flag at this cadence, so shutdown never
/// waits out a long socket timeout.
const POLL: Duration = Duration::from_millis(50);

impl ChaosProxy {
    /// Binds the listener and starts proxying to `upstream`. Bind to
    /// port `0` and read the real address back from
    /// [`addr`](ChaosProxy::addr).
    ///
    /// # Errors
    ///
    /// Socket bind failures only; upstream dial failures are
    /// per-connection (the client connection is simply dropped).
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let pumps = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let pumps = Arc::clone(&pumps);
            std::thread::Builder::new()
                .name("ninec-chaos-accept".to_string())
                .spawn(move || accept_loop(&listener, upstream, &config, &stop, &pumps))?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            pumps,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listen address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, joins the acceptor and waits (bounded) for the
    /// pump threads to drain. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge `accept` so the acceptor notices the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Pumps poll the flag; give them a bounded grace period.
        for _ in 0..100 {
            if self.pumps.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(POLL);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept, roll a fate, dial upstream, spawn the two pumps.
fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: &ChaosConfig,
    stop: &Arc<AtomicBool>,
    pumps: &Arc<AtomicUsize>,
) {
    let conns = AtomicU64::new(0);
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = conn else { continue };
        let fate = config.fate(conns.fetch_add(1, Ordering::Relaxed));
        let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
            continue; // upstream down: drop the client connection
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        spawn_pump(
            &client,
            &server,
            Direction::ClientToServer,
            config,
            fate,
            stop,
            pumps,
        );
        spawn_pump(
            &server,
            &client,
            Direction::ServerToClient,
            config,
            fate,
            stop,
            pumps,
        );
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToServer,
    ServerToClient,
}

/// RAII tally of live pump threads, so shutdown can wait for drain.
struct PumpGuard(Arc<AtomicUsize>);

impl Drop for PumpGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn spawn_pump(
    from: &TcpStream,
    to: &TcpStream,
    direction: Direction,
    config: &ChaosConfig,
    fate: Fate,
    stop: &Arc<AtomicBool>,
    pumps: &Arc<AtomicUsize>,
) {
    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    pumps.fetch_add(1, Ordering::SeqCst);
    let guard = PumpGuard(Arc::clone(pumps));
    let config = config.clone();
    let stop = Arc::clone(stop);
    // Detached on purpose: pumps poll `stop` and exit within one POLL
    // interval of shutdown; the proxy handle waits for the tally.
    let spawned = std::thread::Builder::new()
        .name("ninec-chaos-pump".to_string())
        .spawn(move || {
            let _guard = guard;
            pump(&from, &to, direction, &config, fate, &stop);
            // One side closing ends the conversation both ways.
            let _ = from.shutdown(std::net::Shutdown::Both);
            let _ = to.shutdown(std::net::Shutdown::Both);
        });
    // Spawn failure: the moved guard already untallied via drop.
    drop(spawned);
}

/// Copy bytes `from` → `to` until EOF, error, stop, or the fate says
/// otherwise.
fn pump(
    from: &TcpStream,
    to: &TcpStream,
    direction: Direction,
    config: &ChaosConfig,
    fate: Fate,
    stop: &AtomicBool,
) {
    let _ = from.set_read_timeout(Some(POLL));
    let mut from = from;
    let mut to = to;
    let mut chunk = [0u8; 4096];
    // Bytes this pump may still forward before tearing (server→client
    // only; the request direction stays intact so the server does the
    // work whose answer the client will never see).
    let mut tear_budget = match (fate, direction) {
        (Fate::Torn { after }, Direction::ServerToClient) => Some(after),
        _ => None,
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match from.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if fate == Fate::Blackhole {
            continue; // swallow; the peer's read timeout is their problem
        }
        if !config.delay.is_zero() {
            std::thread::sleep(config.delay);
        }
        let forward = match tear_budget {
            Some(budget) => n.min(budget),
            None => n,
        };
        if forward > 0 && to.write_all(&chunk[..forward]).is_err() {
            return;
        }
        let _ = to.flush();
        if let Some(budget) = &mut tear_budget {
            *budget -= forward;
            if *budget == 0 {
                return; // the caller slams both sockets on return
            }
        }
        if config.throttle_bytes_per_sec > 0 {
            // Pace: this chunk "costs" forward/rate seconds.
            let nanos = (forward as u64).saturating_mul(1_000_000_000)
                / config.throttle_bytes_per_sec as u64;
            std::thread::sleep(Duration::from_nanos(nanos));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_and_respect_the_mix() {
        let config = ChaosConfig {
            torn_write_permille: 100,
            blackhole_permille: 50,
            seed: 7,
            ..ChaosConfig::default()
        };
        let first: Vec<Fate> = (0..2000).map(|c| config.fate(c)).collect();
        let second: Vec<Fate> = (0..2000).map(|c| config.fate(c)).collect();
        assert_eq!(first, second, "same seed, same fates");
        let torn = first
            .iter()
            .filter(|f| matches!(f, Fate::Torn { .. }))
            .count();
        let holes = first
            .iter()
            .filter(|f| matches!(f, Fate::Blackhole))
            .count();
        // 10% / 5% nominal; a well-mixed hash lands within loose bands.
        assert!((100..=300).contains(&torn), "torn rate off: {torn}/2000");
        assert!(
            (40..=160).contains(&holes),
            "blackhole rate off: {holes}/2000"
        );
        let clean_config = ChaosConfig::default();
        assert!((0..2000).all(|c| clean_config.fate(c) == Fate::Clean));
    }

    #[test]
    fn a_clean_proxy_is_transparent() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("upstream addr");
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).expect("read");
            conn.write_all(&buf).expect("write");
        });
        let mut proxy =
            ChaosProxy::start(upstream_addr, ChaosConfig::default()).expect("start proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"hello").expect("send");
        let mut back = [0u8; 5];
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        client.read_exact(&mut back).expect("echo back");
        assert_eq!(&back, b"hello");
        echo.join().expect("echo thread");
        proxy.shutdown();
    }
}

//! Built-in self-test (BIST) substrate.
//!
//! The 9C paper's introduction frames test-data compression against BIST:
//! pseudo-random pattern generation is cheap but leaves random-pattern-
//! resistant faults undetected, and deterministic alternatives like LFSR
//! reseeding are the other on-chip decompression family the paper cites
//! (references \[20\]–\[22\]). This crate provides those reference points:
//!
//! - [`lfsr`] — external-XOR LFSRs with tabulated primitive polynomials;
//! - [`misr`] — multiple-input signature registers (response compaction);
//! - [`prpg`] — pseudo-random pattern testing and coverage curves;
//! - [`gf2`] — GF(2) Gaussian elimination;
//! - [`reseed`] — LFSR-reseeding test compression: one linear solve per
//!   cube, seeds on the ATE instead of patterns.
//!
//! # Example
//!
//! ```
//! use ninec_bist::reseed::ReseedEncoder;
//! use ninec_testdata::gen::SyntheticProfile;
//!
//! let mut profile = SyntheticProfile::new("demo", 20, 96, 0.92);
//! profile.mean_care_run = 2.0;
//! let cubes = profile.generate(1);
//! let encoder = ReseedEncoder::new(24).expect("tabulated width");
//! let result = encoder.encode_set(&cubes);
//! println!("{result}");
//! assert!(encoder.expand(&result).covers(&cubes));
//! ```

#![warn(missing_docs)]

pub mod gf2;
pub mod lfsr;
pub mod misr;
pub mod prpg;
pub mod reseed;

pub use lfsr::Lfsr;
pub use misr::Misr;
pub use reseed::{ReseedEncoder, ReseedResult};

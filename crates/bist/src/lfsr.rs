//! Linear-feedback shift registers.
//!
//! The workhorse of BIST pattern generation and of LFSR-reseeding test
//! compression (references \[20\]–\[22\] of the 9C paper). The implementation
//! is an external-XOR (Fibonacci) LFSR: the new bit shifted into cell 0 is
//! the XOR of the tapped cells, and the *output* is the bit falling out of
//! the last cell — exactly the linear structure the reseeding solver in
//! [`crate::reseed`] models.

use std::fmt;

/// Maximal-length (primitive) characteristic polynomials for common
/// widths, given as tap masks: bit `i` set means cell `i` feeds the XOR.
///
/// Source: standard primitive-trinomial/pentanomial tables.
pub fn primitive_taps(width: usize) -> Option<u64> {
    let taps = match width {
        3 => 0b110,                  // x^3 + x^2 + 1
        4 => 0b1100,                 // x^4 + x^3 + 1
        5 => 0b1_0100,               // x^5 + x^3 + 1
        6 => 0b11_0000,              // x^6 + x^5 + 1
        7 => 0b110_0000,             // x^7 + x^6 + 1
        8 => 0b1011_1000,            // x^8 + x^6 + x^5 + x^4 + 1
        9 => 0b1_0001_0000,          // x^9 + x^5 + 1
        10 => 0b10_0100_0000,        // x^10 + x^7 + 1
        11 => 0b101_0000_0000,       // x^11 + x^9 + 1
        12 => 0b1110_0000_1000,      // x^12 + x^11 + x^10 + x^4 + 1
        16 => 0b1101_0000_0000_1000, // x^16 + x^15 + x^13 + x^4 + 1
        20 => 0b1001_0000_0000_0000_0000,
        24 => 0b1110_0001_0000_0000_0000_0000,
        32 => 0b1000_0000_0010_0000_0000_0000_0000_0011u64,
        // x^48 + x^47 + x^21 + x^20 + 1
        48 => 1u64 << 47 | 1 << 46 | 1 << 20 | 1 << 19,
        // x^64 + x^63 + x^61 + x^60 + 1
        64 => 1u64 << 63 | 1 << 62 | 1 << 60 | 1 << 59,
        _ => return None,
    };
    Some(taps)
}

/// An external-XOR (Fibonacci) LFSR of up to 64 cells.
///
/// # Examples
///
/// ```
/// use ninec_bist::lfsr::Lfsr;
///
/// let mut lfsr = Lfsr::with_primitive_taps(4).expect("tabulated").seeded(0b0001);
/// // A primitive 4-bit LFSR cycles through all 15 nonzero states.
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..15 {
///     seen.insert(lfsr.state());
///     lfsr.step();
/// }
/// assert_eq!(seen.len(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: usize,
    taps: u64,
    state: u64,
}

impl Lfsr {
    /// Creates an LFSR with an explicit tap mask.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or the tap mask has bits
    /// outside the register.
    pub fn new(width: usize, taps: u64) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        assert!(
            width == 64 || taps < 1u64 << width,
            "tap mask 0x{taps:x} exceeds width {width}"
        );
        assert!(taps != 0, "tap mask must be non-zero");
        Self {
            width,
            taps,
            state: 1,
        }
    }

    /// Creates an LFSR with a known-primitive polynomial for `width`.
    ///
    /// Returns `None` if no polynomial is tabulated for that width.
    pub fn with_primitive_taps(width: usize) -> Option<Self> {
        primitive_taps(width).map(|taps| Self::new(width, taps))
    }

    /// Returns the LFSR re-seeded with `seed` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the seed has bits outside the register.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.load(seed);
        self
    }

    /// Loads a new seed.
    ///
    /// # Panics
    ///
    /// Panics if the seed has bits outside the register.
    pub fn load(&mut self, seed: u64) {
        assert!(
            self.width == 64 || seed < 1u64 << self.width,
            "seed 0x{seed:x} exceeds width {}",
            self.width
        );
        self.state = seed;
    }

    /// Register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current register contents (bit `i` = cell `i`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one clock: returns the output bit (the last cell) and
    /// shifts, feeding the XOR of the tapped cells into cell 0.
    pub fn step(&mut self) -> bool {
        let out = self.state >> (self.width - 1) & 1 == 1;
        let feedback = (self.state & self.taps).count_ones() & 1;
        self.state = (self.state << 1 | feedback as u64) & mask(self.width);
        out
    }

    /// Produces the next `n` output bits.
    pub fn output_sequence(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.step()).collect()
    }
}

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl fmt::Display for Lfsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LFSR-{} taps 0x{:x} state 0x{:x}",
            self.width, self.taps, self.state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn small_tabulated_widths_are_maximal_length() {
        for width in [3usize, 4, 5, 6, 7, 8, 9, 10, 11, 12] {
            let mut lfsr = Lfsr::with_primitive_taps(width).unwrap().seeded(1);
            let period = 1u64 << width;
            let mut seen = HashSet::new();
            for _ in 0..period - 1 {
                assert!(seen.insert(lfsr.state()), "width {width}: repeated early");
                lfsr.step();
            }
            assert_eq!(lfsr.state(), 1, "width {width}: period != 2^n - 1");
            assert!(!seen.contains(&0), "zero state must be unreachable");
        }
    }

    #[test]
    fn larger_widths_return_to_seed_only_at_full_period() {
        // Cheaper check for 16/20 cells: the state must not revisit the
        // seed before 2^n - 1 steps, and must hit it exactly then.
        for width in [16usize, 20] {
            let mut lfsr = Lfsr::with_primitive_taps(width).unwrap().seeded(1);
            let period = (1u64 << width) - 1;
            for step in 1..=period {
                lfsr.step();
                if lfsr.state() == 1 {
                    assert_eq!(step, period, "width {width}: early cycle at {step}");
                }
            }
            assert_eq!(lfsr.state(), 1, "width {width}: period != 2^n - 1");
        }
    }

    #[test]
    fn zero_state_is_absorbing() {
        let mut lfsr = Lfsr::with_primitive_taps(8).unwrap().seeded(0);
        for _ in 0..10 {
            assert!(!lfsr.step());
            assert_eq!(lfsr.state(), 0);
        }
    }

    #[test]
    fn output_is_linear_in_the_seed() {
        // output(s1 XOR s2) = output(s1) XOR output(s2): the property the
        // reseeding solver relies on.
        let width = 12;
        let n = 40;
        for (s1, s2) in [(0x123u64, 0x456u64), (0x800, 0x001), (0xfff, 0xabc)] {
            let o1 = Lfsr::with_primitive_taps(width)
                .unwrap()
                .seeded(s1)
                .output_sequence(n);
            let o2 = Lfsr::with_primitive_taps(width)
                .unwrap()
                .seeded(s2)
                .output_sequence(n);
            let ox = Lfsr::with_primitive_taps(width)
                .unwrap()
                .seeded(s1 ^ s2)
                .output_sequence(n);
            for i in 0..n {
                assert_eq!(ox[i], o1[i] ^ o2[i], "bit {i}");
            }
        }
    }

    #[test]
    fn untabulated_width_returns_none() {
        assert!(Lfsr::with_primitive_taps(13).is_none());
        assert!(Lfsr::with_primitive_taps(0).is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn oversized_seed_panics() {
        let _ = Lfsr::with_primitive_taps(4).unwrap().seeded(0x10);
    }
}

//! Linear algebra over GF(2), packed 64 columns per word.
//!
//! Used by the LFSR-reseeding solver: each care bit of a test cube is one
//! linear equation over the seed bits.

/// A dense GF(2) matrix row with an attached right-hand side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Row {
    words: Vec<u64>,
    /// Right-hand side of the equation.
    pub rhs: bool,
    cols: usize,
}

impl Gf2Row {
    /// Creates an all-zero row with `cols` coefficients.
    pub fn zero(cols: usize) -> Self {
        Self {
            words: vec![0; cols.div_ceil(64).max(1)],
            rhs: false,
            cols,
        }
    }

    /// Gets coefficient `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn get(&self, col: usize) -> bool {
        assert!(col < self.cols, "column {col} out of range");
        self.words[col / 64] >> (col % 64) & 1 == 1
    }

    /// Sets coefficient `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn set(&mut self, col: usize, value: bool) {
        assert!(col < self.cols, "column {col} out of range");
        if value {
            self.words[col / 64] |= 1 << (col % 64);
        } else {
            self.words[col / 64] &= !(1 << (col % 64));
        }
    }

    /// Adds (XORs) `other` into `self`, including the RHS.
    pub fn add_assign(&mut self, other: &Gf2Row) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        self.rhs ^= other.rhs;
    }

    /// Index of the first set coefficient, if any.
    pub fn leading(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                let col = w * 64 + word.trailing_zeros() as usize;
                return (col < self.cols).then_some(col);
            }
        }
        None
    }

    /// `true` if every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Outcome of [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// A satisfying assignment (free variables set to 0).
    Solved(Vec<bool>),
    /// The system is inconsistent (`0 = 1` row encountered).
    Inconsistent,
}

/// Solves the linear system given by `rows` over `cols` unknowns by
/// Gaussian elimination; free variables are assigned 0.
///
/// # Examples
///
/// ```
/// use ninec_bist::gf2::{solve, Gf2Row, Solution};
///
/// // x0 ^ x1 = 1, x1 = 1  ->  x0 = 0, x1 = 1.
/// let mut r0 = Gf2Row::zero(2);
/// r0.set(0, true);
/// r0.set(1, true);
/// r0.rhs = true;
/// let mut r1 = Gf2Row::zero(2);
/// r1.set(1, true);
/// r1.rhs = true;
/// assert_eq!(solve(vec![r0, r1], 2), Solution::Solved(vec![false, true]));
/// ```
pub fn solve(mut rows: Vec<Gf2Row>, cols: usize) -> Solution {
    let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row index, column)
    let mut used = vec![false; rows.len()];
    for col in 0..cols {
        // Find an unused row with a leading coefficient at `col`.
        let Some(pivot) = (0..rows.len())
            .find(|&r| !used[r] && rows[r].get(col) && rows[r].leading() == Some(col))
            .or_else(|| (0..rows.len()).find(|&r| !used[r] && rows[r].get(col)))
        else {
            continue;
        };
        used[pivot] = true;
        pivots.push((pivot, col));
        let pivot_row = rows[pivot].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot && row.get(col) {
                row.add_assign(&pivot_row);
            }
        }
    }
    if rows.iter().any(|r| r.is_zero() && r.rhs) {
        return Solution::Inconsistent;
    }
    let mut assignment = vec![false; cols];
    for (r, col) in pivots {
        assignment[col] = rows[r].rhs;
    }
    Solution::Solved(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cols: usize, coeffs: &[usize], rhs: bool) -> Gf2Row {
        let mut r = Gf2Row::zero(cols);
        for &c in coeffs {
            r.set(c, true);
        }
        r.rhs = rhs;
        r
    }

    fn check(rows: &[Gf2Row], assignment: &[bool]) {
        for r in rows {
            let mut lhs = false;
            for (c, &v) in assignment.iter().enumerate() {
                if r.get(c) {
                    lhs ^= v;
                }
            }
            assert_eq!(lhs, r.rhs, "row not satisfied");
        }
    }

    #[test]
    fn simple_systems() {
        let rows = vec![
            row(3, &[0, 1], true),
            row(3, &[1, 2], false),
            row(3, &[2], true),
        ];
        match solve(rows.clone(), 3) {
            Solution::Solved(a) => check(&rows, &a),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inconsistent_detected() {
        let rows = vec![row(2, &[0], true), row(2, &[0], false)];
        assert_eq!(solve(rows, 2), Solution::Inconsistent);
        // x0 ^ x1 = 1 together with x0 = 1, x1 = 1 -> inconsistent.
        let rows = vec![
            row(2, &[0, 1], true),
            row(2, &[0], true),
            row(2, &[1], true),
        ];
        assert_eq!(solve(rows, 2), Solution::Inconsistent);
    }

    #[test]
    fn underdetermined_uses_free_zero() {
        let rows = vec![row(4, &[0, 3], true)];
        match solve(rows.clone(), 4) {
            Solution::Solved(a) => {
                check(&rows, &a);
                // Free variables default to 0, so x0 carries the 1.
                assert_eq!(a, vec![true, false, false, false]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_system_solves_trivially() {
        assert_eq!(solve(vec![], 3), Solution::Solved(vec![false; 3]));
        let rows = vec![row(2, &[], false)];
        assert_eq!(solve(rows, 2), Solution::Solved(vec![false, false]));
    }

    #[test]
    fn wide_systems_cross_word_boundaries() {
        let cols = 130;
        let rows = vec![
            row(cols, &[0, 64, 129], true),
            row(cols, &[64], true),
            row(cols, &[129], false),
        ];
        match solve(rows.clone(), cols) {
            Solution::Solved(a) => check(&rows, &a),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn random_consistent_systems_solve() {
        // Build rows from a known assignment: always consistent.
        let cols = 40;
        let mut state = 0x1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let secret: Vec<bool> = (0..cols).map(|_| rnd() & 1 == 1).collect();
        for _ in 0..10 {
            let rows: Vec<Gf2Row> = (0..30)
                .map(|_| {
                    let mut r = Gf2Row::zero(cols);
                    let mut rhs = false;
                    for (c, &bit) in secret.iter().enumerate() {
                        if rnd() & 1 == 1 {
                            r.set(c, true);
                            rhs ^= bit;
                        }
                    }
                    r.rhs = rhs;
                    r
                })
                .collect();
            match solve(rows.clone(), cols) {
                Solution::Solved(a) => check(&rows, &a),
                other => panic!("{other:?}"),
            }
        }
    }
}

//! LFSR-reseeding test compression (the scheme of the 9C paper's
//! references \[20\]–\[22\]).
//!
//! Each test cube is applied by loading a seed into an on-chip LFSR and
//! letting it run for one scan load: scan bit `j` equals LFSR output bit
//! `j`, a GF(2)-linear function of the seed. Encoding a cube therefore
//! means solving one linear system per cube — one equation per *care* bit
//! — so the seed length only needs to cover `s_max`, the largest number of
//! care bits in any cube. Cubes whose system is unsolvable ship raw.

use crate::gf2::{solve, Gf2Row, Solution};
use crate::lfsr::Lfsr;
use ninec_testdata::bits::BitVec;
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::TritVec;
use std::fmt;

/// How one pattern is carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternEncoding {
    /// An LFSR seed (register-width bits on the ATE).
    Seed(u64),
    /// Raw pattern fallback (the cube zero-filled), for unsolvable cubes.
    Raw(BitVec),
}

/// Result of reseeding-compressing a test set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReseedResult {
    /// LFSR register width.
    pub width: usize,
    /// Scan length the seeds expand to.
    pub pattern_len: usize,
    /// One encoding per pattern.
    pub encodings: Vec<PatternEncoding>,
}

impl ReseedResult {
    /// ATE bits: a 1-bit seed/raw flag per pattern, plus the seed or the
    /// raw load.
    pub fn compressed_bits(&self) -> usize {
        self.encodings
            .iter()
            .map(|e| {
                1 + match e {
                    PatternEncoding::Seed(_) => self.width,
                    PatternEncoding::Raw(bits) => bits.len(),
                }
            })
            .sum()
    }

    /// Number of cubes that fell back to raw transfer.
    pub fn raw_fallbacks(&self) -> usize {
        self.encodings
            .iter()
            .filter(|e| matches!(e, PatternEncoding::Raw(_)))
            .count()
    }

    /// Compression ratio against `|T_D| = patterns · pattern_len`.
    pub fn compression_ratio(&self) -> f64 {
        let td = (self.encodings.len() * self.pattern_len) as f64;
        if td == 0.0 {
            return 0.0;
        }
        (td - self.compressed_bits() as f64) / td * 100.0
    }
}

impl fmt::Display for ReseedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LFSR-{} reseeding: {} patterns -> {} bits (CR {:.1}%, {} raw fallbacks)",
            self.width,
            self.encodings.len(),
            self.compressed_bits(),
            self.compression_ratio(),
            self.raw_fallbacks()
        )
    }
}

/// The reseeding encoder/expander for a fixed LFSR.
///
/// # Examples
///
/// ```
/// use ninec_bist::reseed::ReseedEncoder;
/// use ninec_testdata::cube::TestSet;
///
/// // Sparse cubes: a 12-bit seed covers up to ~12 care bits per cube.
/// let cubes = TestSet::from_patterns(16, [
///     "XX1XXXXX0XXXXXX1",
///     "0XXXXX1XXXXXXXX0",
/// ])?;
/// let encoder = ReseedEncoder::new(12).expect("tabulated width");
/// let result = encoder.encode_set(&cubes);
/// assert_eq!(result.raw_fallbacks(), 0);
/// let expanded = encoder.expand(&result);
/// assert!(expanded.covers(&cubes));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReseedEncoder {
    width: usize,
}

impl ReseedEncoder {
    /// Creates an encoder with a primitive-polynomial LFSR of `width`
    /// cells. Returns `None` for widths without a tabulated polynomial.
    pub fn new(width: usize) -> Option<Self> {
        Lfsr::with_primitive_taps(width)?;
        Some(Self { width })
    }

    /// Register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The output sequences of the seed basis vectors: `basis[i][j]` is
    /// output bit `j` under seed `e_i` — column `i` of the linear map.
    fn basis_outputs(&self, len: usize) -> Vec<Vec<bool>> {
        (0..self.width)
            .map(|i| {
                Lfsr::with_primitive_taps(self.width)
                    .expect("validated in new()")
                    .seeded(1u64 << i)
                    .output_sequence(len)
            })
            .collect()
    }

    /// Compresses a test set: one seed (or raw fallback) per cube.
    pub fn encode_set(&self, set: &TestSet) -> ReseedResult {
        let len = set.pattern_len();
        let basis = self.basis_outputs(len);
        let encodings = set
            .patterns()
            .map(|cube| self.encode_cube(&cube, &basis))
            .collect();
        ReseedResult {
            width: self.width,
            pattern_len: len,
            encodings,
        }
    }

    fn encode_cube(&self, cube: &TritVec, basis: &[Vec<bool>]) -> PatternEncoding {
        let mut rows = Vec::new();
        for (j, t) in cube.iter().enumerate() {
            let Some(value) = t.value() else { continue };
            let mut row = Gf2Row::zero(self.width);
            for (i, b) in basis.iter().enumerate() {
                if b[j] {
                    row.set(i, true);
                }
            }
            row.rhs = value;
            rows.push(row);
        }
        match solve(rows, self.width) {
            Solution::Solved(assignment) => {
                let mut seed = 0u64;
                for (i, &bit) in assignment.iter().enumerate() {
                    if bit {
                        seed |= 1 << i;
                    }
                }
                PatternEncoding::Seed(seed)
            }
            Solution::Inconsistent => {
                let raw = ninec_testdata::fill::fill_trits(
                    cube,
                    ninec_testdata::fill::FillStrategy::Zero,
                )
                .to_bitvec()
                .expect("zero fill fully specifies the cube");
                PatternEncoding::Raw(raw)
            }
        }
    }

    /// *Partial* reseeding (Krishna/Jas/Touba-style, reference \[20\] of the
    /// 9C paper): each pattern is cut into windows of `window` cells and
    /// every window is seeded independently, so the seed width only has to
    /// cover a window's care bits rather than a whole pattern's.
    ///
    /// Returns one [`ReseedResult`] whose "patterns" are the windows; use
    /// [`expand_windowed`](Self::expand_windowed) to reassemble.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0.
    pub fn encode_set_windowed(&self, set: &TestSet, window: usize) -> ReseedResult {
        assert!(window > 0, "window must be positive");
        let len = set.pattern_len();
        let basis = self.basis_outputs(window.min(len));
        let mut encodings = Vec::new();
        for cube in set.patterns() {
            for start in (0..len).step_by(window) {
                let end = (start + window).min(len);
                let slice = cube.slice(start, end);
                // Windows at the tail may be shorter; reuse the basis
                // prefix (output bit j only depends on the first j steps).
                encodings.push(self.encode_cube(&slice, &basis));
            }
        }
        ReseedResult {
            width: self.width,
            pattern_len: window.min(len),
            encodings,
        }
    }

    /// Reassembles the output of
    /// [`encode_set_windowed`](Self::encode_set_windowed) into full
    /// patterns of `pattern_len` cells.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or if the window count does not tile the
    /// requested geometry.
    pub fn expand_windowed(
        &self,
        result: &ReseedResult,
        pattern_len: usize,
        window: usize,
    ) -> TestSet {
        assert_eq!(result.width, self.width, "encoder/result width mismatch");
        let windows_per_pattern = pattern_len.div_ceil(window);
        assert_eq!(
            result.encodings.len() % windows_per_pattern,
            0,
            "window count does not tile the pattern geometry"
        );
        let mut set = TestSet::new(pattern_len);
        let mut pattern = TritVec::new();
        for (i, enc) in result.encodings.iter().enumerate() {
            let pos_in_pattern = (i % windows_per_pattern) * window;
            let this_window = window.min(pattern_len - pos_in_pattern);
            let bits: BitVec = match enc {
                PatternEncoding::Seed(seed) => Lfsr::with_primitive_taps(self.width)
                    .expect("validated in new()")
                    .seeded(*seed)
                    .output_sequence(this_window)
                    .into_iter()
                    .collect(),
                PatternEncoding::Raw(raw) => raw.clone(),
            };
            pattern.extend_from_tritvec(&TritVec::from(&bits));
            if (i + 1) % windows_per_pattern == 0 {
                set.push_pattern(&pattern)
                    .expect("windows tile the pattern");
                pattern = TritVec::new();
            }
        }
        set
    }

    /// Expands a [`ReseedResult`] back into the fully specified patterns
    /// the scan chain receives.
    ///
    /// # Panics
    ///
    /// Panics if `result.width` differs from the encoder's.
    pub fn expand(&self, result: &ReseedResult) -> TestSet {
        assert_eq!(result.width, self.width, "encoder/result width mismatch");
        let mut set = TestSet::new(result.pattern_len);
        for enc in &result.encodings {
            let bits: BitVec = match enc {
                PatternEncoding::Seed(seed) => Lfsr::with_primitive_taps(self.width)
                    .expect("validated in new()")
                    .seeded(*seed)
                    .output_sequence(result.pattern_len)
                    .into_iter()
                    .collect(),
                PatternEncoding::Raw(bits) => bits.clone(),
            };
            set.push_pattern(&TritVec::from(&bits))
                .expect("expanded pattern has the set's length");
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_testdata::gen::SyntheticProfile;

    #[test]
    fn sparse_cubes_all_get_seeds() {
        // ~6 care bits per 64-cell cube on average (the densest cubes
        // carry ~2x); a 32-bit LFSR clears the classic "s_max + 20"
        // solvability margin.
        let mut profile = SyntheticProfile::new("rs", 30, 64, 0.9);
        profile.mean_care_run = 2.0;
        let cubes = profile.generate(3);
        let s_max = cubes.patterns().map(|p| p.count_care()).max().unwrap_or(0);
        assert!(
            s_max + 20 <= 64,
            "profile produced unexpectedly dense cubes ({s_max})"
        );
        let encoder = ReseedEncoder::new(64).unwrap();
        let result = encoder.encode_set(&cubes);
        assert_eq!(result.raw_fallbacks(), 0, "{result}");
        assert!(encoder.expand(&result).covers(&cubes));
        // 64 cells -> 65 bits/pattern raw vs 65 seeded? No: 1 + 64 = 65 vs
        // 1 + 64... with pattern_len == width, CR is ~0 here; the point of
        // this test is solvability, not CR.
    }

    #[test]
    fn dense_cubes_fall_back_raw() {
        // Fully specified cubes with more care bits than LFSR cells are
        // (almost) never reachable: expect fallbacks, and correctness
        // regardless.
        let cubes = TestSet::from_patterns(
            16,
            ["0101010101010101", "1111000011110000", "0011001100110011"],
        )
        .unwrap();
        let encoder = ReseedEncoder::new(8).unwrap();
        let result = encoder.encode_set(&cubes);
        assert!(encoder.expand(&result).covers(&cubes));
        assert!(result.raw_fallbacks() >= 1);
    }

    #[test]
    fn wider_lfsr_reduces_fallbacks() {
        let profile = SyntheticProfile::new("w", 40, 80, 0.8);
        let cubes = profile.generate(7);
        let narrow = ReseedEncoder::new(8).unwrap().encode_set(&cubes);
        let wide = ReseedEncoder::new(32).unwrap().encode_set(&cubes);
        assert!(wide.raw_fallbacks() <= narrow.raw_fallbacks());
        assert!(ReseedEncoder::new(32).unwrap().expand(&wide).covers(&cubes));
    }

    #[test]
    fn compressed_size_accounting() {
        let cubes = TestSet::from_patterns(8, ["XXXXXXX1", "11111111"]).unwrap();
        let encoder = ReseedEncoder::new(4).unwrap();
        let result = encoder.encode_set(&cubes);
        // Pattern 1: seed (1 + 4 bits). Pattern 2 has 8 care bits over 4
        // unknowns; if unsolvable it costs 1 + 8.
        let expect: usize = result
            .encodings
            .iter()
            .map(|e| match e {
                PatternEncoding::Seed(_) => 5,
                PatternEncoding::Raw(_) => 9,
            })
            .sum();
        assert_eq!(result.compressed_bits(), expect);
    }

    #[test]
    fn untabulated_width_rejected() {
        assert!(ReseedEncoder::new(13).is_none());
    }

    #[test]
    fn windowed_reseeding_covers_dense_sets() {
        // Mintest-like density (72% X) defeats whole-pattern reseeding at
        // u64 widths; 32-cell windows with a 24-bit seed handle it.
        let cubes = SyntheticProfile::new("win", 25, 96, 0.72).generate(5);
        let encoder = ReseedEncoder::new(24).unwrap();
        let result = encoder.encode_set_windowed(&cubes, 32);
        let expanded = encoder.expand_windowed(&result, 96, 32);
        assert!(expanded.covers(&cubes));
        assert_eq!(expanded.num_patterns(), 25);
    }

    #[test]
    fn windowed_reseeding_handles_ragged_tail_windows() {
        let cubes = SyntheticProfile::new("rag", 8, 50, 0.8).generate(2);
        let encoder = ReseedEncoder::new(16).unwrap();
        let result = encoder.encode_set_windowed(&cubes, 16); // 16+16+16+2
        let expanded = encoder.expand_windowed(&result, 50, 16);
        assert!(expanded.covers(&cubes));
        assert_eq!(expanded.pattern_len(), 50);
    }

    #[test]
    fn smaller_windows_trade_size_for_solvability() {
        let cubes = SyntheticProfile::new("tr", 15, 120, 0.75).generate(9);
        let encoder = ReseedEncoder::new(20).unwrap();
        let small = encoder.encode_set_windowed(&cubes, 24);
        let large = encoder.encode_set_windowed(&cubes, 60);
        // Smaller windows: fewer fallbacks per window but more seeds.
        let small_rate = small.raw_fallbacks() as f64 / small.encodings.len() as f64;
        let large_rate = large.raw_fallbacks() as f64 / large.encodings.len() as f64;
        assert!(small_rate <= large_rate + 1e-9);
    }

    #[test]
    fn empty_set() {
        let encoder = ReseedEncoder::new(8).unwrap();
        let result = encoder.encode_set(&TestSet::new(8));
        assert_eq!(result.compressed_bits(), 0);
        assert_eq!(result.compression_ratio(), 0.0);
    }
}

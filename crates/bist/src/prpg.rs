//! Pseudo-random pattern testing — the BIST methodology the 9C paper's
//! introduction argues against for large circuits.
//!
//! An LFSR feeds the scan view with pseudo-random patterns; the coverage
//! curve flattens as only random-pattern-resistant faults remain, which is
//! exactly why deterministic test sets (and hence test-data compression)
//! are needed.

use crate::lfsr::Lfsr;
use ninec_circuit::Circuit;
use ninec_fsim::fault::StuckFault;
use ninec_fsim::fsim::fault_simulate;
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::{Trit, TritVec};

/// Generates `count` pseudo-random fully specified scan patterns for the
/// circuit's scan view from a primitive LFSR seeded with `seed`.
///
/// # Panics
///
/// Panics if no primitive polynomial is tabulated for `lfsr_width` or the
/// seed does not fit.
pub fn random_patterns(circuit: &Circuit, lfsr_width: usize, seed: u64, count: usize) -> TestSet {
    let width = circuit.scan_view().cube_width();
    let mut lfsr = Lfsr::with_primitive_taps(lfsr_width)
        .unwrap_or_else(|| panic!("no tabulated polynomial for width {lfsr_width}"))
        .seeded(seed);
    let mut set = TestSet::new(width);
    for _ in 0..count {
        let cube: TritVec = lfsr
            .output_sequence(width)
            .into_iter()
            .map(Trit::from)
            .collect();
        set.push_pattern(&cube)
            .expect("generated pattern has scan width");
    }
    set
}

/// One point of a random-test coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Patterns applied so far.
    pub patterns: usize,
    /// Collapsed stuck-at coverage, percent.
    pub coverage_percent: f64,
}

/// Fault coverage of pseudo-random testing as a function of pattern
/// count, sampled at `checkpoints` (which must be ascending; the largest
/// sets the total patterns applied).
///
/// # Examples
///
/// ```
/// use ninec_bist::prpg::random_coverage_curve;
/// use ninec_circuit::bench::{parse_bench, C17};
/// use ninec_fsim::fault::collapsed_faults;
///
/// let c17 = parse_bench(C17)?;
/// let faults = collapsed_faults(&c17);
/// let curve = random_coverage_curve(&c17, &faults, 16, 1, &[4, 16, 64]);
/// assert!(curve.last().unwrap().coverage_percent
///          >= curve.first().unwrap().coverage_percent);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn random_coverage_curve(
    circuit: &Circuit,
    faults: &[StuckFault],
    lfsr_width: usize,
    seed: u64,
    checkpoints: &[usize],
) -> Vec<CoveragePoint> {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    let total = *checkpoints.last().expect("non-empty");
    let patterns = random_patterns(circuit, lfsr_width, seed, total);
    let sim = fault_simulate(circuit, &patterns, faults);
    checkpoints
        .iter()
        .map(|&cp| {
            let detected = sim
                .first_detection
                .iter()
                .filter(|d| d.is_some_and(|p| p < cp))
                .count();
            CoveragePoint {
                patterns: cp,
                coverage_percent: detected as f64 / faults.len().max(1) as f64 * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_circuit::bench::{parse_bench, C17, S27};
    use ninec_circuit::random::RandomCircuitSpec;
    use ninec_fsim::fault::collapsed_faults;

    #[test]
    fn patterns_are_deterministic_and_specified() {
        let s27 = parse_bench(S27).unwrap();
        let a = random_patterns(&s27, 16, 7, 20);
        let b = random_patterns(&s27, 16, 7, 20);
        assert_eq!(a, b);
        assert_eq!(a.x_density(), 0.0);
        assert_ne!(a, random_patterns(&s27, 16, 8, 20));
    }

    #[test]
    fn coverage_is_monotone_in_pattern_count() {
        let s27 = parse_bench(S27).unwrap();
        let faults = collapsed_faults(&s27);
        let curve = random_coverage_curve(&s27, &faults, 16, 3, &[1, 4, 16, 64, 128]);
        for w in curve.windows(2) {
            assert!(w[1].coverage_percent >= w[0].coverage_percent);
        }
        assert!(curve.last().unwrap().coverage_percent > 80.0);
    }

    #[test]
    fn small_circuits_saturate_quickly() {
        let c17 = parse_bench(C17).unwrap();
        let faults = collapsed_faults(&c17);
        let curve = random_coverage_curve(&c17, &faults, 12, 1, &[64]);
        assert_eq!(
            curve[0].coverage_percent, 100.0,
            "c17 is easy for random test"
        );
    }

    #[test]
    fn random_resistant_faults_remain_on_larger_circuits() {
        // The motivation claim: on a bigger circuit, the curve flattens
        // below the deterministic (ATPG) coverage at practical counts.
        use ninec_atpg::generate::{generate_tests, AtpgConfig};
        let c = RandomCircuitSpec::new("resist", 10, 14, 220).generate(23);
        let faults = collapsed_faults(&c);
        let curve = random_coverage_curve(&c, &faults, 24, 5, &[64, 256]);
        let atpg = generate_tests(&c, AtpgConfig::default());
        assert!(
            atpg.coverage_percent() >= curve.last().unwrap().coverage_percent,
            "ATPG {:.1}% vs random {:.1}%",
            atpg.coverage_percent(),
            curve.last().unwrap().coverage_percent
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_checkpoints_panic() {
        let c17 = parse_bench(C17).unwrap();
        let faults = collapsed_faults(&c17);
        let _ = random_coverage_curve(&c17, &faults, 12, 1, &[16, 4]);
    }
}

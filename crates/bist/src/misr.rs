//! Multiple-input signature registers (MISR) — response compaction for
//! BIST.
//!
//! A MISR folds one word of circuit responses into its state every cycle;
//! after the test, the residue (*signature*) is compared against the
//! fault-free reference. With a primitive feedback polynomial the aliasing
//! probability approaches `2^-width`.

use crate::lfsr::primitive_taps;
use std::fmt;

/// A MISR of up to 64 cells with external-XOR feedback.
///
/// # Examples
///
/// ```
/// use ninec_bist::misr::Misr;
///
/// let mut good = Misr::with_primitive_taps(16).expect("tabulated width");
/// let mut bad = good.clone();
/// for t in 0..100u64 {
///     let response = t.wrapping_mul(0x9e37) & 0xFFFF;
///     good.absorb(response);
///     // One corrupted response word.
///     bad.absorb(response ^ u64::from(t == 57));
/// }
/// assert_ne!(good.signature(), bad.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: usize,
    taps: u64,
    state: u64,
}

impl Misr {
    /// Creates a zero-initialized MISR with an explicit tap mask.
    ///
    /// # Panics
    ///
    /// Panics on a zero tap mask or out-of-range width (see
    /// [`Lfsr::new`](crate::lfsr::Lfsr::new) for the conventions).
    pub fn new(width: usize, taps: u64) -> Self {
        assert!((1..=64).contains(&width), "width {width} out of range");
        assert!(
            width == 64 || taps < 1u64 << width,
            "tap mask 0x{taps:x} exceeds width {width}"
        );
        assert!(taps != 0, "tap mask must be non-zero");
        Self {
            width,
            taps,
            state: 0,
        }
    }

    /// Creates a MISR with a known-primitive polynomial for `width`.
    pub fn with_primitive_taps(width: usize) -> Option<Self> {
        primitive_taps(width).map(|taps| Self::new(width, taps))
    }

    /// Register width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Folds one response word (low `width` bits) into the state.
    ///
    /// # Panics
    ///
    /// Panics if `word` has bits outside the register.
    pub fn absorb(&mut self, word: u64) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        assert!(
            word & !mask == 0,
            "response word 0x{word:x} exceeds width {}",
            self.width
        );
        let feedback = (self.state & self.taps).count_ones() as u64 & 1;
        self.state = ((self.state << 1 | feedback) & mask) ^ word;
    }

    /// Folds a slice of response bits, one cell per bit, padding the last
    /// word with zeros.
    pub fn absorb_bits(&mut self, bits: &[bool]) {
        for chunk in bits.chunks(self.width) {
            let mut word = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                if b {
                    word |= (b as u64) << i;
                }
            }
            self.absorb(word);
        }
    }

    /// The accumulated signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets the register to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

impl fmt::Display for Misr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MISR-{} signature 0x{:x}", self.width, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Misr::with_primitive_taps(16).unwrap();
        let mut b = Misr::with_primitive_taps(16).unwrap();
        a.absorb(0x1234);
        a.absorb(0x5678);
        b.absorb(0x5678);
        b.absorb(0x1234);
        assert_ne!(a.signature(), b.signature(), "MISRs are order-sensitive");
        let mut c = Misr::with_primitive_taps(16).unwrap();
        c.absorb(0x1234);
        c.absorb(0x5678);
        assert_eq!(a.signature(), c.signature());
    }

    #[test]
    fn single_bit_errors_never_alias() {
        // A single corrupted bit always changes the signature (linearity:
        // the error signature is the error word run forward, nonzero).
        let base: Vec<u64> = (0..50)
            .map(|t: u64| t.wrapping_mul(0xABCD) & 0xFFFF)
            .collect();
        let mut good = Misr::with_primitive_taps(16).unwrap();
        for &w in &base {
            good.absorb(w);
        }
        for err_t in [0usize, 10, 49] {
            for err_bit in [0, 7, 15] {
                let mut bad = Misr::with_primitive_taps(16).unwrap();
                for (t, &w) in base.iter().enumerate() {
                    bad.absorb(w ^ if t == err_t { 1 << err_bit } else { 0 });
                }
                assert_ne!(good.signature(), bad.signature(), "t={err_t} bit={err_bit}");
            }
        }
    }

    #[test]
    fn error_cancellation_is_possible_but_signature_is_linear() {
        // The classic aliasing mechanism: injecting the same error word at
        // time t and its shifted image at t+1 can cancel. Verify linearity
        // instead: sig(r ^ e) = sig(r) ^ sig(e).
        let responses: Vec<u64> = (0..30).map(|t: u64| t * 37 % 256).collect();
        let errors: Vec<u64> = (0..30)
            .map(|t: u64| t.is_multiple_of(7) as u64 * 0x80)
            .collect();
        let run = |words: &[u64]| {
            let mut m = Misr::with_primitive_taps(8).unwrap();
            for &w in words {
                m.absorb(w);
            }
            m.signature()
        };
        let mixed: Vec<u64> = responses.iter().zip(&errors).map(|(r, e)| r ^ e).collect();
        assert_eq!(run(&mixed), run(&responses) ^ run(&errors));
    }

    #[test]
    fn absorb_bits_packs_lanes() {
        let mut a = Misr::with_primitive_taps(8).unwrap();
        a.absorb_bits(&[true, false, true]); // word 0b101
        let mut b = Misr::with_primitive_taps(8).unwrap();
        b.absorb(0b101);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn reset_clears() {
        let mut m = Misr::with_primitive_taps(8).unwrap();
        m.absorb(0xAB);
        m.reset();
        assert_eq!(m.signature(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn oversized_word_panics() {
        let mut m = Misr::with_primitive_taps(8).unwrap();
        m.absorb(0x100);
    }
}

//! Quine–McCluskey two-level minimization.
//!
//! Exact prime-implicant generation followed by essential-prime selection
//! and a greedy cover of the remainder. Intended for the small functions
//! that arise from FSM synthesis (≲ 16 variables), where it is exact
//! enough and fast enough.

use std::collections::BTreeSet;
use std::fmt;

/// A product term over `n` variables: for each variable, either a literal
/// (bit of `value`, where `mask` is 0) or absent (`mask` bit 1).
///
/// # Examples
///
/// ```
/// use ninec_synth::qm::Implicant;
///
/// // x1·x̄0 over 3 variables: value 0b010, mask 0b100 (x2 absent).
/// let imp = Implicant { value: 0b010, mask: 0b100 };
/// assert!(imp.covers(0b010));
/// assert!(imp.covers(0b110));
/// assert!(!imp.covers(0b011));
/// assert_eq!(imp.literals(3), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Implicant {
    /// Literal polarities on the non-masked positions.
    pub value: u32,
    /// 1-bits mark variables absent from the product term.
    pub mask: u32,
}

impl Implicant {
    /// `true` if the implicant covers `minterm`.
    pub fn covers(self, minterm: u32) -> bool {
        (minterm ^ self.value) & !self.mask == 0
    }

    /// Number of literals in the product term over `n` variables.
    pub fn literals(self, n: usize) -> usize {
        n - (self.mask & ((1u32 << n) - 1)).count_ones() as usize
    }

    /// Tries to merge with another implicant differing in exactly one
    /// literal position.
    fn combine(self, other: Implicant) -> Option<Implicant> {
        if self.mask != other.mask {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() == 1 {
            Some(Implicant {
                value: self.value & !diff,
                mask: self.mask | diff,
            })
        } else {
            None
        }
    }

    /// Renders the implicant as a cube string (`1`, `0`, `-` per variable,
    /// MSB first).
    pub fn to_cube_string(self, n: usize) -> String {
        (0..n)
            .rev()
            .map(|i| {
                if self.mask >> i & 1 == 1 {
                    '-'
                } else if self.value >> i & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl fmt::Display for Implicant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Implicant(value={:b}, mask={:b})", self.value, self.mask)
    }
}

/// A minimized sum-of-products cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// Number of input variables.
    pub num_vars: usize,
    /// The selected implicants (empty for the constant-0 function).
    pub implicants: Vec<Implicant>,
}

impl Cover {
    /// Evaluates the cover on an input vector.
    pub fn eval(&self, input: u32) -> bool {
        self.implicants.iter().any(|imp| imp.covers(input))
    }

    /// Total literal count (classic two-level cost).
    pub fn literal_count(&self) -> usize {
        self.implicants
            .iter()
            .map(|i| i.literals(self.num_vars))
            .sum()
    }

    /// `true` if the cover is the constant-1 function.
    pub fn is_constant_one(&self) -> bool {
        self.implicants
            .iter()
            .any(|i| i.literals(self.num_vars) == 0)
    }
}

/// Minimizes the function that is 1 on `on_set`, don't-care on `dc_set`,
/// and 0 elsewhere, over `num_vars` variables.
///
/// # Panics
///
/// Panics if `num_vars > 20` (the exact method would blow up) or if any
/// minterm is out of range.
///
/// # Examples
///
/// ```
/// use ninec_synth::qm::minimize;
///
/// // f(a,b) = a XOR b needs two products; f(a,b) = a OR b needs two
/// // 1-literal products.
/// let xor = minimize(2, &[0b01, 0b10], &[]);
/// assert_eq!(xor.implicants.len(), 2);
/// assert_eq!(xor.literal_count(), 4);
/// let or = minimize(2, &[0b01, 0b10, 0b11], &[]);
/// assert_eq!(or.literal_count(), 2);
/// ```
pub fn minimize(num_vars: usize, on_set: &[u32], dc_set: &[u32]) -> Cover {
    assert!(
        num_vars <= 20,
        "QM is exact but exponential; {num_vars} vars is too many"
    );
    let limit = if num_vars == 32 {
        u32::MAX
    } else {
        (1u32 << num_vars) - 1
    };
    for &m in on_set.iter().chain(dc_set) {
        assert!(m <= limit, "minterm {m} out of range for {num_vars} vars");
    }
    if on_set.is_empty() {
        return Cover {
            num_vars,
            implicants: vec![],
        };
    }

    // Stage 1: prime implicants by iterative combination.
    let mut current: BTreeSet<Implicant> = on_set
        .iter()
        .chain(dc_set)
        .map(|&m| Implicant { value: m, mask: 0 })
        .collect();
    let mut primes: BTreeSet<Implicant> = BTreeSet::new();
    while !current.is_empty() {
        let items: Vec<Implicant> = current.iter().copied().collect();
        let mut combined_flags = vec![false; items.len()];
        let mut next: BTreeSet<Implicant> = BTreeSet::new();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                if let Some(c) = items[i].combine(items[j]) {
                    combined_flags[i] = true;
                    combined_flags[j] = true;
                    next.insert(c);
                }
            }
        }
        for (item, combined) in items.iter().zip(&combined_flags) {
            if !combined {
                primes.insert(*item);
            }
        }
        current = next;
    }

    // Stage 2: cover the on-set (don't-cares need no cover).
    let primes: Vec<Implicant> = primes.into_iter().collect();
    let mut uncovered: BTreeSet<u32> = on_set.iter().copied().collect();
    let mut chosen: Vec<Implicant> = Vec::new();

    // Essential primes first.
    loop {
        let mut essential: Option<Implicant> = None;
        'scan: for &m in &uncovered {
            let mut covering = primes.iter().filter(|p| p.covers(m));
            if let (Some(&p), None) = (covering.next(), covering.next()) {
                essential = Some(p);
                break 'scan;
            }
        }
        match essential {
            Some(p) => {
                uncovered.retain(|&m| !p.covers(m));
                chosen.push(p);
            }
            None => break,
        }
    }
    // Greedy cover for the rest: most new minterms, fewest literals.
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .filter(|p| !chosen.contains(p))
            .max_by_key(|p| {
                let gain = uncovered.iter().filter(|&&m| p.covers(m)).count();
                (gain, p.mask.count_ones())
            })
            .copied()
            .expect("primes cover every on-set minterm");
        uncovered.retain(|&m| !best.covers(m));
        chosen.push(best);
    }
    chosen.sort_unstable();
    Cover {
        num_vars,
        implicants: chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check: the cover equals the spec on every input.
    fn verify(num_vars: usize, on: &[u32], dc: &[u32], cover: &Cover) {
        for input in 0..1u32 << num_vars {
            let got = cover.eval(input);
            if on.contains(&input) {
                assert!(got, "input {input:b} must be 1");
            } else if !dc.contains(&input) {
                assert!(!got, "input {input:b} must be 0");
            }
        }
    }

    #[test]
    fn constant_functions() {
        let zero = minimize(3, &[], &[]);
        assert!(zero.implicants.is_empty());
        assert!(!zero.eval(0));
        let one = minimize(2, &[0, 1, 2, 3], &[]);
        assert!(one.is_constant_one());
        assert_eq!(one.literal_count(), 0);
    }

    #[test]
    fn classic_textbook_example() {
        // f = Σm(4,8,10,11,12,15) + d(9,14) over 4 vars minimizes to
        // 3 products / 8 literals (one optimal solution).
        let on = [4, 8, 10, 11, 12, 15];
        let dc = [9, 14];
        let cover = minimize(4, &on, &dc);
        verify(4, &on, &dc, &cover);
        assert!(cover.implicants.len() <= 3, "{:?}", cover.implicants);
        assert!(cover.literal_count() <= 8);
    }

    #[test]
    fn xor_is_irreducible() {
        let on = [0b01, 0b10];
        let cover = minimize(2, &on, &[]);
        verify(2, &on, &[], &cover);
        assert_eq!(cover.literal_count(), 4);
    }

    #[test]
    fn dont_cares_shrink_covers() {
        // f = Σm(1) + d(3): x0 alone suffices (1 literal) instead of x0·x̄1.
        let with_dc = minimize(2, &[1], &[3]);
        let without = minimize(2, &[1], &[]);
        assert!(with_dc.literal_count() < without.literal_count());
        verify(2, &[1], &[3], &with_dc);
    }

    #[test]
    fn random_functions_verified_exhaustively() {
        // Deterministic pseudo-random specs over 5 vars.
        let mut state = 0x2545_f491u32;
        for _ in 0..25 {
            let mut on = Vec::new();
            let mut dc = Vec::new();
            for m in 0..32u32 {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                match state >> 28 & 0b11 {
                    0 => on.push(m),
                    1 => dc.push(m),
                    _ => {}
                }
            }
            let cover = minimize(5, &on, &dc);
            verify(5, &on, &dc, &cover);
        }
    }

    #[test]
    fn cube_string_rendering() {
        let imp = Implicant {
            value: 0b010,
            mask: 0b100,
        };
        assert_eq!(imp.to_cube_string(3), "-10");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_minterm_panics() {
        let _ = minimize(2, &[4], &[]);
    }
}

//! Finite-state-machine synthesis and area estimation.
//!
//! The 9C paper reports that the decoder FSM, synthesized with a
//! commercial tool, is tiny and independent of both `K` and the test set.
//! This module reproduces that claim with an open flow: binary state
//! encoding, Quine–McCluskey minimization of every next-state and output
//! bit, and a literal-based gate-equivalent estimate.

use crate::qm::{minimize, Cover};
use std::fmt;

/// A Mealy finite-state machine given as a complete transition function.
///
/// States are `0..num_states`; inputs are `num_input_bits`-wide vectors;
/// outputs are packed into a `u64`.
///
/// # Examples
///
/// A 2-state toggler that mirrors its input:
///
/// ```
/// use ninec_synth::fsm::Fsm;
///
/// let fsm = Fsm::from_fn("toggle", 2, 1, 1, |state, input| {
///     ((state + 1) % 2, u64::from(input & 1))
/// });
/// assert_eq!(fsm.next_state(0, 1), 1);
/// let report = fsm.synthesize();
/// assert!(report.gate_equivalents() > 0.0);
/// ```
#[derive(Clone)]
pub struct Fsm {
    name: String,
    num_states: usize,
    num_input_bits: usize,
    num_output_bits: usize,
    /// `table[state << num_input_bits | input] = (next, outputs)`.
    table: Vec<(usize, u64)>,
}

impl Fsm {
    /// Builds an FSM by tabulating `f(state, input) -> (next_state,
    /// outputs)` over the full state/input product.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero/oversized or `f` returns an invalid
    /// next state.
    pub fn from_fn<F>(
        name: &str,
        num_states: usize,
        num_input_bits: usize,
        num_output_bits: usize,
        f: F,
    ) -> Self
    where
        F: Fn(usize, u32) -> (usize, u64),
    {
        assert!(num_states >= 1, "need at least one state");
        assert!(
            num_input_bits <= 8,
            "tabulated build supports up to 8 input bits"
        );
        assert!(num_output_bits <= 64, "outputs are packed in a u64");
        let mut table = Vec::with_capacity(num_states << num_input_bits);
        for state in 0..num_states {
            for input in 0..1u32 << num_input_bits {
                let (next, outputs) = f(state, input);
                assert!(
                    next < num_states,
                    "f({state}, {input}) -> invalid state {next}"
                );
                table.push((next, outputs));
            }
        }
        Self {
            name: name.to_owned(),
            num_states,
            num_input_bits,
            num_output_bits,
            table,
        }
    }

    /// FSM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// State-register width under binary encoding.
    pub fn state_bits(&self) -> usize {
        (usize::BITS - (self.num_states - 1).leading_zeros()) as usize
    }

    /// The tabulated next state.
    pub fn next_state(&self, state: usize, input: u32) -> usize {
        self.table[(state << self.num_input_bits) | input as usize].0
    }

    /// The tabulated outputs.
    pub fn outputs(&self, state: usize, input: u32) -> u64 {
        self.table[(state << self.num_input_bits) | input as usize].1
    }

    /// Synthesizes the machine: one minimized cover per next-state bit and
    /// per output bit, over `state_bits + num_input_bits` variables.
    /// Unreachable state codes become don't-cares.
    pub fn synthesize(&self) -> SynthReport {
        let sbits = self.state_bits().max(1);
        let vars = sbits + self.num_input_bits;
        let mut functions = Vec::new();

        let mut build = |label: String, bit_of: &dyn Fn(usize, u32) -> bool| {
            let mut on = Vec::new();
            let mut dc = Vec::new();
            for code in 0..1usize << sbits {
                for input in 0..1u32 << self.num_input_bits {
                    let vector = (code << self.num_input_bits) as u32 | input;
                    if code >= self.num_states {
                        dc.push(vector);
                    } else if bit_of(code, input) {
                        on.push(vector);
                    }
                }
            }
            let cover = minimize(vars, &on, &dc);
            functions.push(SynthFunction { label, cover });
        };

        for bit in 0..sbits {
            build(format!("next_state[{bit}]"), &|s, i| {
                self.next_state(s, i) >> bit & 1 == 1
            });
        }
        for bit in 0..self.num_output_bits {
            build(format!("out[{bit}]"), &|s, i| {
                self.outputs(s, i) >> bit & 1 == 1
            });
        }
        SynthReport {
            name: self.name.clone(),
            state_bits: sbits,
            input_bits: self.num_input_bits,
            functions,
        }
    }
}

impl fmt::Debug for Fsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Fsm({}: {} states, {} input bits, {} output bits)",
            self.name, self.num_states, self.num_input_bits, self.num_output_bits
        )
    }
}

/// One synthesized combinational function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthFunction {
    /// Human-readable label (`next_state[0]`, `out[3]`, …).
    pub label: String,
    /// The minimized cover.
    pub cover: Cover,
}

/// Area report for a synthesized FSM.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// FSM name.
    pub name: String,
    /// State-register width.
    pub state_bits: usize,
    /// Input-vector width.
    pub input_bits: usize,
    /// Minimized next-state and output functions.
    pub functions: Vec<SynthFunction>,
}

impl SynthReport {
    /// Total two-level literal count across all functions.
    pub fn total_literals(&self) -> usize {
        self.functions.iter().map(|f| f.cover.literal_count()).sum()
    }

    /// Total product terms across all functions.
    pub fn total_products(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.cover.implicants.len())
            .sum()
    }

    /// Gate-equivalent estimate (2-input-NAND units) using the standard
    /// two-level mapping: an `n`-literal product costs `n − 1` GE, an
    /// `m`-product OR costs `m − 1` GE, plus half a GE per literal for
    /// inversions/buffering, plus 4 GE per state flip-flop.
    pub fn gate_equivalents(&self) -> f64 {
        let mut ge = 0.0;
        for f in &self.functions {
            let products = f.cover.implicants.len();
            for imp in &f.cover.implicants {
                let lits = imp.literals(f.cover.num_vars);
                ge += lits.saturating_sub(1) as f64;
            }
            ge += products.saturating_sub(1) as f64;
            ge += f.cover.literal_count() as f64 * 0.5;
        }
        ge + self.state_bits as f64 * 4.0
    }
}

impl fmt::Display for SynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} state bits + {} input bits, {} functions",
            self.name,
            self.state_bits,
            self.input_bits,
            self.functions.len()
        )?;
        for func in &self.functions {
            writeln!(
                f,
                "  {:>14}: {} products, {} literals",
                func.label,
                func.cover.implicants.len(),
                func.cover.literal_count()
            )?;
        }
        write!(
            f,
            "  total: {} literals, ~{:.0} gate equivalents",
            self.total_literals(),
            self.gate_equivalents()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A modulo-`n` counter with an enable input.
    fn counter(n: usize) -> Fsm {
        Fsm::from_fn("ctr", n, 1, 1, move |s, i| {
            let next = if i & 1 == 1 { (s + 1) % n } else { s };
            (next, u64::from(next == 0 && i & 1 == 1))
        })
    }

    #[test]
    fn state_bits() {
        assert_eq!(counter(2).state_bits(), 1);
        assert_eq!(counter(3).state_bits(), 2);
        assert_eq!(counter(4).state_bits(), 2);
        assert_eq!(counter(5).state_bits(), 3);
    }

    #[test]
    fn synthesized_covers_match_the_table() {
        let fsm = counter(5);
        let report = fsm.synthesize();
        let sbits = fsm.state_bits();
        for state in 0..5usize {
            for input in 0..2u32 {
                let vector = (state << 1) as u32 | input;
                let mut next = 0usize;
                for bit in 0..sbits {
                    if report.functions[bit].cover.eval(vector) {
                        next |= 1 << bit;
                    }
                }
                assert_eq!(
                    next,
                    fsm.next_state(state, input),
                    "state {state} input {input}"
                );
                let out = report.functions[sbits].cover.eval(vector);
                assert_eq!(out, fsm.outputs(state, input) & 1 == 1);
            }
        }
    }

    #[test]
    fn unreachable_codes_reduce_cost() {
        // A 5-state machine leaves 3 binary codes as don't-cares; its
        // synthesis must not cost more than the same table padded to 8
        // fully specified states that loop to 0.
        let five = counter(5).synthesize();
        let padded = Fsm::from_fn("pad8", 8, 1, 1, |s, i| {
            if s < 5 {
                let next = if i & 1 == 1 { (s + 1) % 5 } else { s };
                (next, u64::from(next == 0 && i & 1 == 1))
            } else {
                (0, 0)
            }
        })
        .synthesize();
        assert!(five.total_literals() <= padded.total_literals());
    }

    #[test]
    fn report_display() {
        let report = counter(3).synthesize();
        let text = report.to_string();
        assert!(text.contains("next_state[0]"));
        assert!(text.contains("gate equivalents"));
    }

    #[test]
    fn gate_equivalents_scale_with_complexity() {
        let small = counter(2).synthesize().gate_equivalents();
        let big = counter(7).synthesize().gate_equivalents();
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "invalid state")]
    fn invalid_next_state_panics() {
        let _ = Fsm::from_fn("bad", 2, 1, 0, |_, _| (5, 0));
    }
}

//! Two-level logic synthesis for decoder-area estimation.
//!
//! The 9C paper synthesizes its decoder FSM with Synopsys Design Compiler
//! and reports a tiny gate count. This crate replaces that proprietary
//! step with an open flow:
//!
//! - [`qm`] — exact Quine–McCluskey prime generation plus
//!   essential/greedy covering;
//! - [`fsm`] — Mealy FSM tabulation, binary state encoding, per-bit
//!   minimization, and a gate-equivalent area estimate.
//!
//! # Example
//!
//! ```
//! use ninec_synth::fsm::Fsm;
//!
//! // A 3-state ring counter with an enable input.
//! let ring = Fsm::from_fn("ring3", 3, 1, 0, |s, i| {
//!     (if i & 1 == 1 { (s + 1) % 3 } else { s }, 0)
//! });
//! let report = ring.synthesize();
//! println!("{report}");
//! assert!(report.total_literals() > 0);
//! ```

#![warn(missing_docs)]

pub mod fsm;
pub mod netlist;
pub mod qm;

pub use fsm::{Fsm, SynthReport};
pub use netlist::{covers_to_circuit, report_to_circuit};
pub use qm::{minimize, Cover, Implicant};

//! Lowering minimized covers to gate-level netlists.
//!
//! A [`Cover`] (sum of products) maps directly onto a two-level
//! NOT/AND/OR structure; a synthesized FSM becomes the combinational
//! next-state/output block of the decoder. The exported
//! [`ninec_circuit::Circuit`] can be simulated, fault-simulated, and
//! checked for equivalence against the behavioral machine — which is how
//! this workspace verifies its decoder synthesis end-to-end.

use crate::fsm::SynthReport;
use crate::qm::Cover;
use ninec_circuit::netlist::{Circuit, GateKind, NetId, NetlistError};

/// Builds the two-level circuit of a set of covers sharing one input
/// space.
///
/// Inputs are named `in0 … in{n-1}` (`in0` = variable 0, the LSB of the
/// minterm encoding); one primary output per cover, named by `labels`.
/// Constant-0 covers become `AND(x, NOT x)`; constant-1 covers become
/// `OR(x, NOT x)` (the netlist model has no constant gates).
///
/// # Errors
///
/// Returns [`NetlistError`] if a cover's variable count disagrees with
/// `num_vars` (surfaced as a dangling fanin) — callers pass covers from
/// one [`SynthReport`], where this cannot happen.
///
/// # Examples
///
/// ```
/// use ninec_synth::netlist::covers_to_circuit;
/// use ninec_synth::qm::minimize;
///
/// let xor = minimize(2, &[0b01, 0b10], &[]);
/// let circuit = covers_to_circuit("xor", 2, &[("y".to_owned(), xor)])?;
/// assert_eq!(circuit.primary_inputs().len(), 2);
/// assert_eq!(circuit.primary_outputs().len(), 1);
/// # Ok::<(), ninec_circuit::netlist::NetlistError>(())
/// ```
pub fn covers_to_circuit(
    name: &str,
    num_vars: usize,
    covers: &[(String, Cover)],
) -> Result<Circuit, NetlistError> {
    assert!(num_vars >= 1, "need at least one input variable");
    let mut c = Circuit::new(name);
    let inputs: Vec<NetId> = (0..num_vars)
        .map(|i| c.add_input(&format!("in{i}")))
        .collect();
    // Shared inverters, created lazily.
    let mut inverted: Vec<Option<NetId>> = vec![None; num_vars];
    let mut unique = 0usize;

    for (label, cover) in covers {
        let mut product_nets: Vec<NetId> = Vec::new();
        for (pi, imp) in cover.implicants.iter().enumerate() {
            let mut literals: Vec<NetId> = Vec::new();
            for (var, &input) in inputs.iter().enumerate() {
                if imp.mask >> var & 1 == 1 {
                    continue;
                }
                if imp.value >> var & 1 == 1 {
                    literals.push(input);
                } else {
                    let inv = match inverted[var] {
                        Some(n) => n,
                        None => {
                            let n =
                                c.add_gate(&format!("n_in{var}"), GateKind::Not, vec![input])?;
                            inverted[var] = Some(n);
                            n
                        }
                    };
                    literals.push(inv);
                }
            }
            let net = match literals.len() {
                0 => {
                    // Tautological implicant: constant 1 via x OR NOT x.
                    let inv = get_inverter(&mut c, &mut inverted, inputs[0], 0)?;
                    c.add_gate(
                        &format!("{label}_one{pi}"),
                        GateKind::Or,
                        vec![inputs[0], inv],
                    )?
                }
                1 => literals[0],
                _ => c.add_gate(&format!("{label}_p{pi}"), GateKind::And, literals)?,
            };
            product_nets.push(net);
        }
        let out = match product_nets.len() {
            0 => {
                // Constant 0 via x AND NOT x.
                let inv = get_inverter(&mut c, &mut inverted, inputs[0], 0)?;
                c.add_gate(
                    &format!("{label}_zero"),
                    GateKind::And,
                    vec![inputs[0], inv],
                )?
            }
            1 => {
                // Buffer so the PO has a dedicated, named net.
                c.add_gate(
                    &format!("{label}_buf{unique}"),
                    GateKind::Buf,
                    vec![product_nets[0]],
                )?
            }
            _ => c.add_gate(&format!("{label}_or"), GateKind::Or, product_nets)?,
        };
        unique += 1;
        c.mark_output(out);
    }
    c.validate()
}

fn get_inverter(
    c: &mut Circuit,
    inverted: &mut [Option<NetId>],
    input: NetId,
    var: usize,
) -> Result<NetId, NetlistError> {
    match inverted[var] {
        Some(n) => Ok(n),
        None => {
            let n = c.add_gate(&format!("n_in{var}"), GateKind::Not, vec![input])?;
            inverted[var] = Some(n);
            Ok(n)
        }
    }
}

/// Lowers a whole [`SynthReport`] (all next-state and output functions of
/// an FSM) into one combinational circuit.
///
/// Inputs: `in0 … in{s+i-1}` where variable order matches the synthesis
/// encoding — input bits are the low variables, state bits the high ones.
/// Outputs: one per synthesized function, in report order.
///
/// # Errors
///
/// See [`covers_to_circuit`].
pub fn report_to_circuit(report: &SynthReport) -> Result<Circuit, NetlistError> {
    let num_vars = report.state_bits + report.input_bits;
    let covers: Vec<(String, Cover)> = report
        .functions
        .iter()
        .map(|f| (sanitize(&f.label), f.cover.clone()))
        .collect();
    covers_to_circuit(&report.name, num_vars, &covers)
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::Fsm;
    use crate::qm::minimize;

    /// Evaluates the exported circuit on one input vector using a plain
    /// recursive interpreter (no dependency on the simulator crates).
    fn eval_circuit(c: &Circuit, input: u32) -> Vec<bool> {
        let mut values = vec![None::<bool>; c.num_gates()];
        for (i, &net) in c.primary_inputs().iter().enumerate() {
            values[net] = Some(input >> i & 1 == 1);
        }
        for &net in c.topo_order() {
            if values[net].is_some() {
                continue;
            }
            let gate = c.gate(net);
            let ins: Vec<bool> = gate
                .inputs
                .iter()
                .map(|&i| values[i].expect("topo order"))
                .collect();
            let v = match gate.kind {
                GateKind::And => ins.iter().all(|&b| b),
                GateKind::Or => ins.iter().any(|&b| b),
                GateKind::Not => !ins[0],
                GateKind::Buf => ins[0],
                other => panic!("unexpected gate kind {other}"),
            };
            values[net] = Some(v);
        }
        c.primary_outputs()
            .iter()
            .map(|&net| values[net].expect("evaluated"))
            .collect()
    }

    #[test]
    fn xor_circuit_matches_cover() {
        let cover = minimize(2, &[0b01, 0b10], &[]);
        let c = covers_to_circuit("xor", 2, &[("y".to_owned(), cover.clone())]).unwrap();
        for input in 0..4u32 {
            assert_eq!(
                eval_circuit(&c, input)[0],
                cover.eval(input),
                "input {input:02b}"
            );
        }
    }

    #[test]
    fn constant_functions_lower() {
        let zero = minimize(2, &[], &[]);
        let one = minimize(2, &[0, 1, 2, 3], &[]);
        let c = covers_to_circuit(
            "consts",
            2,
            &[("z".to_owned(), zero), ("o".to_owned(), one)],
        )
        .unwrap();
        for input in 0..4u32 {
            let outs = eval_circuit(&c, input);
            assert!(!outs[0]);
            assert!(outs[1]);
        }
    }

    #[test]
    fn single_literal_cover_gets_buffered_output() {
        // f = x1 (variable 1).
        let cover = minimize(2, &[0b10, 0b11], &[]);
        let c = covers_to_circuit("lit", 2, &[("y".to_owned(), cover)]).unwrap();
        for input in 0..4u32 {
            assert_eq!(eval_circuit(&c, input)[0], input >> 1 & 1 == 1);
        }
    }

    #[test]
    fn fsm_report_lowers_and_matches_table_exhaustively() {
        // A modulo-5 counter with enable: check every (state, input).
        let fsm = Fsm::from_fn("ctr5", 5, 1, 1, |s, i| {
            let next = if i & 1 == 1 { (s + 1) % 5 } else { s };
            (next, u64::from(next == 0 && i & 1 == 1))
        });
        let report = fsm.synthesize();
        let circuit = report_to_circuit(&report).unwrap();
        let sbits = report.state_bits;
        for state in 0..5usize {
            for input in 0..2u32 {
                let vector = (state << report.input_bits) as u32 | input;
                let outs = eval_circuit(&circuit, vector);
                let mut next = 0usize;
                for (bit, &out) in outs.iter().enumerate().take(sbits) {
                    if out {
                        next |= 1 << bit;
                    }
                }
                assert_eq!(
                    next,
                    fsm.next_state(state, input),
                    "state {state} in {input}"
                );
                assert_eq!(
                    outs[sbits],
                    fsm.outputs(state, input) & 1 == 1,
                    "state {state} in {input}"
                );
            }
        }
    }

    #[test]
    fn shared_inverters_are_reused() {
        // Two covers both needing NOT(in0): only one inverter is built.
        let f = minimize(1, &[0], &[]); // NOT x
        let c = covers_to_circuit(
            "shared",
            1,
            &[("a".to_owned(), f.clone()), ("b".to_owned(), f)],
        )
        .unwrap();
        let inverters = (0..c.num_gates())
            .filter(|&n| c.gate(n).kind == GateKind::Not)
            .count();
        assert_eq!(inverters, 1);
    }
}

//! Minimal Huffman coding over small alphabets.
//!
//! Shared by the selective-Huffman and VIHC baselines. Ties are broken
//! deterministically so encoders and decoders built independently from the
//! same frequencies agree.

use ninec_testdata::bits::{BitReader, BitVec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A Huffman code over symbols `0 .. n`.
///
/// # Examples
///
/// ```
/// use ninec_baselines::huffman::HuffmanCode;
///
/// let code = HuffmanCode::from_frequencies(&[50, 30, 15, 5])?;
/// // More frequent symbols never get longer codewords.
/// assert!(code.codeword(0).len() <= code.codeword(3).len());
/// # Ok::<(), ninec_baselines::huffman::HuffmanError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    words: Vec<BitVec>,
}

impl HuffmanCode {
    /// Builds a code from per-symbol frequencies.
    ///
    /// Zero-frequency symbols still receive (long) codewords so the code is
    /// total over the alphabet. A single-symbol alphabet gets the 1-bit
    /// codeword `0`.
    ///
    /// # Errors
    ///
    /// Returns [`HuffmanError`] for an empty alphabet.
    pub fn from_frequencies(freqs: &[u64]) -> Result<Self, HuffmanError> {
        if freqs.is_empty() {
            return Err(HuffmanError::EmptyAlphabet);
        }
        if freqs.len() == 1 {
            let mut w = BitVec::new();
            w.push(false);
            return Ok(Self { words: vec![w] });
        }
        // Package nodes; `Reverse((weight, tiebreak))` makes the heap a
        // min-heap with deterministic tie-breaking on creation order.
        #[derive(PartialEq, Eq)]
        enum Node {
            Leaf(usize),
            Internal(Box<Node>, Box<Node>),
        }
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        let mut nodes: Vec<Option<Node>> = Vec::new();
        for (sym, &f) in freqs.iter().enumerate() {
            nodes.push(Some(Node::Leaf(sym)));
            heap.push(Reverse((f.max(1), sym, nodes.len() - 1)));
        }
        while heap.len() > 1 {
            let Reverse((fa, _, ia)) = heap.pop().expect("len checked");
            let Reverse((fb, _, ib)) = heap.pop().expect("len checked");
            let a = nodes[ia].take().expect("node taken once");
            let b = nodes[ib].take().expect("node taken once");
            nodes.push(Some(Node::Internal(Box::new(a), Box::new(b))));
            let idx = nodes.len() - 1;
            heap.push(Reverse((fa + fb, freqs.len() + idx, idx)));
        }
        let Reverse((_, _, root_idx)) = heap.pop().expect("one node remains");
        let root = nodes[root_idx].take().expect("root present");

        // Collect depths, then assign canonical codewords: by (length,
        // symbol) ascending, exactly like `CodeTable::from_lengths`.
        let mut depths = vec![0u32; freqs.len()];
        fn walk(node: &Node, depth: u32, depths: &mut [u32]) {
            match node {
                Node::Leaf(sym) => depths[*sym] = depth.max(1),
                Node::Internal(a, b) => {
                    walk(a, depth + 1, depths);
                    walk(b, depth + 1, depths);
                }
            }
        }
        walk(&root, 0, &mut depths);

        let mut order: Vec<usize> = (0..freqs.len()).collect();
        order.sort_by_key(|&s| (depths[s], s));
        let mut words = vec![BitVec::new(); freqs.len()];
        let mut code: u64 = 0;
        let mut prev_len: u32 = 0;
        for &s in &order {
            let len = depths[s];
            code <<= len - prev_len;
            let mut w = BitVec::new();
            w.push_bits_msb(code, len as usize);
            words[s] = w;
            code += 1;
            prev_len = len;
        }
        Ok(Self { words })
    }

    /// Number of symbols in the alphabet.
    pub fn alphabet_size(&self) -> usize {
        self.words.len()
    }

    /// The codeword for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn codeword(&self, symbol: usize) -> &BitVec {
        &self.words[symbol]
    }

    /// Appends the codeword for `symbol` to `out`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn encode_symbol(&self, symbol: usize, out: &mut BitVec) {
        out.extend_from_bitvec(&self.words[symbol]);
    }

    /// Reads one symbol from `reader`.
    ///
    /// Returns `None` on a truncated or unmatchable stream.
    pub fn decode_symbol(&self, reader: &mut BitReader<'_>) -> Option<usize> {
        let start = reader.position();
        let mut prefix = BitVec::new();
        let max_len = self.words.iter().map(BitVec::len).max().unwrap_or(0);
        while prefix.len() < max_len {
            prefix.push(reader.read_bit()?);
            if let Some(sym) = self.words.iter().position(|w| w == &prefix) {
                return Some(sym);
            }
        }
        // Unmatchable: rewind semantics are not needed by callers, but keep
        // the invariant that failure means "stream exhausted or corrupt".
        let _ = start;
        None
    }

    /// `Σ freq(s) · len(s)` — the encoded size the code achieves on data
    /// with the given frequencies.
    pub fn weighted_length(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.words)
            .map(|(&f, w)| f * w.len() as u64)
            .sum()
    }

    /// `true` if no codeword is a prefix of another.
    pub fn is_prefix_free(&self) -> bool {
        for (i, a) in self.words.iter().enumerate() {
            for (j, b) in self.words.iter().enumerate() {
                if i != j && a.len() <= b.len() {
                    let prefix: BitVec = b.iter().take(a.len()).collect();
                    if &prefix == a {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for HuffmanCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, w) in self.words.iter().enumerate() {
            writeln!(f, "{s}: {w}")?;
        }
        Ok(())
    }
}

/// Error building a Huffman code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanError {
    /// No symbols were supplied.
    EmptyAlphabet,
}

impl fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HuffmanError::EmptyAlphabet => write!(f, "cannot build a code over zero symbols"),
        }
    }
}

impl std::error::Error for HuffmanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symbol() {
        let c = HuffmanCode::from_frequencies(&[10]).unwrap();
        assert_eq!(c.codeword(0).to_string(), "0");
    }

    #[test]
    fn empty_alphabet_rejected() {
        assert_eq!(
            HuffmanCode::from_frequencies(&[]),
            Err(HuffmanError::EmptyAlphabet)
        );
    }

    #[test]
    fn optimality_on_dyadic_frequencies() {
        // Frequencies 8,4,2,1,1 -> lengths 1,2,3,4,4.
        let c = HuffmanCode::from_frequencies(&[8, 4, 2, 1, 1]).unwrap();
        let lens: Vec<usize> = (0..5).map(|s| c.codeword(s).len()).collect();
        assert_eq!(lens, vec![1, 2, 3, 4, 4]);
        assert!(c.is_prefix_free());
    }

    #[test]
    fn prefix_free_for_flat_frequencies() {
        let c = HuffmanCode::from_frequencies(&[5; 7]).unwrap();
        assert!(c.is_prefix_free());
        // Kraft sum must be <= 1.
        let kraft: f64 = (0..7)
            .map(|s| 2f64.powi(-(c.codeword(s).len() as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12);
    }

    #[test]
    fn zero_frequency_symbols_still_coded() {
        let c = HuffmanCode::from_frequencies(&[100, 0, 0]).unwrap();
        assert!(c.is_prefix_free());
        assert!(!c.codeword(1).is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = [40, 25, 20, 10, 5];
        let c = HuffmanCode::from_frequencies(&freqs).unwrap();
        let symbols = [0, 4, 2, 2, 1, 0, 3, 4, 0, 0, 1];
        let mut bits = BitVec::new();
        for &s in &symbols {
            c.encode_symbol(s, &mut bits);
        }
        let mut r = BitReader::new(&bits);
        let decoded: Vec<usize> = (0..symbols.len())
            .map(|_| c.decode_symbol(&mut r).unwrap())
            .collect();
        assert_eq!(decoded, symbols);
        assert!(r.is_at_end());
    }

    #[test]
    fn decode_fails_gracefully_on_truncation() {
        let c = HuffmanCode::from_frequencies(&[1, 1, 1, 1]).unwrap();
        let bits = BitVec::new();
        let mut r = BitReader::new(&bits);
        assert_eq!(c.decode_symbol(&mut r), None);
    }

    #[test]
    fn weighted_length_matches_emitted_bits() {
        let freqs = [9, 3, 3, 1];
        let c = HuffmanCode::from_frequencies(&freqs).unwrap();
        let mut bits = BitVec::new();
        for (s, &f) in freqs.iter().enumerate() {
            for _ in 0..f {
                c.encode_symbol(s, &mut bits);
            }
        }
        assert_eq!(bits.len() as u64, c.weighted_length(&freqs));
    }

    #[test]
    fn deterministic_construction() {
        let a = HuffmanCode::from_frequencies(&[3, 3, 3, 3, 3]).unwrap();
        let b = HuffmanCode::from_frequencies(&[3, 3, 3, 3, 3]).unwrap();
        assert_eq!(a, b);
    }
}

//! The FDR (frequency-directed run-length) code, Chandra & Chakrabarty,
//! IEEE Trans. Computers 2003 — reference \[9\] of the 9C paper.
//!
//! Test cubes are 0-filled (the fill that maximizes 0-runs), then each
//! 0-run terminated by a `1` is replaced by its FDR codeword.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use crate::runlength::{fdr_decode_run, fdr_encode_run, zero_runs};
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::TritVec;
use std::fmt;

/// The FDR codec.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::fdr::Fdr;
/// use ninec_testdata::trit::TritVec;
///
/// let stream: TritVec = "000000010000001".parse()?;
/// let fdr = Fdr::new();
/// assert!(fdr.compression_ratio(&stream) > 0.0);
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fdr;

impl Fdr {
    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }

    /// Compresses a cube stream (0-filling its don't-cares first).
    pub fn compress(&self, stream: &TritVec) -> BitVec {
        let filled = fill_trits(stream, FillStrategy::Zero)
            .to_bitvec()
            .expect("zero fill fully specifies the stream");
        let (runs, _) = zero_runs(&filled);
        let mut out = BitVec::new();
        for l in runs {
            fdr_encode_run(l, &mut out);
        }
        out
    }

    /// Decompresses to exactly `out_len` bits (the 0-filled source).
    ///
    /// # Errors
    ///
    /// Returns [`RunLengthDecodeError`] on truncated or overlong streams.
    pub fn decompress(
        &self,
        bits: &BitVec,
        out_len: usize,
    ) -> Result<BitVec, RunLengthDecodeError> {
        let mut reader = BitReader::new(bits);
        let mut out = BitVec::with_capacity(out_len);
        while out.len() < out_len {
            let l = fdr_decode_run(&mut reader).ok_or(RunLengthDecodeError::Truncated {
                produced: out.len(),
            })?;
            for _ in 0..l {
                out.push(false);
            }
            out.push(true);
        }
        // The final run's terminating 1 may be virtual (source ended in 0s).
        while out.len() > out_len {
            if out.get(out.len() - 1) != Some(true) {
                return Err(RunLengthDecodeError::Overrun {
                    produced: out.len(),
                });
            }
            let mut trimmed = BitVec::with_capacity(out_len);
            for i in 0..out.len() - 1 {
                trimmed.push(out.get(i).expect("in range"));
            }
            out = trimmed;
        }
        Ok(out)
    }
}

impl TestDataCodec for Fdr {
    fn name(&self) -> &str {
        "FDR"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(stream.len(), Payload::Fdr(self.compress(stream)))
    }
}

/// Error decoding a run-length compressed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunLengthDecodeError {
    /// The stream ended before `out_len` bits were produced.
    Truncated {
        /// Bits produced before the stream ran out.
        produced: usize,
    },
    /// The stream decoded past `out_len` in a way that cannot be a virtual
    /// terminator.
    Overrun {
        /// Bits produced.
        produced: usize,
    },
}

impl fmt::Display for RunLengthDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunLengthDecodeError::Truncated { produced } => {
                write!(
                    f,
                    "compressed stream truncated after {produced} output bits"
                )
            }
            RunLengthDecodeError::Overrun { produced } => {
                write!(
                    f,
                    "compressed stream overruns the output length at {produced} bits"
                )
            }
        }
    }
}

impl std::error::Error for RunLengthDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let cubes: TritVec = s.parse().unwrap();
        let filled = fill_trits(&cubes, FillStrategy::Zero).to_bitvec().unwrap();
        let fdr = Fdr::new();
        let compressed = fdr.compress(&cubes);
        let back = fdr.decompress(&compressed, cubes.len()).unwrap();
        assert_eq!(back, filled, "source {s}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("0000001");
        roundtrip("1111");
        roundtrip("000000");
        roundtrip("0X0X0X1XX0");
        roundtrip("1");
        roundtrip("0");
    }

    #[test]
    fn compresses_sparse_streams() {
        // 63 zeros + 1: one A6 codeword (12 bits) vs 64 source bits.
        let s: TritVec = format!("{}1", "0".repeat(63)).parse().unwrap();
        let fdr = Fdr::new();
        assert_eq!(fdr.compressed_size(&s), 12);
        assert!(fdr.compression_ratio(&s) > 80.0);
    }

    #[test]
    fn expands_dense_streams() {
        let s: TritVec = "1".repeat(32).parse::<TritVec>().unwrap();
        // Each 1 is a run of length 0 -> 2 bits: 64 bits total.
        assert_eq!(Fdr::new().compressed_size(&s), 64);
        assert!(Fdr::new().compression_ratio(&s) < 0.0);
    }

    #[test]
    fn x_counts_as_zero() {
        let a: TritVec = "XXXXXXX1".parse().unwrap();
        let b: TritVec = "00000001".parse().unwrap();
        assert_eq!(Fdr::new().compress(&a), Fdr::new().compress(&b));
    }

    #[test]
    fn truncated_stream_errors() {
        let fdr = Fdr::new();
        let bits = BitVec::from_str_radix2("1").unwrap();
        assert!(matches!(
            fdr.decompress(&bits, 8),
            Err(RunLengthDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_stream() {
        let fdr = Fdr::new();
        assert_eq!(fdr.compressed_size(&TritVec::new()), 0);
        assert_eq!(fdr.decompress(&BitVec::new(), 0).unwrap(), BitVec::new());
    }
}

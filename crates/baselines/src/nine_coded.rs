//! The 9C code itself behind the baseline [`TestDataCodec`] interface.
//!
//! The comparison harness treats 9C as just another column of Table IV;
//! this adapter lets it dispatch through the same trait-object registry as
//! the baselines instead of hand-calling [`ninec::Encoder`]. Unlike the
//! fill-based baselines, 9C's decode preserves the leftover don't-cares of
//! the source.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use ninec::encode::{Encoder, InvalidBlockSize};
use ninec::engine::Engine;
use ninec::{DecodeError, EncodeFrameError};
use ninec_testdata::trit::TritVec;

/// The nine-coded compression technique as a [`TestDataCodec`].
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::nine_coded::NineCoded;
/// use ninec_testdata::trit::TritVec;
///
/// let ninec = NineCoded::new(8)?;
/// let stream: TritVec = "XXXXXXXX0000XXXX".repeat(4).parse()?;
/// assert!(ninec.compression_ratio(&stream) > 50.0);
/// let enc = ninec.encode_stream(&stream);
/// assert_eq!(ninec.decode_stream(&enc)?.len(), stream.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NineCoded {
    encoder: Encoder,
    parity: Option<(u8, u8)>,
}

impl NineCoded {
    /// Creates the adapter for block size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] if `k` is odd or below 4.
    pub fn new(k: usize) -> Result<Self, InvalidBlockSize> {
        Ok(Self {
            encoder: Encoder::new(k)?,
            parity: None,
        })
    }

    /// Wraps a configured encoder (custom table or case selection).
    pub fn with_encoder(encoder: Encoder) -> Self {
        Self {
            encoder,
            parity: None,
        }
    }

    /// Emits erasure-coded v3 frames: every interleaved group of `g` data
    /// segments gets `r` GF(256) parity segments, so up to `r` lost
    /// segments per group rebuild bit-exact at decode time. `r = 0`
    /// disables parity (plain v2 frames, the default). The geometry is a
    /// straight pass-through to [`Engine::parity`] — invalid values
    /// surface as [`EncodeFrameError::Parity`] from
    /// [`encode_frame`](NineCoded::encode_frame).
    #[must_use]
    pub fn parity(mut self, g: u8, r: u8) -> Self {
        self.parity = if r == 0 { None } else { Some((g, r)) };
        self
    }

    /// Block size `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.encoder.k()
    }

    /// Compresses `stream` into a self-describing `9CSF` segment frame,
    /// encoding segments concurrently on `threads` workers — the real
    /// framed container (unlike the generic
    /// [`TestDataCodec::encode_segmented`] path, which shards into
    /// in-memory [`CodecStream`]s). The bytes are independent of the
    /// thread count.
    ///
    /// # Errors
    ///
    /// [`EncodeFrameError::Frame`] when a segment overflows the `9CSF`
    /// header's `u32` fields (a > 4 Gi-trit segment); the block size
    /// itself was validated at construction, so
    /// [`EncodeFrameError::InvalidBlockSize`] cannot occur here.
    pub fn encode_frame(
        &self,
        stream: &TritVec,
        threads: usize,
        segment_bits: usize,
    ) -> Result<Vec<u8>, EncodeFrameError> {
        self.engine(threads, segment_bits)
            .encode_frame(self.k(), stream)
    }

    /// Decodes a `9CSF` frame produced by
    /// [`encode_frame`](NineCoded::encode_frame), sharding segments across
    /// `threads` workers.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on corrupt, truncated or hostile frames —
    /// never panics.
    pub fn decode_frame(&self, bytes: &[u8], threads: usize) -> Result<TritVec, DecodeError> {
        self.engine(threads, ninec::engine::DEFAULT_SEGMENT_BITS)
            .decode_frame(bytes)
    }

    /// Runs the full decode ladder (strict → parity repair → salvage) on
    /// a possibly damaged frame and returns the [`SalvageReport`] — the
    /// harness-side entry to the v3 erasure-coding story.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on file-level damage (bad magic, torn
    /// header); segment-level damage comes back in the report instead.
    pub fn decode_frame_repair(
        &self,
        bytes: &[u8],
        threads: usize,
    ) -> Result<ninec::engine::SalvageReport, DecodeError> {
        self.engine(threads, ninec::engine::DEFAULT_SEGMENT_BITS)
            .decode_frame_repair(bytes)
    }

    fn engine(&self, threads: usize, segment_bits: usize) -> Engine {
        let mut builder = Engine::builder()
            .threads(threads)
            .segment_bits(segment_bits)
            .table(self.encoder.table().clone());
        if let Some((g, r)) = self.parity {
            builder = builder.parity(g, r);
        }
        builder.build()
    }
}

impl TestDataCodec for NineCoded {
    fn name(&self) -> &str {
        "9C"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        let enc = self.encoder.encode_stream(stream);
        CodecStream::new(enc.source_len(), Payload::NineC(enc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_block_sizes() {
        assert!(NineCoded::new(3).is_err());
        assert!(NineCoded::new(0).is_err());
        assert_eq!(NineCoded::new(8).unwrap().k(), 8);
    }

    #[test]
    fn matches_the_core_encoder_bit_for_bit() {
        let stream: TritVec = "0X0X0X1XX01110000000001XXXX10X0X".parse().unwrap();
        let adapter = NineCoded::new(8).unwrap();
        let direct = Encoder::new(8).unwrap().encode_stream(&stream);
        let via_trait = adapter.encode_stream(&stream);
        assert_eq!(via_trait.compressed_bits(), direct.compressed_len());
        assert_eq!(
            adapter.compression_ratio(&stream),
            direct.compression_ratio()
        );
    }

    #[test]
    fn frame_roundtrip_is_thread_count_independent() {
        let stream: TritVec = "0X0X0X1XX01110000000001XXXX10X0X"
            .repeat(16)
            .parse()
            .unwrap();
        let adapter = NineCoded::new(8).unwrap();
        let serial = adapter.encode_frame(&stream, 1, 128).unwrap();
        for threads in [2usize, 8] {
            assert_eq!(adapter.encode_frame(&stream, threads, 128).unwrap(), serial);
        }
        let back = adapter.decode_frame(&serial, 4).unwrap();
        assert_eq!(back.len(), stream.len());
        for i in 0..stream.len() {
            let s = stream.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), back.get(i), "care bit {i}");
            }
        }
        // Hostile bytes are typed errors, never panics.
        assert!(adapter.decode_frame(b"garbage", 2).is_err());
        assert!(adapter
            .decode_frame(&serial[..serial.len() - 1], 2)
            .is_err());
    }

    #[test]
    fn parity_passthrough_repairs_a_lost_segment() {
        let stream: TritVec = "0X0X0X1XX01110000000001XXXX10X0X"
            .repeat(16)
            .parse()
            .unwrap();
        let plain = NineCoded::new(8).unwrap();
        let protected = NineCoded::new(8).unwrap().parity(2, 1);
        let v2 = plain.encode_frame(&stream, 1, 128).unwrap();
        let v3 = protected.encode_frame(&stream, 1, 128).unwrap();
        assert!(v3.len() > v2.len(), "parity adds overhead");
        let clean = protected.decode_frame(&v3, 2).unwrap();

        // Corrupt one payload byte of the first data segment.
        let mut bad = v3.clone();
        bad[ninec::engine::frame::HEADER_BYTES_V3 + ninec::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;
        assert!(protected.decode_frame(&bad, 2).is_err(), "strict rejects");
        let report = protected.decode_frame_repair(&bad, 2).unwrap();
        assert!(report.is_full_recovery(), "{:?}", report.damaged);
        assert_eq!(report.trits, clean, "repair is bit-exact");

        // `r = 0` keeps emitting plain v2 bytes.
        let degenerate = NineCoded::new(8).unwrap().parity(4, 0);
        assert_eq!(degenerate.encode_frame(&stream, 1, 128).unwrap(), v2);
    }

    #[test]
    fn decode_preserves_leftover_x() {
        // At K=8 the left half "01X0" is a mismatch and ships verbatim, X
        // included; the right half is uniform and gets bound to ones.
        let stream: TritVec = "01X01111".parse().unwrap();
        let adapter = NineCoded::new(8).unwrap();
        let back = adapter
            .decode_stream(&adapter.encode_stream(&stream))
            .unwrap();
        assert_eq!(back.to_string(), "01X01111");
    }
}

//! Shared run-length machinery: run extraction and the FDR code family's
//! per-run codewords.
//!
//! The frequency-directed run-length (FDR) code of Chandra & Chakrabarty
//! maps a run length `l ≥ 0` into group `A_i` (`i ≥ 1`), where group `A_i`
//! covers lengths `[2^i − 2, 2^{i+1} − 3]` with `2^i` members. The codeword
//! is an `i`-bit prefix (`i−1` ones then a zero) followed by an `i`-bit
//! binary tail — so short runs get short codewords.

use ninec_testdata::bits::{BitReader, BitVec};

/// Appends the FDR codeword for run length `l` to `out`, returning its
/// length in bits.
///
/// # Examples
///
/// ```
/// use ninec_baselines::runlength::fdr_encode_run;
/// use ninec_testdata::bits::BitVec;
///
/// let mut out = BitVec::new();
/// fdr_encode_run(0, &mut out); // group A1: "00"
/// fdr_encode_run(2, &mut out); // group A2: "1000"
/// assert_eq!(out.to_string(), "001000");
/// ```
pub fn fdr_encode_run(l: u64, out: &mut BitVec) -> usize {
    let i = fdr_group(l);
    let start = (1u64 << i) - 2;
    // Prefix: (i-1) ones, then a zero.
    for _ in 0..i - 1 {
        out.push(true);
    }
    out.push(false);
    // Tail: i-bit offset within the group.
    out.push_bits_msb(l - start, i as usize);
    2 * i as usize
}

/// Length in bits of the FDR codeword for run length `l`.
pub fn fdr_code_len(l: u64) -> usize {
    2 * fdr_group(l) as usize
}

/// The FDR group index `i ≥ 1` covering run length `l`.
pub fn fdr_group(l: u64) -> u32 {
    // Find smallest i with l <= 2^(i+1) - 3, i.e. l + 3 <= 2^(i+1).
    let mut i = 1;
    while l > (1u64 << (i + 1)) - 3 {
        i += 1;
    }
    i
}

/// Reads one FDR run length from `reader`.
///
/// Returns `None` on a truncated stream.
pub fn fdr_decode_run(reader: &mut BitReader<'_>) -> Option<u64> {
    let mut i = 1u32;
    while reader.read_bit()? {
        i += 1;
    }
    let tail = reader.read_bits_msb(i as usize)?;
    Some((1u64 << i) - 2 + tail)
}

/// Splits a fully specified bit stream into the lengths of its 0-runs,
/// each (conceptually) terminated by a `1`.
///
/// If the stream ends in zeros, the final run is reported with
/// `trailing = true` — its terminating `1` is virtual and must be dropped
/// after decode.
///
/// # Examples
///
/// ```
/// use ninec_baselines::runlength::zero_runs;
/// use ninec_testdata::bits::BitVec;
///
/// let bits = BitVec::from_str_radix2("0010001 00".replace(' ', "").as_str())?;
/// let (runs, trailing) = zero_runs(&bits);
/// assert_eq!(runs, vec![2, 3, 2]);
/// assert!(trailing);
/// # Ok::<(), ninec_testdata::bits::ParseBitsError>(())
/// ```
pub fn zero_runs(bits: &BitVec) -> (Vec<u64>, bool) {
    let mut runs = Vec::new();
    let mut current = 0u64;
    let mut open = false;
    for bit in bits.iter() {
        if bit {
            runs.push(current);
            current = 0;
            open = false;
        } else {
            current += 1;
            open = true;
        }
    }
    if open {
        runs.push(current);
    }
    (runs, open)
}

/// Splits a fully specified bit stream into alternating runs, starting
/// with a (possibly empty) 0-run: `0^a 1^b 0^c …`. Interior runs are
/// non-empty; only the leading 0-run may be length 0.
///
/// # Examples
///
/// ```
/// use ninec_baselines::runlength::alternating_runs;
/// use ninec_testdata::bits::BitVec;
///
/// let bits = BitVec::from_str_radix2("1100011")?;
/// assert_eq!(alternating_runs(&bits), vec![0, 2, 3, 2]);
/// # Ok::<(), ninec_testdata::bits::ParseBitsError>(())
/// ```
pub fn alternating_runs(bits: &BitVec) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut expect = false; // current run's symbol; starts with a 0-run
    let mut current = 0u64;
    for bit in bits.iter() {
        if bit == expect {
            current += 1;
        } else {
            runs.push(current);
            expect = bit;
            current = 1;
        }
    }
    if current > 0 || !bits.is_empty() {
        runs.push(current);
    }
    runs
}

/// Reconstructs a bit stream from alternating run lengths (inverse of
/// [`alternating_runs`]).
pub fn from_alternating_runs(runs: &[u64]) -> BitVec {
    let mut out = BitVec::new();
    let mut symbol = false;
    for &l in runs {
        for _ in 0..l {
            out.push(symbol);
        }
        symbol = !symbol;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdr_group_boundaries() {
        // A1: 0..=1, A2: 2..=5, A3: 6..=13, A4: 14..=29.
        assert_eq!(fdr_group(0), 1);
        assert_eq!(fdr_group(1), 1);
        assert_eq!(fdr_group(2), 2);
        assert_eq!(fdr_group(5), 2);
        assert_eq!(fdr_group(6), 3);
        assert_eq!(fdr_group(13), 3);
        assert_eq!(fdr_group(14), 4);
    }

    #[test]
    fn fdr_codewords_match_published_table() {
        let expect = [
            (0u64, "00"),
            (1, "01"),
            (2, "1000"),
            (3, "1001"),
            (4, "1010"),
            (5, "1011"),
            (6, "110000"),
            (13, "110111"),
            (14, "11100000"),
        ];
        for (l, s) in expect {
            let mut out = BitVec::new();
            let n = fdr_encode_run(l, &mut out);
            assert_eq!(out.to_string(), s, "run {l}");
            assert_eq!(n, s.len());
            assert_eq!(fdr_code_len(l), s.len());
        }
    }

    #[test]
    fn fdr_roundtrip_many_lengths() {
        let lengths: Vec<u64> = (0..200).chain([1000, 65_534, 1 << 40]).collect();
        let mut bits = BitVec::new();
        for &l in &lengths {
            fdr_encode_run(l, &mut bits);
        }
        let mut r = BitReader::new(&bits);
        for &l in &lengths {
            assert_eq!(fdr_decode_run(&mut r), Some(l));
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn fdr_decode_truncated() {
        let mut bits = BitVec::new();
        bits.push(true); // promises group >= 2, then nothing
        let mut r = BitReader::new(&bits);
        assert_eq!(fdr_decode_run(&mut r), None);
    }

    #[test]
    fn zero_runs_basic() {
        let b = BitVec::from_str_radix2("1").unwrap();
        assert_eq!(zero_runs(&b), (vec![0], false));
        let b = BitVec::from_str_radix2("0001").unwrap();
        assert_eq!(zero_runs(&b), (vec![3], false));
        let b = BitVec::from_str_radix2("000").unwrap();
        assert_eq!(zero_runs(&b), (vec![3], true));
        assert_eq!(zero_runs(&BitVec::new()), (vec![], false));
    }

    #[test]
    fn alternating_roundtrip() {
        for s in ["1100011", "0001", "1111", "0", "01", "10"] {
            let b = BitVec::from_str_radix2(s).unwrap();
            let runs = alternating_runs(&b);
            assert_eq!(from_alternating_runs(&runs), b, "{s}");
        }
    }

    #[test]
    fn alternating_leading_one() {
        let b = BitVec::from_str_radix2("111").unwrap();
        assert_eq!(alternating_runs(&b), vec![0, 3]);
    }
}

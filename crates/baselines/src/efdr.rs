//! Extended FDR (EFDR) — El-Maleh & Al-Abaji, ICECS 2002 (reference \[11\]
//! of the 9C paper).
//!
//! EFDR generalizes FDR to runs of *either* symbol: a token is a maximal
//! run of `l ≥ 1` identical bits followed by one opposite terminator bit.
//! The codeword is a type bit (the run's symbol) followed by the FDR
//! codeword of `l − 1`. Minimum-transition fill is applied first — it
//! maximizes uniform runs of both polarities, the structure EFDR exploits.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use crate::fdr::RunLengthDecodeError;
use crate::runlength::{fdr_decode_run, fdr_encode_run};
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::TritVec;

/// The EFDR codec.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::efdr::Efdr;
/// use ninec_testdata::trit::TritVec;
///
/// // Long runs of both symbols compress well under EFDR.
/// let stream: TritVec = format!("{}{}", "0".repeat(40), "1".repeat(40)).parse()?;
/// assert!(Efdr::new().compression_ratio(&stream) > 60.0);
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Efdr;

impl Efdr {
    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }

    /// Compresses a cube stream (minimum-transition fill first).
    pub fn compress(&self, stream: &TritVec) -> BitVec {
        let filled = fill_trits(stream, FillStrategy::MinTransition)
            .to_bitvec()
            .expect("MT fill fully specifies the stream");
        let mut out = BitVec::new();
        let mut i = 0usize;
        let n = filled.len();
        while i < n {
            let symbol = filled.get(i).expect("in range");
            let mut l = 1usize;
            while i + l < n && filled.get(i + l) == Some(symbol) {
                l += 1;
            }
            // Terminator (one opposite bit) is part of the token when present.
            let has_term = i + l < n;
            out.push(symbol);
            fdr_encode_run(l as u64 - 1, &mut out);
            i += l + has_term as usize;
        }
        out
    }

    /// Decompresses to exactly `out_len` bits (the MT-filled source).
    ///
    /// # Errors
    ///
    /// Returns [`RunLengthDecodeError`] on truncated or overlong streams.
    pub fn decompress(
        &self,
        bits: &BitVec,
        out_len: usize,
    ) -> Result<BitVec, RunLengthDecodeError> {
        let mut reader = BitReader::new(bits);
        let mut out = BitVec::with_capacity(out_len);
        while out.len() < out_len {
            let symbol = reader.read_bit().ok_or(RunLengthDecodeError::Truncated {
                produced: out.len(),
            })?;
            let l = fdr_decode_run(&mut reader).ok_or(RunLengthDecodeError::Truncated {
                produced: out.len(),
            })? + 1;
            for _ in 0..l {
                out.push(symbol);
            }
            if out.len() < out_len {
                out.push(!symbol);
            }
        }
        if out.len() > out_len {
            return Err(RunLengthDecodeError::Overrun {
                produced: out.len(),
            });
        }
        Ok(out)
    }
}

impl TestDataCodec for Efdr {
    fn name(&self) -> &str {
        "EFDR"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(stream.len(), Payload::Efdr(self.compress(stream)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let cubes: TritVec = s.parse().unwrap();
        let filled = fill_trits(&cubes, FillStrategy::MinTransition)
            .to_bitvec()
            .unwrap();
        let e = Efdr::new();
        let back = e.decompress(&e.compress(&cubes), cubes.len()).unwrap();
        assert_eq!(back, filled, "source {s}");
    }

    #[test]
    fn roundtrips() {
        for s in [
            "0000001",
            "1111",
            "000000",
            "0X0X0X1XX0",
            "1",
            "0",
            "0101010101",
            "11000111001",
            "X1XXXX0XXX",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn token_structure() {
        // "0001" is one token: symbol 0, run length 3 (FDR of 2 = "1000").
        let s: TritVec = "0001".parse().unwrap();
        assert_eq!(Efdr::new().compress(&s).to_string(), "01000");
        // "1110" mirrors it with type bit 1.
        let s: TritVec = "1110".parse().unwrap();
        assert_eq!(Efdr::new().compress(&s).to_string(), "11000");
    }

    #[test]
    fn beats_fdr_on_one_heavy_data() {
        use crate::fdr::Fdr;
        let ones: TritVec = "1".repeat(64).parse::<TritVec>().unwrap();
        let efdr = Efdr::new().compressed_size(&ones);
        let fdr = Fdr::new().compressed_size(&ones);
        assert!(
            efdr < fdr,
            "EFDR {efdr} should beat FDR {fdr} on runs of 1s"
        );
    }

    #[test]
    fn truncated_errors() {
        let e = Efdr::new();
        let bits = BitVec::from_str_radix2("0").unwrap();
        assert!(matches!(
            e.decompress(&bits, 4),
            Err(RunLengthDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn empty() {
        let e = Efdr::new();
        assert_eq!(e.compressed_size(&TritVec::new()), 0);
        assert_eq!(e.decompress(&BitVec::new(), 0).unwrap(), BitVec::new());
    }
}

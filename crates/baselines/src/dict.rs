//! Dictionary compression with fixed-length indices — Li & Chakrabarty,
//! VTS 2003 (reference \[26\] of the 9C paper).
//!
//! The stream is cut into `b`-bit blocks; a dictionary of `d` entries is
//! built by greedily merging *compatible* cube blocks (the published
//! method solves clique partitioning; the greedy first-fit here is its
//! standard approximation). A dictionary hit costs `1 + ⌈log2 d⌉` bits, a
//! miss costs `1 + b` bits.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// The fixed-length-index dictionary codec.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::dict::FixedIndexDictionary;
/// use ninec_testdata::trit::TritVec;
///
/// let dict = FixedIndexDictionary::new(8, 4)?;
/// let stream: TritVec = "0000000011111111".repeat(8).parse()?;
/// assert!(dict.compression_ratio(&stream) > 50.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedIndexDictionary {
    block_bits: usize,
    entries: usize,
    index_bits: usize,
}

impl FixedIndexDictionary {
    /// Creates a codec with `block_bits`-bit blocks and up to `entries`
    /// dictionary entries.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDictionaryConfig`] if `block_bits` is 0 or > 64,
    /// or `entries` is 0.
    pub fn new(block_bits: usize, entries: usize) -> Result<Self, InvalidDictionaryConfig> {
        if block_bits == 0 || block_bits > 64 || entries == 0 {
            return Err(InvalidDictionaryConfig {
                block_bits,
                entries,
            });
        }
        let index_bits = (usize::BITS - (entries - 1).leading_zeros()).max(1) as usize;
        Ok(Self {
            block_bits,
            entries,
            index_bits,
        })
    }

    /// Bits per dictionary index.
    pub fn index_bits(&self) -> usize {
        self.index_bits
    }

    /// Compresses a cube stream, returning the self-describing result.
    pub fn encode(&self, stream: &TritVec) -> DictionaryEncoded {
        let b = self.block_bits;
        let source_len = stream.len();
        if source_len == 0 {
            // The empty stream compresses to zero bits and needs no
            // dictionary.
            return DictionaryEncoded {
                config: *self,
                bits: BitVec::new(),
                dictionary: Vec::new(),
                source_len: 0,
            };
        }
        let padded_len = source_len.div_ceil(b).max(1) * b;
        let mut padded = stream.clone();
        for _ in source_len..padded_len {
            padded.push(Trit::X);
        }
        let blocks: Vec<TritVec> = (0..padded_len / b)
            .map(|i| padded.slice(i * b, (i + 1) * b))
            .collect();

        // Greedy compatibility clustering: each cluster keeps the merge
        // (most-specified intersection-compatible cube) of its members.
        let mut clusters: Vec<(TritVec, u64)> = Vec::new();
        for block in &blocks {
            match clusters
                .iter_mut()
                .find(|(merged, _)| merged.compatible_with(block))
            {
                Some((merged, count)) => {
                    *merged = merge(merged, block);
                    *count += 1;
                }
                None => clusters.push((block.clone(), 1)),
            }
        }
        clusters.sort_by_key(|c| std::cmp::Reverse(c.1));
        clusters.truncate(self.entries);
        let dictionary: Vec<BitVec> = clusters
            .iter()
            .map(|(merged, _)| {
                fill_trits(merged, FillStrategy::Zero)
                    .to_bitvec()
                    .expect("zero fill fully specifies the entry")
            })
            .collect();

        // Emission pass: hit -> 1 + index; miss -> 0 + raw block.
        let mut bits = BitVec::new();
        for block in &blocks {
            let hit = dictionary
                .iter()
                .position(|entry| TritVec::from(entry).covers(block));
            match hit {
                Some(idx) => {
                    bits.push(true);
                    bits.push_bits_msb(idx as u64, self.index_bits);
                }
                None => {
                    bits.push(false);
                    let raw = fill_trits(block, FillStrategy::Zero)
                        .to_bitvec()
                        .expect("zero fill fully specifies the block");
                    bits.extend_from_bitvec(&raw);
                }
            }
        }
        DictionaryEncoded {
            config: *self,
            bits,
            dictionary,
            source_len,
        }
    }
}

impl TestDataCodec for FixedIndexDictionary {
    fn name(&self) -> &str {
        "Dict"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(stream.len(), Payload::Dict(self.encode(stream)))
    }
}

/// The most-specified cube compatible with both inputs.
fn merge(a: &TritVec, b: &TritVec) -> TritVec {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| if x.is_care() { x } else { y })
        .collect()
}

/// Result of dictionary compression, carrying the decoder model (the
/// dictionary lives in on-chip ROM/RAM, not the ATE stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryEncoded {
    config: FixedIndexDictionary,
    /// The ATE bit stream.
    pub bits: BitVec,
    dictionary: Vec<BitVec>,
    source_len: usize,
}

impl DictionaryEncoded {
    /// Size in bits of the on-chip dictionary.
    pub fn dictionary_bits(&self) -> usize {
        self.dictionary.len() * self.config.block_bits
    }

    /// Number of dictionary entries actually used.
    pub fn dictionary_len(&self) -> usize {
        self.dictionary.len()
    }

    /// Decompresses back to `source_len` bits.
    ///
    /// # Errors
    ///
    /// Returns [`DictionaryDecodeError`] on truncation or an out-of-range
    /// index.
    pub fn decode(&self) -> Result<BitVec, DictionaryDecodeError> {
        let b = self.config.block_bits;
        let mut reader = BitReader::new(&self.bits);
        let mut out = BitVec::with_capacity(self.source_len + b);
        while out.len() < self.source_len {
            let coded = reader.read_bit().ok_or(DictionaryDecodeError::Truncated {
                produced: out.len(),
            })?;
            if coded {
                let idx = reader.read_bits_msb(self.config.index_bits).ok_or(
                    DictionaryDecodeError::Truncated {
                        produced: out.len(),
                    },
                )? as usize;
                let entry = self
                    .dictionary
                    .get(idx)
                    .ok_or(DictionaryDecodeError::BadIndex { index: idx })?;
                out.extend_from_bitvec(entry);
            } else {
                for _ in 0..b {
                    let bit = reader.read_bit().ok_or(DictionaryDecodeError::Truncated {
                        produced: out.len(),
                    })?;
                    out.push(bit);
                }
            }
        }
        Ok(out.iter().take(self.source_len).collect())
    }
}

/// Error decoding a dictionary stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictionaryDecodeError {
    /// The stream ran out early.
    Truncated {
        /// Bits produced before the failure.
        produced: usize,
    },
    /// An index addressed past the dictionary.
    BadIndex {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for DictionaryDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictionaryDecodeError::Truncated { produced } => {
                write!(f, "dictionary stream truncated after {produced} bits")
            }
            DictionaryDecodeError::BadIndex { index } => {
                write!(f, "dictionary index {index} out of range")
            }
        }
    }
}

impl std::error::Error for DictionaryDecodeError {}

/// Error: invalid dictionary configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDictionaryConfig {
    /// Rejected block size.
    pub block_bits: usize,
    /// Rejected entry count.
    pub entries: usize,
}

impl fmt::Display for InvalidDictionaryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid dictionary config: block_bits={} (1..=64), entries={} (>=1)",
            self.block_bits, self.entries
        )
    }
}

impl std::error::Error for InvalidDictionaryConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(FixedIndexDictionary::new(0, 4).is_err());
        assert!(FixedIndexDictionary::new(65, 4).is_err());
        assert!(FixedIndexDictionary::new(8, 0).is_err());
        let d = FixedIndexDictionary::new(8, 16).unwrap();
        assert_eq!(d.index_bits(), 4);
        assert_eq!(FixedIndexDictionary::new(8, 1).unwrap().index_bits(), 1);
    }

    #[test]
    fn repeated_blocks_hit_the_dictionary() {
        let d = FixedIndexDictionary::new(8, 2).unwrap();
        let stream: TritVec = "00001111".repeat(10).parse::<TritVec>().unwrap();
        let enc = d.encode(&stream);
        // One entry, ten hits: 10 * (1 + 1) bits.
        assert_eq!(enc.dictionary_len(), 1);
        assert_eq!(enc.bits.len(), 20);
        assert_eq!(enc.decode().unwrap().to_string(), "00001111".repeat(10));
    }

    #[test]
    fn compatible_cubes_share_an_entry() {
        let d = FixedIndexDictionary::new(4, 4).unwrap();
        // "0X01", "00X1" and "0001" all merge into "0001".
        let stream: TritVec = "0X0100X10001".parse().unwrap();
        let enc = d.encode(&stream);
        assert_eq!(enc.dictionary_len(), 1);
        assert_eq!(enc.decode().unwrap().to_string(), "000100010001");
    }

    #[test]
    fn misses_ship_raw() {
        let d = FixedIndexDictionary::new(4, 1).unwrap();
        // Two incompatible blocks; only the (first-seen, most frequent)
        // gets the single entry.
        let stream: TritVec = "000000001111".parse().unwrap();
        let enc = d.encode(&stream);
        assert_eq!(enc.dictionary_len(), 1);
        // blocks: 0000 hit (2 bits), 0000 hit, 1111 miss (5 bits).
        assert_eq!(enc.bits.len(), 2 + 2 + 5);
        assert_eq!(enc.decode().unwrap().to_string(), "000000001111");
    }

    #[test]
    fn decode_covers_care_bits() {
        let d = FixedIndexDictionary::new(4, 4).unwrap();
        let stream: TritVec = "0X1XX00XX1X11X0X".parse().unwrap();
        let enc = d.encode(&stream);
        let dec = TritVec::from(&enc.decode().unwrap());
        assert_eq!(dec.len(), stream.len());
        assert!(dec.covers(&stream));
    }

    #[test]
    fn truncation_and_bad_index_detected() {
        let d = FixedIndexDictionary::new(4, 4).unwrap();
        let enc = d.encode(&"0000".parse().unwrap());
        let broken = DictionaryEncoded {
            bits: BitVec::new(),
            ..enc.clone()
        };
        assert!(matches!(
            broken.decode(),
            Err(DictionaryDecodeError::Truncated { .. })
        ));
        // Force an out-of-range index: flag 1 + index 3 with 1 entry.
        let mut bits = BitVec::new();
        bits.push(true);
        bits.push_bits_msb(3, enc.config.index_bits);
        let broken = DictionaryEncoded { bits, ..enc };
        assert!(matches!(
            broken.decode(),
            Err(DictionaryDecodeError::BadIndex { index: 3 })
        ));
    }

    #[test]
    fn padding_preserves_length() {
        let d = FixedIndexDictionary::new(8, 2).unwrap();
        let stream: TritVec = "00000".parse().unwrap();
        let enc = d.encode(&stream);
        assert_eq!(enc.decode().unwrap().len(), 5);
    }
}

//! Baseline scan test-data compression codes.
//!
//! The 9C paper (Table IV) compares against FDR, VIHC, MTC and selective
//! Huffman coding. This crate implements those baselines (plus Golomb,
//! EFDR and alternating run-length, the other codes of the same family)
//! from their original descriptions, over the shared
//! [`ninec_testdata`] data model:
//!
//! - [`fdr`] — frequency-directed run-length code;
//! - [`golomb`] — Golomb code with power-of-two group size;
//! - [`efdr`] — extended FDR (runs of both polarities);
//! - [`arl`] — alternating run-length code;
//! - [`selhuff`] — selective Huffman coding of fixed blocks;
//! - [`dict`] — dictionary compression with fixed-length indices;
//! - [`vihc`] — variable-length input Huffman coding;
//! - [`huffman`], [`runlength`] — shared machinery;
//! - [`codec`] — the [`TestDataCodec`] interface with its self-describing
//!   [`codec::CodecStream`] roundtrip and [`codec::BestOf`] sweep wrapper;
//! - [`nine_coded`] — 9C itself behind the same interface;
//! - [`registry`] — every Table IV column as one `Box<dyn TestDataCodec>`.
//!
//! MTC (Rosinger et al.) is not independently specified in our available
//! sources; the experiment harness substitutes EFDR for that column and
//! says so in the generated table (see `DESIGN.md` §4).
//!
//! # Example
//!
//! ```
//! use ninec_baselines::codec::TestDataCodec;
//! use ninec_baselines::{fdr::Fdr, golomb::Golomb};
//! use ninec_testdata::gen::SyntheticProfile;
//!
//! let cubes = SyntheticProfile::new("cmp", 20, 128, 0.85).generate(1);
//! let stream = cubes.as_stream();
//! let fdr_cr = Fdr::new().compression_ratio(stream);
//! let golomb_cr = Golomb::new(4)?.compression_ratio(stream);
//! println!("FDR {fdr_cr:.1}% vs Golomb {golomb_cr:.1}%");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod arl;
pub mod codec;
pub mod dict;
pub mod efdr;
pub mod fdr;
pub mod golomb;
pub mod huffman;
pub mod nine_coded;
pub mod registry;
pub mod runlength;
pub mod selhuff;
pub mod vihc;

pub use codec::{BestOf, CodecDecodeError, CodecStream, TestDataCodec};
pub use nine_coded::NineCoded;
pub use registry::table4_registry;
